"""Fig. 15 — ML-prediction and coordination ablation (paper Section V-D)."""

from repro.experiments import fig15_ablation


def test_fig15_ablation(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig15_ablation.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig15_ablation.format_report(result))
    for rows in result.rows.values():
        by = {row.scheme: row for row in rows}
        # Coordination buys latency: the local-decision variant is slower.
        assert by["cottage"].avg_latency_ms <= by["cottage_isn"].avg_latency_ms * 1.05
        # The NN quality model buys quality over the Gamma estimate.
        assert by["cottage"].p_at_10 > by["cottage_without_ml"].p_at_10
        # Everything beats exhaustive on latency.
        assert by["cottage"].avg_latency_ms < by["exhaustive"].avg_latency_ms
