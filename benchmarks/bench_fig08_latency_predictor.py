"""Fig. 8 — latency predictor training curve, per-ISN accuracy, inference."""

import numpy as np

from repro.experiments import fig08_latency_predictor


def test_fig08_latency_predictor(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig08_latency_predictor.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig08_latency_predictor.format_report(result))
    # Within-one-bin accuracy should be solidly above half on every ISN.
    assert float(np.mean(result.per_isn_accuracy)) > 0.5
    assert float(np.mean(result.per_isn_inference_us)) < 1000.0
