"""Extension — graceful degradation under ISN failures.

Kills a quarter of the ISNs mid-trace and compares exhaustive search
(saved only by an aggregator safety timeout) against Cottage (whose
per-query budgets bound the damage natively).  Budgets turn a dead node
into an ordinary straggler — latency stays low and quality degrades only
by the dead shards' contributions.

The scenario-matrix benchmark then runs the declarative faults x
replication x budget grid (:mod:`repro.cluster.scenarios`) and pins the
tail-tolerance headline: under a wedged replica, hedged dispatch beats
primary-only on p99 latency while spending less than twice its ISN time.
``run_bench_faults.py`` writes the same grid to ``BENCH_faults.json``.
"""

import numpy as np
import pytest

from repro.cluster import FaultSchedule, Outage, default_matrix, run_matrix
from repro.metrics import summarize_run


def test_ext_fault_injection(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    half = trace.duration * 1000.0 / 2
    dead = list(range(0, testbed.cluster.n_shards, 4))  # every 4th ISN
    faults = FaultSchedule(
        outages=[Outage(sid, half, 1e12) for sid in dead]
    )

    runs = {
        "exhaustive+timeout": testbed.cluster.run_trace(
            trace, testbed.make_policy("exhaustive"),
            faults=faults, response_timeout_ms=150.0,
        ),
        "cottage": testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), faults=faults
        ),
    }
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), faults=faults
        ),
        rounds=1, iterations=1,
    )

    print(f"\nExtension — fault injection (ISNs {dead} die at mid-trace):")
    rows = {}
    for name, run in runs.items():
        summary = summarize_run(run, truth, trace.name)
        before = [r for r in run.records if r.arrival_ms < half]
        after = [r for r in run.records if r.arrival_ms >= half]
        lat_before = float(np.mean([r.latency_ms for r in before]))
        lat_after = float(np.mean([r.latency_ms for r in after]))
        p_after = float(np.mean([
            truth.precision(r.query, r.result.doc_ids()) for r in after
        ]))
        rows[name] = (lat_before, lat_after, p_after)
        print(
            f"  {name:<20} latency before/after: {lat_before:6.2f} / "
            f"{lat_after:6.2f} ms   P@10 after: {p_after:.3f}"
        )

    ex_before, ex_after, ex_p = rows["exhaustive+timeout"]
    co_before, co_after, co_p = rows["cottage"]
    # Exhaustive pays the full safety timeout on every post-failure query
    # that touches a dead shard; Cottage's budgets stay query-sized.
    assert co_after < ex_after
    # Both keep answering with useful (if partial) results.
    assert ex_p > 0.4 and co_p > 0.4


@pytest.mark.faults
def test_ext_fault_scenario_matrix(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    cases = default_matrix(
        policies=("exhaustive", "cottage"),
        scenarios=("slow_replica", "outage"),
    )

    results = benchmark.pedantic(
        lambda: run_matrix(
            testbed.cluster, testbed.make_policy, trace, truth, cases,
            seed=testbed.scale.seed, response_timeout_ms=150.0,
        ),
        rounds=1, iterations=1,
    )
    by_label = {
        (c.scenario, c.policy, c.mode): c for c in results
    }

    print("\nExtension — fault scenario matrix:")
    for cell in results:
        print(
            f"  {cell.scenario:<13} {cell.policy:<11} {cell.mode:<8} "
            f"R={cell.n_replicas}  p50 {cell.p50_latency_ms:7.2f}  "
            f"p99 {cell.p99_latency_ms:7.2f}  P@K {cell.avg_precision:.3f}  "
            f"hedges {cell.hedges_issued:5d}  "
            f"waste {100.0 * cell.wasted_work_ratio:5.1f}%"
        )

    for policy in ("exhaustive", "cottage"):
        primary = by_label[("slow_replica", policy, "primary")]
        hedged = by_label[("slow_replica", policy, "hedged")]
        tied = by_label[("slow_replica", policy, "tied")]
        # The tail-tolerance headline: a budget-aware hedge routes around
        # the wedged replica...
        assert hedged.p99_latency_ms < primary.p99_latency_ms
        assert tied.p99_latency_ms < primary.p99_latency_ms
        # ...without resorting to brute-force duplication: total ISN time
        # stays under twice the primary-only run's.
        assert hedged.total_service_ms < 2.0 * primary.total_service_ms
        assert hedged.hedges_issued > 0
        # Routing around the straggler also recovers the quality the
        # primary-only run lost to deadline/timeout drops.
        assert hedged.avg_dropped_shards <= primary.avg_dropped_shards
        assert hedged.quality_loss <= primary.quality_loss + 1e-9
        # A whole-shard outage is beyond what replication can fix: no
        # mode may degrade quality below the primary baseline.
        out_primary = by_label[("outage", policy, "primary")]
        out_hedged = by_label[("outage", policy, "hedged")]
        assert out_hedged.quality_loss <= out_primary.quality_loss + 0.02
