"""Extension — graceful degradation under ISN failures.

Kills a quarter of the ISNs mid-trace and compares exhaustive search
(saved only by an aggregator safety timeout) against Cottage (whose
per-query budgets bound the damage natively).  Budgets turn a dead node
into an ordinary straggler — latency stays low and quality degrades only
by the dead shards' contributions.
"""

import numpy as np

from repro.cluster import FaultSchedule, Outage
from repro.metrics import summarize_run


def test_ext_fault_injection(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    half = trace.duration * 1000.0 / 2
    dead = list(range(0, testbed.cluster.n_shards, 4))  # every 4th ISN
    faults = FaultSchedule(
        outages=[Outage(sid, half, 1e12) for sid in dead]
    )

    runs = {
        "exhaustive+timeout": testbed.cluster.run_trace(
            trace, testbed.make_policy("exhaustive"),
            faults=faults, response_timeout_ms=150.0,
        ),
        "cottage": testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), faults=faults
        ),
    }
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), faults=faults
        ),
        rounds=1, iterations=1,
    )

    print(f"\nExtension — fault injection (ISNs {dead} die at mid-trace):")
    rows = {}
    for name, run in runs.items():
        summary = summarize_run(run, truth, trace.name)
        before = [r for r in run.records if r.arrival_ms < half]
        after = [r for r in run.records if r.arrival_ms >= half]
        lat_before = float(np.mean([r.latency_ms for r in before]))
        lat_after = float(np.mean([r.latency_ms for r in after]))
        p_after = float(np.mean([
            truth.precision(r.query, r.result.doc_ids()) for r in after
        ]))
        rows[name] = (lat_before, lat_after, p_after)
        print(
            f"  {name:<20} latency before/after: {lat_before:6.2f} / "
            f"{lat_after:6.2f} ms   P@10 after: {p_after:.3f}"
        )

    ex_before, ex_after, ex_p = rows["exhaustive+timeout"]
    co_before, co_after, co_p = rows["cottage"]
    # Exhaustive pays the full safety timeout on every post-failure query
    # that touches a dead shard; Cottage's budgets stay query-sized.
    assert co_after < ex_after
    # Both keep answering with useful (if partial) results.
    assert ex_p > 0.4 and co_p > 0.4
