"""Extension — how much of the oracle gap does Cottage capture?

An oracle with perfect quality and latency knowledge bounds what
Cottage's mechanism (cut + budget + boost) could possibly achieve.  This
bench reports exhaustive vs Cottage vs oracle and the fraction of the
oracle's latency/resource gains the learned predictions realize.
"""

from repro.metrics import summarize_run
from repro.policies import OraclePolicy


def test_ext_oracle_gap(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    oracle = OraclePolicy(testbed.cluster, truth)

    rows = {
        "exhaustive": summarize_run(testbed.run(trace, "exhaustive"), truth),
        "cottage": summarize_run(testbed.run(trace, "cottage"), truth),
        "oracle": summarize_run(
            testbed.cluster.run_trace(trace, oracle), truth
        ),
    }
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, OraclePolicy(testbed.cluster, truth)
        ),
        rounds=1, iterations=1,
    )

    print("\nExtension — oracle gap (wikipedia):")
    print("  policy      avg_ms   P@10   ISNs   C_RES")
    for name, s in rows.items():
        print(
            f"  {name:<10} {s.avg_latency_ms:7.2f}  {s.avg_precision:.3f}"
            f"  {s.avg_selected_isns:5.2f}  {s.avg_docs_searched:7.1f}"
        )
    ex, co, orc = rows["exhaustive"], rows["cottage"], rows["oracle"]
    latency_capture = (ex.avg_latency_ms - co.avg_latency_ms) / max(
        ex.avg_latency_ms - orc.avg_latency_ms, 1e-9
    )
    print(f"  latency-gap capture: {latency_capture:.0%}")

    # The oracle is perfect on quality and at least as selective as Cottage.
    assert orc.avg_precision > 0.99
    assert orc.avg_selected_isns <= co.avg_selected_isns + 0.5
    # Cottage captures a substantial share of the achievable latency gain.
    assert latency_capture > 0.5
