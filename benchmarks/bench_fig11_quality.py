"""Fig. 11 — average P@10 (paper Section V-B)."""

from repro.experiments import fig11_quality


def test_fig11_quality(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig11_quality.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig11_quality.format_report(result))
    for row in result.p_at_10.values():
        assert row["exhaustive"] == 1.0
        # Cottage trades a bounded amount of quality for latency.
        assert row["cottage"] >= 0.8
        # Rank-S's sampled votes are the weakest quality signal.
        assert row["rank_s"] < row["cottage"]
