"""Extension — aggregator result caching (paper ref [1]).

The evaluation traces are Zipf-skewed, so a small aggregator cache
answers a large fraction of queries without touching any ISN — compounding
Cottage's latency and power savings.  Not a paper figure; quantifies how
the reproduction behaves with the production-standard cache in front.
"""

import numpy as np

from repro.cluster import ResultCache
from repro.metrics import summarize_run


def test_ext_result_cache(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)

    plain = summarize_run(testbed.run(trace, "cottage"), truth, trace.name)
    cache = ResultCache(capacity=256)
    cached_run = testbed.cluster.run_trace(
        trace, testbed.make_policy("cottage"), cache=cache
    )
    cached = summarize_run(cached_run, truth, trace.name)
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), cache=ResultCache(capacity=256)
        ),
        rounds=1, iterations=1,
    )

    stats = cached_run.cache_stats
    print("\nExtension — result cache in front of Cottage (wiki):")
    print(f"  hit rate: {stats.hit_rate:.1%} ({stats.hits}/{stats.lookups})")
    print(f"  avg latency: {plain.avg_latency_ms:.2f} -> {cached.avg_latency_ms:.2f} ms")
    print(f"  power:       {plain.avg_power_w:.2f} -> {cached.avg_power_w:.2f} W")
    print(f"  P@10:        {plain.avg_precision:.3f} -> {cached.avg_precision:.3f}")

    assert stats.hit_rate > 0.3
    assert cached.avg_latency_ms < plain.avg_latency_ms
    assert cached.avg_power_w <= plain.avg_power_w + 0.1
    assert not np.isnan(cached.avg_precision)
