"""Headline claims — abstract numbers, measured (see EXPERIMENTS.md)."""

from conftest import full_fidelity

from repro.experiments import headline


def test_headline(benchmark, testbed):
    result = benchmark.pedantic(lambda: headline.run(testbed), rounds=1, iterations=1)
    print()
    print(headline.format_report(result))
    # How much retrieval the memo layer absorbed, and through which
    # executor it fanned out (REPRO_WORKERS; serial by default).
    stats = testbed.cluster.searcher_cache_stats()
    print(
        f"retrieval fan-out: {testbed.cluster.executor!r}, memo "
        f"{sum(s.hits for s in stats)} hits / "
        f"{sum(s.computations for s in stats)} evaluations"
    )
    # The reproduction's bars (documented in EXPERIMENTS.md): direction and
    # rough magnitude of every abstract claim.
    assert result.latency_reduction > 0.2
    assert result.p95_factor > 1.4
    assert result.docs_ratio > 1.1
    assert result.p_at_10 > 0.75
    if full_fidelity(testbed):
        assert result.latency_reduction > 0.3
        assert result.docs_ratio > 1.3
        assert result.power_saving > 0.05
        assert result.p_at_10 > 0.85
