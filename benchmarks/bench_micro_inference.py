"""Microbenchmarks — predictor inference and Algorithm 1 decision cost.

The paper reports 41 us (quality) and 70 us (latency) per inference and
argues the whole coordination round is negligible; these benches measure
the reproduction's equivalents, plus the fused batched plane against the
per-query reference loop.
"""

from conftest import emit, full_fidelity

from repro.cluster.types import ClusterView
from repro.core import CottagePolicy
from repro.experiments import bench_inference
from repro.predictors import latency_features, quality_features


def _view(testbed):
    n = testbed.cluster.n_shards
    return ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=testbed.cluster.freq_scale.default_ghz,
        max_freq_ghz=testbed.cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(0.0 for _ in range(n)),
    )


def test_micro_quality_inference(benchmark, testbed):
    query = testbed.wikipedia_trace[0]
    stats = testbed.bank.stats_indexes[0]
    features = quality_features(query.terms, stats)
    model = testbed.bank.quality_k_models[0]
    count = benchmark(lambda: model.predict_one(features))
    assert 0 <= count <= testbed.cluster.k


def test_micro_latency_inference(benchmark, testbed):
    query = testbed.wikipedia_trace[0]
    stats = testbed.bank.stats_indexes[0]
    features = latency_features(query.terms, stats)
    model = testbed.bank.latency_models[0]
    service = benchmark(lambda: model.predict_one_ms(features))
    assert service > 0


def test_micro_budget_decision(benchmark, testbed):
    policy = CottagePolicy(testbed.bank, network=testbed.cluster.network)
    view = _view(testbed)
    query = testbed.wikipedia_trace[0]
    policy.decide(query, view)  # warm the prediction cache
    decision = benchmark(lambda: policy.decide(query, view))
    assert decision.shard_ids


def test_micro_batched_speedup(testbed):
    """Fused batched plane vs. the per-query loop — whole distinct trace.

    The batched kernels must be bit-identical to the reference loop and
    >= 5x faster at the paper's 16-shard fidelity (the win scales with
    shard count, so unit scale only asserts it is not a regression).
    """
    result = bench_inference.run(testbed, repeats=3)
    emit(bench_inference.format_report(result))
    assert result.bit_identical
    floor = 5.0 if full_fidelity(testbed) else 1.5
    assert result.speedup >= floor, (
        f"batched inference speedup {result.speedup:.2f}x below {floor}x"
    )
