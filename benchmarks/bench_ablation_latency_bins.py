"""Ablation — latency-bin resolution (DESIGN.md design decision).

The latency predictor classifies log-spaced service-time bins; the paper
notes its model has "more neurons on the output layer".  This bench sweeps
the bin count: too few bins give coarse budgets, too many starve each class
of training data.
"""

import numpy as np

from repro.predictors import LatencyBinning, LatencyPredictor, build_latency_dataset
from repro.workloads import training_queries


def test_ablation_latency_bins(benchmark, testbed):
    queries = training_queries(testbed.corpus, testbed.scale.n_training_queries,
                               seed=testbed.scale.seed + 1000)
    dataset = build_latency_dataset(
        0, testbed.bank.stats_indexes[0], testbed.cluster, queries
    )
    train, test = dataset.split(0.2)

    rows = {}
    for n_bins in (8, 16, 24, 40):
        model = LatencyPredictor(LatencyBinning.logarithmic(n_bins=n_bins), seed=0)
        model.fit(train.features, train.service_ms,
                  iterations=testbed.scale.latency_iterations)
        predicted = model.predict_service_ms(test.features)
        rel_err = float(
            np.median(np.abs(predicted - test.service_ms) / np.maximum(test.service_ms, 0.1))
        )
        rows[n_bins] = (model.accuracy(test.features, test.service_ms), rel_err)

    benchmark.pedantic(
        lambda: LatencyPredictor(seed=0).fit(
            train.features, train.service_ms,
            iterations=testbed.scale.latency_iterations,
        ),
        rounds=1, iterations=1,
    )

    print("\nAblation — latency bin count (ISN-0):")
    print("  bins   ±1-bin accuracy   median relative error")
    for n_bins, (accuracy, rel_err) in rows.items():
        print(f"  {n_bins:<6} {accuracy:.3f}            {rel_err:.3f}")
    # More bins -> finer service-time resolution (lower relative error)
    # even as exact-bin accuracy falls.
    assert rows[40][1] <= rows[8][1] + 0.05
