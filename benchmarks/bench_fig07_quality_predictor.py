"""Fig. 7 — quality predictor training curve, per-ISN accuracy, inference."""

import numpy as np

from repro.experiments import fig07_quality_predictor


def test_fig07_quality_predictor(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig07_quality_predictor.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig07_quality_predictor.format_report(result))
    # Training improves over the untrained ~1/(K+1) baseline.
    chance = 1.0 / (testbed.cluster.k + 1)
    assert result.curve_accuracy[-1] > chance * 2
    # Inference stays in the paper's microsecond regime (well under 1 ms).
    assert float(np.mean(result.per_isn_inference_us)) < 1000.0
