"""Benchmark fixtures.

One trained testbed is shared by every benchmark in the session: the
evaluation figures all read the same workload, index and trained
predictors, just like the paper's single-testbed evaluation.  Set
``REPRO_SCALE=unit|small|full`` to change the size (default: small) and
``REPRO_WORKERS=N`` to fan retrieval out over N worker threads (default
serial; every simulated number is bit-identical either way — the
executor only moves wall-clock).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scale, Testbed  # noqa: E402


def _scale() -> Scale:
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return getattr(Scale, name)()
    except AttributeError:
        raise ValueError(f"unknown REPRO_SCALE {name!r}; use unit, small or full")


def _workers() -> int | None:
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}")


@pytest.fixture(scope="session")
def testbed() -> Testbed:
    return Testbed.build(_scale(), workers=_workers())


def emit(report: str) -> None:
    """Print an experiment report so it lands in the benchmark output."""
    print()
    print(report)


def full_fidelity(testbed: Testbed) -> bool:
    """Whether the testbed is big enough for the paper-shape assertions.

    At unit scale (8 shards, a few hundred documents) the simulation still
    runs end to end but some shape margins (power ordering, C_RES ratios)
    fall inside noise; benches assert them strictly only at >= small scale.
    """
    return testbed.cluster.n_shards >= 16
