"""Fig. 6 — score histogram vs fitted Gamma tail."""

from repro.experiments import fig06_score_distribution


def test_fig06_score_distribution(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig06_score_distribution.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig06_score_distribution.format_report(result))
    assert sum(count for _, _, count in result.histogram) > 0
    assert result.gamma_above_kth >= 0.0
