"""Fig. 10 — overall latency on both traces (paper Section V-A)."""

from repro.experiments import fig10_latency


def test_fig10_latency(benchmark, testbed):
    results = benchmark.pedantic(
        lambda: fig10_latency.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig10_latency.format_report(results))
    for result in results.values():
        # The paper's ordering: Cottage fastest, Taily near exhaustive.
        assert result.avg_ms["cottage"] < result.avg_ms["exhaustive"]
        assert result.avg_ms["cottage"] < result.avg_ms["taily"]
        assert result.p95_ms["cottage"] < result.p95_ms["exhaustive"]
