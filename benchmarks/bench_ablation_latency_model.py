"""Ablation — latency model: bin classification (paper) vs regression.

Same Table-II features and MLP trunk; the paper's bin classifier against a
log-MSE regressor.  Prints within-±30% accuracy and median relative error
for both on one ISN's held-out queries.
"""

import numpy as np

from repro.predictors import LatencyPredictor, build_latency_dataset
from repro.predictors.latency_regression import LatencyRegressor
from repro.workloads import training_queries


def test_ablation_latency_model(benchmark, testbed):
    queries = training_queries(
        testbed.corpus, testbed.scale.n_training_queries,
        seed=testbed.scale.seed + 1000,
    )
    dataset = build_latency_dataset(
        0, testbed.bank.stats_indexes[0], testbed.cluster, queries
    )
    train, test = dataset.split(0.2)
    iterations = testbed.scale.latency_iterations

    classifier = LatencyPredictor(seed=0)
    classifier.fit(train.features, train.service_ms, iterations=iterations)
    regressor = LatencyRegressor(seed=0)
    regressor.fit(train.features, train.service_ms, iterations=iterations)
    benchmark.pedantic(
        lambda: LatencyRegressor(seed=0).fit(
            train.features, train.service_ms, iterations=iterations
        ),
        rounds=1, iterations=1,
    )

    cls_pred = classifier.predict_service_ms(test.features)
    cls_rel = float(np.median(
        np.abs(cls_pred - test.service_ms) / np.maximum(test.service_ms, 1e-9)
    ))
    cls_acc = float(np.mean(
        np.abs(cls_pred - test.service_ms) / np.maximum(test.service_ms, 1e-9) <= 0.3
    ))
    reg_acc = regressor.accuracy(test.features, test.service_ms)
    reg_rel = regressor.median_relative_error(test.features, test.service_ms)

    print("\nAblation — latency model family (ISN-0, held out):")
    print(f"  classifier (paper):  ±30% accuracy={cls_acc:.3f}  "
          f"median rel err={cls_rel:.3f}")
    print(f"  regressor (log-MSE): ±30% accuracy={reg_acc:.3f}  "
          f"median rel err={reg_rel:.3f}")
    # Both model families must beat a constant predictor decisively.
    baseline = float(np.median(train.service_ms))
    base_acc = float(np.mean(
        np.abs(baseline - test.service_ms) / np.maximum(test.service_ms, 1e-9) <= 0.3
    ))
    print(f"  constant baseline:   ±30% accuracy={base_acc:.3f}")
    assert cls_acc > base_acc
    assert reg_acc > base_acc * 0.9
