"""Fig. 4 — query latency vs CPU frequency."""

from repro.experiments import fig04_frequency


def test_fig04_frequency(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig04_frequency.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig04_frequency.format_report(result))
    freqs = sorted(result.latency_by_freq_ms)
    latencies = [result.latency_by_freq_ms[f] for f in freqs]
    # Monotonically faster with frequency; full sweep ratio = f_max/f_min.
    assert all(a > b for a, b in zip(latencies, latencies[1:]))
    assert abs(result.speedup - freqs[-1] / freqs[0]) < 1e-6
