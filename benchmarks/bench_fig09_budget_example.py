"""Fig. 9 — worked Algorithm 1 example."""

from repro.experiments import fig09_budget_example


def test_fig09_budget_example(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig09_budget_example.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig09_budget_example.format_report(result))
    decision = result.decision
    assert decision.selected
    assert decision.time_budget_ms is not None
    # The budget covers every kept ISN's boosted latency.
    by_id = {i.shard_id: i for i in result.inputs}
    for sid in decision.selected:
        assert by_id[sid].latency_boosted_ms <= decision.time_budget_ms + 1e-9
