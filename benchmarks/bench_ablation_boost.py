"""Ablation — frequency boosting (paper Section II-B / DESIGN.md).

Cottage accelerates slow high-quality ISNs to f_max.  Disabling the boost
forces Algorithm 1 to budget at current-frequency latencies: the budget
grows, latency rises, power falls — the paper's motivation for boosting in
the first place.
"""

from repro.core import CottagePolicy
from repro.metrics import summarize_run


def test_ablation_boost(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    with_boost = summarize_run(
        testbed.cluster.run_trace(
            trace, CottagePolicy(testbed.bank, network=testbed.cluster.network)
        ),
        truth, trace.name,
    )
    without = summarize_run(
        testbed.cluster.run_trace(
            trace,
            CottagePolicy(testbed.bank, enable_boost=False,
                          network=testbed.cluster.network),
        ),
        truth, trace.name,
    )
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace,
            CottagePolicy(testbed.bank, enable_boost=False,
                          network=testbed.cluster.network),
        ),
        rounds=1, iterations=1,
    )

    print("\nAblation — frequency boosting (Wikipedia trace):")
    for name, s in (("with boost", with_boost), ("without boost", without)):
        print(
            f"  {name:<14} avg={s.avg_latency_ms:6.2f} ms  p95={s.p95_latency_ms:6.2f}"
            f"  P@10={s.avg_precision:.3f}  power={s.avg_power_w:.2f} W"
        )
    # Boosting buys latency at a power premium.
    assert with_boost.avg_latency_ms <= without.avg_latency_ms * 1.02
    assert with_boost.avg_power_w >= without.avg_power_w * 0.98
