"""Extension — Cottage + PowerNap-style sleep states.

The paper's Fig. 14 power savings come from touching fewer ISNs; the
sleep-state literature it cites (PowerNap, DreamWeaver) saves on the ISNs
left idle.  Composing the two: under Cottage, the ~9 of 16 ISNs a query
skips accumulate real idle stretches that naps convert into energy — the
composition the paper's energy argument implies but does not evaluate.
"""

from repro.cluster import SleepPolicy
from repro.metrics import summarize_run


def test_ext_sleep(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    sleep = SleepPolicy(nap_after_ms=20.0, wake_ms=1.0)

    rows = {}
    for name, kwargs in (
        ("exhaustive", {}),
        ("exhaustive+nap", {"sleep": sleep}),
        ("cottage", {}),
        ("cottage+nap", {"sleep": sleep}),
    ):
        policy = testbed.make_policy(name.split("+")[0])
        run = testbed.cluster.run_trace(trace, policy, **kwargs)
        rows[name] = summarize_run(run, truth, trace.name)
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), sleep=sleep
        ),
        rounds=1, iterations=1,
    )

    print("\nExtension — sleep states composed with selection (wiki):")
    print("  scheme           avg_ms   P@10   power_W")
    for name, s in rows.items():
        print(
            f"  {name:<16} {s.avg_latency_ms:6.2f}  {s.avg_precision:.3f}"
            f"  {s.avg_power_w:7.2f}"
        )
    # Naps save power for both policies at a bounded latency cost.
    assert rows["cottage+nap"].avg_power_w < rows["cottage"].avg_power_w
    assert (
        rows["exhaustive+nap"].avg_power_w < rows["exhaustive"].avg_power_w + 0.1
    )
    assert (
        rows["cottage+nap"].avg_latency_ms
        < rows["cottage"].avg_latency_ms + 3.0
    )
    assert rows["cottage+nap"].avg_precision >= rows["cottage"].avg_precision - 0.05