"""Extension — document allocation vs predictor learnability.

EXPERIMENTS.md deviation 3 claims that the paper-style uniform-work
allocation (random/hash) destroys quality-label learnability at
reproduction scale, which is why this repo partitions topically.  This
bench measures that claim directly: train the same quality model on the
same corpus under topical vs hash allocation and compare held-out
accuracy and the zero/nonzero cut agreement.
"""

import numpy as np

from repro.index import build_shards, partition_hash, partition_topical
from repro.index.term_stats import TermStatsIndex
from repro.cluster import SearchCluster
from repro.metrics import GroundTruth
from repro.predictors import QualityPredictor, build_quality_dataset
from repro.text import WhitespaceAnalyzer
from repro.workloads import training_queries


def _probe(testbed, partitioner, probe_shards=(0, 1)):
    groups = partitioner(testbed.corpus.documents, testbed.scale.n_shards)
    shards = build_shards(groups, analyzer=WhitespaceAnalyzer())
    cluster = SearchCluster(shards, k=testbed.cluster.k)
    queries = training_queries(
        testbed.corpus, testbed.scale.n_training_queries,
        seed=testbed.scale.seed + 1000,
    )
    truth = GroundTruth.build(cluster.searcher, queries, k=cluster.k)
    accs, zero_agreement = [], []
    for sid in probe_shards:
        dataset = build_quality_dataset(
            sid, TermStatsIndex(shards[sid], k=cluster.k), queries, truth
        )
        train, test = dataset.split(0.2)
        model = QualityPredictor(cluster.k, seed=sid)
        model.fit(train.features, train.labels_k,
                  iterations=testbed.scale.quality_iterations)
        predicted = model.predict_counts(test.features)
        labels = np.clip(test.labels_k, 0, cluster.k)
        accs.append(float(np.mean(predicted == labels)))
        zero_agreement.append(float(np.mean((predicted == 0) == (labels == 0))))
    return float(np.mean(accs)), float(np.mean(zero_agreement))


def test_ext_partitioning_learnability(benchmark, testbed):
    topical_acc, topical_zero = _probe(
        testbed, lambda docs, n: partition_topical(docs, n)
    )
    hash_acc, hash_zero = _probe(testbed, partition_hash)
    benchmark.pedantic(
        lambda: _probe(testbed, lambda docs, n: partition_topical(docs, n),
                       probe_shards=(0,)),
        rounds=1, iterations=1,
    )

    print("\nExtension — allocation vs quality-label learnability:")
    print(f"  topical: accuracy={topical_acc:.3f}  zero/nonzero={topical_zero:.3f}")
    print(f"  hash:    accuracy={hash_acc:.3f}  zero/nonzero={hash_zero:.3f}")
    print("  (uniform-work allocation spreads each query's top-10 as"
          " balls-into-bins across statistically identical shards; the"
          " per-shard features cannot recover that randomness at"
          " hundreds-of-docs shard sizes)")
    # The documented deviation, on the decision-relevant metric: the
    # zero/nonzero cut call is at least as learnable under topical
    # allocation.  (Exact-class accuracy is too noisy to assert at unit
    # scale — a handful of held-out rows per shard.)
    assert topical_zero >= hash_zero - 0.02
