"""Telemetry disabled-mode overhead gate (<2% of ``run_trace``).

Not a paper figure: the CI gate behind the telemetry plane.  Two claims
are pinned:

1. **Invariance** — a run with telemetry attached is bit-identical
   (latencies, power, merged results) to the same run without it.
2. **Disabled-mode overhead < 2%** — with no telemetry session, every
   instrumentation site costs one cached attribute test (the hot paths
   keep a ``None`` tracer reference and pre-resolved null instruments;
   see ``ISNServer.__init__``).  Direct A/B wall-clock differences at
   that magnitude are far below CI timer noise, so the gate is modeled
   instead of sampled: count the instrumentation operations an *enabled*
   run actually performs (spans opened/closed, metric observations, plus
   a generous per-query/per-job counter budget), price each at the
   measured net cost of the guard primitive itself (attribute load +
   ``is not None``), and require the product to stay under 2% of the
   measured disabled run time.  The op count over-approximates the real
   guard count by ~3x, so the model bounds the true overhead from above
   while staying deterministic enough to gate in CI.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.telemetry import NO_TELEMETRY, Telemetry

GATE_FRACTION = 0.02


def _best_run_ms(cluster, trace, make_policy, repeats: int = 3, **kwargs) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        cluster.run_trace(trace, make_policy(), **kwargs)
        best = min(best, (time.perf_counter() - start) * 1000.0)
    return best


class _Probe:
    """Mimics an instrumented object whose telemetry is disabled."""

    __slots__ = ("_tracer",)

    def __init__(self) -> None:
        self._tracer = None


def _guard_primitive_ns(iterations: int = 300_000, repeats: int = 3) -> float:
    """Net cost of the disabled-path guard: attribute load + is-None test.

    Measured as (guarded loop - empty loop) / iterations, best of
    ``repeats`` so scheduler hiccups can only inflate the baseline run it
    hit, never the reported minimum.
    """
    probe = _Probe()
    hits = 0
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            if probe._tracer is not None:
                hits += 1
        guarded = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            pass
        baseline = time.perf_counter() - start
        best = min(best, guarded - baseline)
    assert hits == 0
    return max(best, 0.0) * 1e9 / iterations


def _instrumentation_ops(telemetry: Telemetry, run) -> int:
    """Over-count of per-run instrumentation operations.

    Spans cost an open and a close; histograms/gauges one call per
    observation; counters are bounded by a per-query and per-job budget
    (no instrumented path touches more than ~10 counters per query or 3
    per ISN job).
    """
    n_spans = 2 * len(telemetry.tracer.spans)
    n_hist = 0
    n_gauge = 0
    for _, instrument in telemetry.metrics:
        n_hist += getattr(instrument, "count", 0) or 0
        n_gauge += getattr(instrument, "updates", 0) or 0
    n_queries = len(run.records)
    n_jobs = sum(len(record.outcomes) for record in run.records)
    n_counters = 10 * n_queries + 3 * n_jobs
    return n_spans + n_hist + n_gauge + n_counters


def test_telemetry_invariance_and_disabled_overhead(testbed):
    cluster = testbed.cluster
    trace = testbed.wikipedia_trace
    make_policy = lambda: testbed.make_policy("cottage")  # noqa: E731

    # Warm every memo (searchers, predictions) so both arms replay the
    # same hot caches and the timing compares simulation work only.
    cluster.run_trace(trace, make_policy())

    telemetry = Telemetry()
    enabled_run = cluster.run_trace(trace, make_policy(), telemetry=telemetry)
    disabled_run = cluster.run_trace(trace, make_policy())

    # ---- claim 1: telemetry observes without perturbing ------------------
    assert enabled_run.latencies_ms() == disabled_run.latencies_ms()
    assert enabled_run.power == disabled_run.power
    for a, b in zip(enabled_run.records, disabled_run.records):
        assert a.result.hits == b.result.hits
        assert a.decision.shard_ids == b.decision.shard_ids

    # ---- claim 2: modeled disabled overhead under the gate ---------------
    disabled_ms = _best_run_ms(cluster, trace, make_policy)
    enabled_ms = _best_run_ms(
        cluster, trace, make_policy, telemetry=Telemetry()
    )
    ops = _instrumentation_ops(telemetry, enabled_run)
    primitive_ns = _guard_primitive_ns()
    modeled_overhead_ms = ops * primitive_ns / 1e6
    budget_ms = GATE_FRACTION * disabled_ms

    emit(
        "\n".join(
            [
                "Telemetry overhead "
                f"({len(enabled_run.records)} queries, "
                f"{len(telemetry.tracer.spans)} spans, "
                f"{len(telemetry.metrics)} instruments)",
                f"  disabled run (best of 3) : {disabled_ms:9.2f} ms",
                f"  enabled run  (best of 3) : {enabled_ms:9.2f} ms",
                f"  instrumentation ops      : {ops:9d}",
                f"  guard primitive          : {primitive_ns:9.1f} ns/op",
                f"  modeled disabled cost    : {modeled_overhead_ms:9.3f} ms "
                f"(gate {budget_ms:.3f} ms = "
                f"{GATE_FRACTION:.0%} of disabled run)",
            ]
        )
    )
    assert modeled_overhead_ms < budget_ms, (
        f"modeled disabled-mode telemetry overhead {modeled_overhead_ms:.3f} ms "
        f"exceeds {GATE_FRACTION:.0%} of the {disabled_ms:.2f} ms run"
    )


def test_disabled_session_records_nothing(testbed):
    run = testbed.cluster.run_trace(
        testbed.wikipedia_trace,
        testbed.make_policy("cottage"),
        telemetry=NO_TELEMETRY,
    )
    assert run.records
    assert NO_TELEMETRY.tracer.spans == []
    assert len(NO_TELEMETRY.metrics) == 0
