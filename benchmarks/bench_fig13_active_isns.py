"""Fig. 13 — average selected ISNs per query (paper Section V-C)."""

from conftest import full_fidelity

from repro.experiments import fig13_active_isns


def test_fig13_active_isns(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig13_active_isns.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig13_active_isns.format_report(result))
    n = testbed.cluster.n_shards
    for row in result.active.values():
        assert row["exhaustive"] == n
        # Cottage needs the fewest ISNs of the quality-preserving policies.
        assert row["cottage"] < row["taily"]
        if full_fidelity(testbed):
            assert row["cottage"] < n / 2 + 1
