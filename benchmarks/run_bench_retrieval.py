"""Standalone retrieval-kernel benchmark harness.

Builds the synthetic 16-shard zipfian corpus, times every scalar
reference evaluator against its block-scored arena kernel, prints the
report, and writes ``BENCH_retrieval.json`` for the perf trajectory
(CI uploads it as an artifact)::

    python benchmarks/run_bench_retrieval.py --out BENCH_retrieval.json

Exits nonzero if any strategy pair ever disagrees bit-for-bit, if the
MaxScore kernel speedup falls below ``--fail-below`` (default 3x — the
floor the kernels were tuned against at this corpus scale), or if the
galloping conjunctive kernel falls below ``--fail-below-conjunctive``
(default 2.5x).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench_retrieval  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, default=bench_retrieval.N_SHARDS
    )
    parser.add_argument(
        "--docs-per-shard", type=int, default=bench_retrieval.DOCS_PER_SHARD
    )
    parser.add_argument(
        "--queries", type=int, default=bench_retrieval.N_QUERIES
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=bench_retrieval.SEED)
    parser.add_argument(
        "--out", default="BENCH_retrieval.json", help="JSON output path"
    )
    parser.add_argument(
        "--fail-below", type=float, default=3.0,
        help="exit nonzero if the maxscore speedup falls below this factor",
    )
    parser.add_argument(
        "--fail-below-conjunctive", type=float, default=2.5,
        help="exit nonzero if the conjunctive speedup falls below this factor",
    )
    args = parser.parse_args(argv)

    print(
        f"building {args.shards}-shard x {args.docs_per_shard}-doc corpus "
        "and timing strategy pairs...",
        flush=True,
    )
    result = bench_retrieval.run(
        n_shards=args.shards,
        docs_per_shard=args.docs_per_shard,
        n_queries=args.queries,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(bench_retrieval.format_report(result))
    bench_retrieval.write_json(result, args.out)
    print(f"wrote {args.out}")

    if not result.bit_identical:
        broken = [s.strategy for s in result.strategies if not s.bit_identical]
        print(
            f"FAIL: kernels not bit-identical to references: {broken}",
            file=sys.stderr,
        )
        return 1
    maxscore = result.speedup("maxscore")
    if maxscore < args.fail_below:
        print(
            f"FAIL: maxscore kernel speedup {maxscore:.2f}x below "
            f"--fail-below {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    conjunctive = result.speedup("conjunctive")
    if conjunctive < args.fail_below_conjunctive:
        print(
            f"FAIL: conjunctive kernel speedup {conjunctive:.2f}x below "
            f"--fail-below-conjunctive {args.fail_below_conjunctive:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
