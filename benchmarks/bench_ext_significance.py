"""Extension — statistical significance of the latency improvements.

Paired bootstrap (per-query, same trace) confidence intervals for each
policy's mean latency saving over exhaustive search.  Heavy-tailed,
autocorrelated latencies make eyeballed means untrustworthy; this is the
check that the paper's Fig. 10 orderings are not noise here.
"""

from repro.metrics import compare_latencies


def test_ext_significance(benchmark, testbed):
    trace = testbed.wikipedia_trace
    exhaustive = testbed.run(trace, "exhaustive")
    results = {}
    for policy in ("taily", "rank_s", "cottage"):
        results[policy] = compare_latencies(exhaustive, testbed.run(trace, policy))
    benchmark.pedantic(
        lambda: compare_latencies(exhaustive, testbed.run(trace, "cottage")),
        rounds=1, iterations=1,
    )

    print("\nExtension — paired-bootstrap latency savings vs exhaustive (wiki):")
    for policy, r in results.items():
        marker = "significant" if r.significant else "NOT significant"
        print(
            f"  {policy:<8} mean saving {r.mean_difference:6.2f} ms  "
            f"95% CI [{r.ci_low:6.2f}, {r.ci_high:6.2f}]  {marker}"
        )
    # Cottage's saving is real and the largest of the three.
    assert results["cottage"].significant and results["cottage"].ci_low > 0
    assert (
        results["cottage"].mean_difference
        >= max(results["taily"].mean_difference, results["rank_s"].mean_difference)
    )
