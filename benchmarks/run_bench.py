"""Standalone inference-plane benchmark harness.

Builds a testbed, times the per-query reference loop against the fused
batched kernels, prints the report, and writes ``BENCH_inference.json``
for the perf trajectory (CI uploads it as an artifact)::

    python benchmarks/run_bench.py --scale small --out BENCH_inference.json

Exits nonzero if the batched plane is slower than ``--fail-below`` times
the loop, or if the two paths ever disagree bit-for-bit.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scale, Testbed, bench_inference  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_SCALE", "small"),
        help="unit, small or full (default: $REPRO_SCALE or small)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default="BENCH_inference.json", help="JSON output path"
    )
    parser.add_argument(
        "--fail-below", type=float, default=1.0,
        help="exit nonzero if speedup falls below this factor",
    )
    args = parser.parse_args(argv)

    try:
        scale = getattr(Scale, args.scale)()
    except AttributeError:
        parser.error(f"unknown scale {args.scale!r}; use unit, small or full")

    print(f"building {args.scale} testbed...", flush=True)
    testbed = Testbed.build(scale)
    result = bench_inference.run(testbed, repeats=args.repeats)
    print(bench_inference.format_report(result))
    bench_inference.write_json(result, args.out)
    print(f"wrote {args.out}")

    if not result.bit_identical:
        print("FAIL: batched predictions are not bit-identical", file=sys.stderr)
        return 1
    if result.speedup < args.fail_below:
        print(
            f"FAIL: speedup {result.speedup:.2f}x below "
            f"--fail-below {args.fail_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
