"""Extension — latency vs offered load.

The paper evaluates at one operating point; this sweep varies the arrival
rate and shows *why* coordination wins harder under load: exhaustive
search queues on every ISN, while Cottage's smaller fan-out keeps its own
queues short — the gap widens with utilization.
"""

import numpy as np

from repro.workloads import TraceConfig, generate_trace


def test_ext_load_sweep(benchmark, testbed):
    base_rate = testbed.scale.trace_rate_qps
    rates = [base_rate * f for f in (0.25, 0.5, 1.0)]
    rows = {}
    for rate in rates:
        trace = generate_trace(
            testbed.corpus,
            TraceConfig(
                flavour="wikipedia",
                n_distinct_queries=testbed.scale.trace_distinct,
                duration_s=min(testbed.scale.trace_duration_s, 20.0),
                arrival_rate_qps=rate,
                seed=testbed.scale.seed + 11,
            ),
        )
        exhaustive = testbed.cluster.run_trace(
            trace, testbed.make_policy("exhaustive")
        )
        cottage = testbed.cluster.run_trace(trace, testbed.make_policy("cottage"))
        rows[rate] = (
            float(np.mean(exhaustive.latencies_ms())),
            float(np.mean(cottage.latencies_ms())),
        )
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)

    print("\nExtension — mean latency vs offered load (wikipedia):")
    print("   qps    exhaustive   cottage   gap")
    gaps = []
    for rate, (ex, co) in rows.items():
        gap = ex / co
        gaps.append(gap)
        print(f"  {rate:6.1f}  {ex:9.2f}  {co:8.2f}  {gap:5.2f}x")
    # Cottage wins at every load, and the advantage does not shrink as the
    # cluster saturates.
    assert all(gap > 1.0 for gap in gaps)
    assert gaps[-1] >= gaps[0] * 0.8
