"""Fig. 2 — workload latency/quality variation (paper Section II-A)."""

from repro.experiments import fig02_variation


def test_fig02_variation(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig02_variation.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig02_variation.format_report(result))
    # Long tail: the histogram spans well beyond the modal bin.
    assert len(result.latency_bins) >= 4
    # Never does every ISN contribute to every query.
    assert result.modal_contributing_isns < testbed.cluster.n_shards
