"""Table II — latency-prediction features for an example query."""

from repro.experiments import tables_features
from repro.predictors import LATENCY_FEATURE_NAMES, latency_features


def test_table2_features(benchmark, testbed):
    result = tables_features.run(testbed)
    print()
    print(tables_features.format_report(result))
    assert [name for name, _ in result.latency_table] == list(LATENCY_FEATURE_NAMES)

    stats = testbed.bank.stats_indexes[result.shard_id]
    vector = benchmark(lambda: latency_features(result.query_terms, stats))
    assert vector.shape == (len(LATENCY_FEATURE_NAMES),)
