"""Extension — zero-class probability calibration.

Cottage's cut-confidence gate (EXPERIMENTS.md deviation 2) trusts the
quality model's P(zero contribution).  This bench prints the reliability
diagram and expected calibration error behind that trust: at high
confidence, predicted-zero shards should truly be zeros.
"""

from repro.predictors import zero_class_calibration
from repro.workloads import training_queries


def test_ext_calibration(benchmark, testbed):
    queries = training_queries(testbed.corpus, 80, seed=990)
    report = benchmark.pedantic(
        lambda: zero_class_calibration(testbed.bank, queries, n_bins=10),
        rounds=1, iterations=1,
    )
    print("\nExtension — P(zero contribution) reliability:")
    print(report.render())
    assert report.expected_calibration_error < 0.25
    confident = [b for b in report.bins if b.lo >= 0.8]
    if confident:
        pooled = sum(b.empirical_rate * b.count for b in confident) / sum(
            b.count for b in confident
        )
        # Confident zeros are overwhelmingly real zeros — the premise of
        # the cut_confidence=0.9 default.
        assert pooled > 0.7
