"""Standalone fault scenario-matrix harness.

Builds a testbed, replays the faults x replication x budget grid
(:mod:`repro.cluster.scenarios`), prints the scoreboard, and writes
``BENCH_faults.json`` for the resilience trajectory (CI uploads it as an
artifact)::

    python benchmarks/run_bench_faults.py --scale small --out BENCH_faults.json

Exits nonzero if the tail-tolerance headline regresses: under the
``slow_replica`` scenario, hedged dispatch must beat primary-only p99
latency while keeping total ISN time under ``--max-cost-ratio`` times
the primary-only run's.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.scenarios import default_matrix, run_matrix  # noqa: E402
from repro.experiments import Scale, Testbed  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_SCALE", "small"),
        help="unit, small or full (default: $REPRO_SCALE or small)",
    )
    parser.add_argument(
        "--trace", default="wikipedia", choices=("wikipedia", "lucene")
    )
    parser.add_argument(
        "--policies", nargs="*", default=("exhaustive", "cottage")
    )
    parser.add_argument(
        "--scenarios", nargs="*",
        default=("outage", "flaky_shard", "slow_replica", "correlated"),
    )
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--response-timeout-ms", type=float, default=150.0)
    parser.add_argument("--out", default="BENCH_faults.json")
    parser.add_argument(
        "--max-cost-ratio", type=float, default=2.0,
        help="fail if hedged total service exceeds this times primary-only",
    )
    args = parser.parse_args(argv)

    try:
        scale = getattr(Scale, args.scale)()
    except AttributeError:
        parser.error(f"unknown scale {args.scale!r}; use unit, small or full")

    print(f"building {args.scale} testbed...", flush=True)
    testbed = Testbed.build(scale)
    trace = {
        "wikipedia": testbed.wikipedia_trace,
        "lucene": testbed.lucene_trace,
    }[args.trace]
    cases = default_matrix(
        policies=tuple(args.policies),
        scenarios=tuple(args.scenarios),
        n_replicas=args.replicas,
    )
    print(f"running {len(cases)} matrix cells on {trace.name}...", flush=True)
    results = run_matrix(
        testbed.cluster,
        testbed.make_policy,
        trace,
        testbed.truth_for(trace),
        cases,
        seed=args.seed,
        response_timeout_ms=args.response_timeout_ms,
    )

    header = (
        f"{'scenario':<14} {'policy':<12} {'mode':<8} {'R':>2} "
        f"{'p50_ms':>8} {'p99_ms':>8} {'P@K':>6} {'Qloss':>6} "
        f"{'hedge':>6} {'waste%':>7}"
    )
    print(header)
    print("-" * len(header))
    for cell in results:
        print(
            f"{cell.scenario:<14} {cell.policy:<12} {cell.mode:<8} "
            f"{cell.n_replicas:>2} {cell.p50_latency_ms:>8.2f} "
            f"{cell.p99_latency_ms:>8.2f} {cell.avg_precision:>6.3f} "
            f"{cell.quality_loss:>6.3f} {cell.hedges_issued:>6} "
            f"{100.0 * cell.wasted_work_ratio:>6.1f}%"
        )

    payload = {
        "scale": args.scale,
        "trace": trace.name,
        "seed": args.seed,
        "response_timeout_ms": args.response_timeout_ms,
        "cells": [cell.row() for cell in results],
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")

    failures: list[str] = []
    if "slow_replica" in args.scenarios:
        by_key = {(c.scenario, c.policy, c.mode): c for c in results}
        for policy in args.policies:
            primary = by_key.get(("slow_replica", policy, "primary"))
            hedged = by_key.get(("slow_replica", policy, "hedged"))
            if primary is None or hedged is None:
                continue
            if hedged.p99_latency_ms >= primary.p99_latency_ms:
                failures.append(
                    f"{policy}: hedged p99 {hedged.p99_latency_ms:.2f} ms did "
                    f"not beat primary-only {primary.p99_latency_ms:.2f} ms"
                )
            if hedged.total_service_ms > args.max_cost_ratio * primary.total_service_ms:
                failures.append(
                    f"{policy}: hedged cost {hedged.total_service_ms:.0f} ms "
                    f"exceeds {args.max_cost_ratio:.1f}x primary-only "
                    f"{primary.total_service_ms:.0f} ms"
                )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
