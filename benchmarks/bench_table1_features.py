"""Table I — quality-prediction features for an example query."""

from repro.experiments import tables_features
from repro.predictors import QUALITY_FEATURE_NAMES, quality_features


def test_table1_features(benchmark, testbed):
    result = tables_features.run(testbed)
    print()
    print(tables_features.format_report(result))
    assert [name for name, _ in result.quality_table] == list(QUALITY_FEATURE_NAMES)

    # Benchmark the extraction kernel itself: it runs on every query at
    # every ISN, so its cost is part of Cottage's coordination overhead.
    stats = testbed.bank.stats_indexes[result.shard_id]
    vector = benchmark(lambda: quality_features(result.query_terms, stats))
    assert vector.shape == (len(QUALITY_FEATURE_NAMES),)
