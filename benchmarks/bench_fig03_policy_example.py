"""Fig. 3 — single-query policy comparison (the paper's "Canada" example)."""

from repro.experiments import fig03_policy_example


def test_fig03_policy_example(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig03_policy_example.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig03_policy_example.format_report(result))
    outcomes = {o.policy: o for o in result.outcomes}
    # Exhaustive is perfect but pays the straggler's latency.
    assert outcomes["exhaustive"].precision == 1.0
    assert outcomes["exhaustive"].budget_ms == max(result.service_ms)
    # Cottage responds faster than exhaustive at better quality than the
    # blind aggregation cut.
    assert outcomes["cottage"].budget_ms <= outcomes["exhaustive"].budget_ms
    assert outcomes["cottage"].precision >= outcomes["aggregation"].precision
