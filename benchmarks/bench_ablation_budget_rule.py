"""Ablation — the Q^{K/2} budget bar (DESIGN.md design decision).

Algorithm 1 sacrifices slow ISNs that only touch the bottom half of the
top-K.  This bench compares the paper's rule against the conservative
variant that pivots on Q^K (never sacrifices any contributor) and against
running with no prediction slack.
"""

import numpy as np

from repro.core import CottagePolicy
from repro.metrics import summarize_run


def _summary(testbed, policy):
    trace = testbed.wikipedia_trace
    run = testbed.cluster.run_trace(trace, policy)
    return summarize_run(run, testbed.truth_for(trace), trace.name)


def test_ablation_budget_rule(benchmark, testbed):
    variants = {
        "paper (pivot K/2)": CottagePolicy(testbed.bank, network=testbed.cluster.network),
        "conservative (pivot K)": CottagePolicy(
            testbed.bank, pivot_on_full_k=True, network=testbed.cluster.network
        ),
        "no slack": CottagePolicy(
            testbed.bank, budget_slack=1.0, network=testbed.cluster.network
        ),
    }
    rows = {}
    for name in variants:
        rows[name] = _summary(testbed, variants[name])
    # Time one representative decision stream under the paper's rule.
    benchmark.pedantic(
        lambda: _summary(testbed, CottagePolicy(testbed.bank, network=testbed.cluster.network)),
        rounds=1, iterations=1,
    )

    print("\nAblation — stage-2 budget bar (Wikipedia trace):")
    print("  variant                  avg_ms   p95_ms   P@10   ISNs")
    for name, s in rows.items():
        print(
            f"  {name:<24} {s.avg_latency_ms:6.2f}  {s.p95_latency_ms:7.2f}"
            f"  {s.avg_precision:.3f}  {s.avg_selected_isns:5.2f}"
        )
    paper_rule = rows["paper (pivot K/2)"]
    conservative = rows["conservative (pivot K)"]
    no_slack = rows["no slack"]
    # Pivoting on K keeps more ISNs (>= quality, >= latency).
    assert conservative.avg_precision >= paper_rule.avg_precision - 0.02
    assert conservative.avg_latency_ms >= paper_rule.avg_latency_ms * 0.95
    # Removing slack loses quality through missed deadlines.
    assert no_slack.avg_precision <= paper_rule.avg_precision + 0.01
    assert np.isfinite(no_slack.avg_latency_ms)
