"""Fig. 12 — latency-quality scatter (paper Section V-B)."""

from repro.experiments import fig12_scatter


def test_fig12_scatter(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig12_scatter.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig12_scatter.format_report(result))
    # Cottage dominates the fast-and-good quadrant vs the CSI baseline.
    assert (
        result.fast_good_fraction["cottage"] > result.fast_good_fraction["rank_s"]
    )
