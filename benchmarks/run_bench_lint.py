"""Standalone simlint cache benchmark: warm runs must actually be warm.

Times one cold ``run_lint`` over ``src/repro`` (fresh cache) and the
best of several warm runs against the populated cache, then writes
``BENCH_lint.json`` for the perf trajectory::

    python benchmarks/run_bench_lint.py --out BENCH_lint.json

Exits nonzero if the warm run exceeds ``--max-warm-ratio`` of the cold
wall time (CI gates at 0.25), if the warm run parses any file or misses
the project-phase cache, or if warm findings diverge from cold ones.
Everything runs in-process — a subprocess measurement would be dominated
by interpreter plus numpy start-up, which the cache cannot help with.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import run_lint  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-warm-ratio", type=float, default=0.25,
        help="warm wall time must stay under this fraction of cold",
    )
    parser.add_argument(
        "--warm-repeats", type=int, default=3,
        help="warm runs to take the best of (steadies scheduler noise)",
    )
    parser.add_argument("--out", default="BENCH_lint.json")
    args = parser.parse_args(argv)

    target = os.path.join(REPO_ROOT, "src", "repro")
    with tempfile.TemporaryDirectory() as scratch:
        cache_path = os.path.join(scratch, "simlint-cache.json")

        t0 = time.perf_counter()
        cold = run_lint([target], root=REPO_ROOT, cache_path=cache_path)
        cold_s = time.perf_counter() - t0

        warm_s = float("inf")
        warm = cold
        for _ in range(max(1, args.warm_repeats)):
            t0 = time.perf_counter()
            warm = run_lint([target], root=REPO_ROOT, cache_path=cache_path)
            warm_s = min(warm_s, time.perf_counter() - t0)

    ratio = warm_s / cold_s if cold_s > 0 else float("inf")
    record = {
        "files_scanned": cold.files_scanned,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_ratio": round(ratio, 4),
        "max_warm_ratio": args.max_warm_ratio,
        "warm_files_parsed": warm.files_parsed,
        "warm_cache_hits": warm.cache_hits,
        "warm_project_cache_hits": warm.project_cache_hits,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }
    with open(args.out, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(
        f"simlint cache: cold {cold_s:.3f}s, warm {warm_s:.3f}s "
        f"(ratio {ratio:.3f}, gate {args.max_warm_ratio}), "
        f"{cold.files_scanned} files"
    )

    failures = []
    if warm.findings != cold.findings:
        failures.append("warm findings diverge from cold findings")
    if warm.files_parsed != 0:
        failures.append(f"warm run parsed {warm.files_parsed} file(s)")
    if warm.project_cache_hits == 0:
        failures.append("warm run re-ran the project rules")
    if ratio > args.max_warm_ratio:
        failures.append(
            f"warm/cold ratio {ratio:.3f} exceeds gate {args.max_warm_ratio}"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
