"""Extension — ISN-side DVFS governors under Cottage budgets.

The paper's related work (Pegasus/TimeTrader/Rubik) manages frequency
*given* a deadline; Cottage supplies that deadline.  This bench closes the
loop: with Cottage's per-query budgets in place, a Rubik-style slack
governor runs each query at the lowest deadline-meeting frequency,
recovering additional power at equal quality — power savings the
boost-to-max scheme leaves on the table.
"""

from repro.cluster import AssignedFrequencyGovernor, RaceToIdleGovernor, SlackGovernor
from repro.metrics import summarize_run


def test_ext_governor(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    governors = {
        "assigned (paper)": AssignedFrequencyGovernor(),
        "slack (Rubik-style)": SlackGovernor(),
        "race-to-idle": RaceToIdleGovernor(),
    }
    rows = {}
    for name, governor in governors.items():
        run = testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), governor=governor
        )
        rows[name] = summarize_run(run, truth, trace.name)
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, testbed.make_policy("cottage"), governor=SlackGovernor()
        ),
        rounds=1, iterations=1,
    )

    print("\nExtension — frequency governors under Cottage budgets (wiki):")
    print("  governor              avg_ms   p95_ms   P@10   power_W")
    for name, s in rows.items():
        print(
            f"  {name:<21} {s.avg_latency_ms:6.2f}  {s.p95_latency_ms:7.2f}"
            f"  {s.avg_precision:.3f}  {s.avg_power_w:7.2f}"
        )
    assigned = rows["assigned (paper)"]
    slack = rows["slack (Rubik-style)"]
    race = rows["race-to-idle"]
    # Slack governor: less power, comparable quality.
    assert slack.avg_power_w < assigned.avg_power_w
    assert slack.avg_precision >= assigned.avg_precision - 0.05
    # Race-to-idle: fastest, most power-hungry of the three.
    assert race.avg_latency_ms <= assigned.avg_latency_ms + 0.5
    assert race.avg_power_w >= slack.avg_power_w
