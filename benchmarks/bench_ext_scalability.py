"""Extension — optimizer scalability in the number of ISNs.

The paper argues Algorithm 1 is O(n log n) and "for this range [a few
hundred ISNs] our optimizer can scale well" (Section III-D, citing
Unicorn's query rewriting).  This bench times the budget determination on
synthetic prediction tuples from 16 to 512 ISNs and checks the growth is
sub-quadratic.
"""

import time

import numpy as np

from repro.core import BudgetInput, determine_time_budget


def _inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    inputs = []
    for sid in range(n):
        q_k = int(rng.integers(0, 4))
        boosted = float(rng.uniform(1.0, 30.0))
        inputs.append(
            BudgetInput(
                shard_id=sid,
                quality_k=q_k,
                quality_half_k=int(rng.integers(0, q_k + 1)) if q_k else 0,
                latency_current_ms=boosted * 1.286,
                latency_boosted_ms=boosted,
            )
        )
    return inputs


def _time_once(n, repeats=50):
    inputs = _inputs(n)
    start = time.perf_counter()
    for _ in range(repeats):
        determine_time_budget(inputs)
    return (time.perf_counter() - start) / repeats * 1e6  # microseconds


def test_ext_optimizer_scalability(benchmark):
    sizes = (16, 64, 256, 512)
    micros = {n: _time_once(n) for n in sizes}
    benchmark(lambda: determine_time_budget(_inputs(256)))

    print("\nExtension — Algorithm 1 decision time vs cluster size:")
    for n, us in micros.items():
        print(f"  {n:4d} ISNs: {us:8.1f} us")
    # Decisions stay sub-millisecond at the paper's "few hundred ISNs".
    assert micros[512] < 2000.0
    # Growth from 16 -> 512 ISNs (32x) stays well under quadratic (1024x).
    assert micros[512] / micros[16] < 200.0


def test_ext_decision_correct_at_scale(benchmark):
    inputs = _inputs(512)
    decision = benchmark(lambda: determine_time_budget(inputs))
    by_id = {i.shard_id: i for i in inputs}
    for sid in decision.selected:
        assert by_id[sid].latency_boosted_ms <= decision.time_budget_ms + 1e-9
