"""Fig. 14 — average package power (paper Section V-C)."""

from conftest import full_fidelity

from repro.experiments import fig14_power


def test_fig14_power(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: fig14_power.run(testbed), rounds=1, iterations=1
    )
    print()
    print(fig14_power.format_report(result))
    for row in result.power_w.values():
        # Nothing draws below the idle floor.
        assert all(result.idle_w <= value for value in row.values())
        assert row["taily"] < row["exhaustive"]
        if full_fidelity(testbed):
            # At unit scale boosting in a tiny cluster can mask the saving.
            assert row["cottage"] < row["exhaustive"]
