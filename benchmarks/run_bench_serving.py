"""Standalone serving-plane benchmark harness.

Builds the testbed, sweeps offered QPS through the open-loop serving
plane, and writes ``BENCH_serving.json`` for the perf trajectory (CI
uploads it as an artifact)::

    python benchmarks/run_bench_serving.py --out BENCH_serving.json

Exits nonzero if the measured goodput knee is not within
``--knee-tolerance`` of the queueing model's predicted saturation (or
the sweep never saturates), if the closed-loop trace replayed through
the serving plane is not bit-identical to ``SearchCluster.run_trace``,
or if the seeded open-loop drive (one million queries by default;
``--drive-queries`` scales it down for CI) exceeds the flat memory cap.
Seeds are pinned and the machine fingerprint is embedded in the record
so trajectories from different hosts are never compared blind.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench_serving  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=bench_serving.SCALE)
    parser.add_argument("--policy", default=bench_serving.POLICY)
    parser.add_argument("--arrival", default=bench_serving.ARRIVAL)
    parser.add_argument(
        "--queries-per-point", type=int, default=bench_serving.QUERIES_PER_POINT
    )
    parser.add_argument(
        "--drive-queries", type=int, default=bench_serving.DRIVE_QUERIES,
        help="open-loop drive length (default one million; scale down for CI)",
    )
    parser.add_argument(
        "--knee-tolerance", type=float, default=bench_serving.KNEE_TOLERANCE,
        help="relative knee-vs-model tolerance the gate enforces",
    )
    parser.add_argument(
        "--memory-cap-mib", type=float,
        default=bench_serving.DRIVE_MEMORY_CAP_MIB,
        help="flat cap the drive's tracemalloc peak must stay under",
    )
    parser.add_argument("--seed", type=int, default=bench_serving.SEED)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--out", default="BENCH_serving.json", help="JSON output path"
    )
    args = parser.parse_args(argv)

    print(
        f"building {args.scale} testbed and sweeping {args.policy!r} "
        f"({args.arrival} arrivals, {args.drive_queries} drive queries)...",
        flush=True,
    )
    result = bench_serving.run(
        scale=args.scale,
        policy=args.policy,
        arrival=args.arrival,
        queries_per_point=args.queries_per_point,
        drive_queries=args.drive_queries,
        knee_tolerance=args.knee_tolerance,
        drive_memory_cap_mib=args.memory_cap_mib,
        seed=args.seed,
        workers=args.workers,
    )
    print(bench_serving.format_report(result))
    bench_serving.write_json(result, args.out)
    print(f"wrote {args.out}")

    if not result.knee_within_tolerance:
        print(
            f"FAIL: measured knee {result.measured_knee_qps:.1f} qps not "
            f"within {args.knee_tolerance:.0%} of predicted "
            f"{result.predicted_knee_qps:.1f} qps (saturated: "
            f"{result.knee_saturated})",
            file=sys.stderr,
        )
        return 1
    if not result.closed_loop_bit_identical:
        print(
            "FAIL: closed-loop trace through the serving plane is not "
            "bit-identical to run_trace",
            file=sys.stderr,
        )
        return 1
    if not result.bounded_memory:
        print(
            f"FAIL: drive peak {result.drive_peak_mib:.1f} MiB exceeded the "
            f"{args.memory_cap_mib:.0f} MiB cap",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
