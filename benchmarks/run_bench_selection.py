"""Standalone adaptive-selection benchmark harness.

Runs the oracle traversal sweep on a seeded zipf workload, trains the
learned per-(query, shard) strategy selector from the sweep labels, and
writes ``BENCH_selection.json`` for the perf trajectory (CI uploads it
as an artifact)::

    python benchmarks/run_bench_selection.py --out BENCH_selection.json

Exits nonzero if any gate fails:

* the learned selector's mean fan-out latency must not exceed the best
  single static strategy's;
* the learned selector must close at least ``--min-gap-closed`` percent
  of the static-best-to-oracle latency gap;
* every selected traversal must be bit-identical (result fingerprint)
  to running that strategy standalone;
* the rank-safe arms must agree on every top-k (the strategy
  equivalence contract);
* the simulated cluster replay with the selector must not regress the
  static replay's mean latency.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench_selection  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-shards", type=int, default=bench_selection.N_SHARDS)
    parser.add_argument(
        "--docs-per-shard", type=int, default=bench_selection.DOCS_PER_SHARD
    )
    parser.add_argument("--n-queries", type=int, default=bench_selection.N_QUERIES)
    parser.add_argument("-k", type=int, default=bench_selection.K)
    parser.add_argument("--seed", type=int, default=bench_selection.SEED)
    parser.add_argument(
        "--iterations", type=int, default=bench_selection.ITERATIONS,
        help="selector training iterations per shard model",
    )
    parser.add_argument(
        "--hidden-units", type=int, default=bench_selection.HIDDEN_UNITS
    )
    parser.add_argument(
        "--min-gap-closed", type=float, default=10.0,
        help="gate: minimum percent of the static-to-oracle gap closed",
    )
    parser.add_argument(
        "--no-sim", action="store_true",
        help="skip the simulated cluster replay ablation",
    )
    parser.add_argument(
        "--out", default="BENCH_selection.json", help="JSON output path"
    )
    args = parser.parse_args(argv)

    print(
        f"sweeping {args.n_queries} queries x {args.n_shards} shards and "
        "training the strategy selector...",
        flush=True,
    )
    result = bench_selection.run(
        n_shards=args.n_shards,
        docs_per_shard=args.docs_per_shard,
        n_queries=args.n_queries,
        k=args.k,
        seed=args.seed,
        hidden_units=args.hidden_units,
        iterations=args.iterations,
        with_sim=not args.no_sim,
    )
    print(bench_selection.format_report(result))
    bench_selection.write_json(result, args.out)
    print(f"wrote {args.out}")

    failures = []
    if not result.rank_safe:
        failures.append("rank-safe arms disagree on a top-k")
    if not result.bit_identical:
        failures.append(
            "selector dispatch is not bit-identical to standalone runs"
        )
    if result.learned_mean_ms > result.best_static_mean_ms:
        failures.append(
            f"learned mean {result.learned_mean_ms:.3f} ms exceeds best "
            f"static ({result.best_static}) {result.best_static_mean_ms:.3f} ms"
        )
    if result.gap_closed_pct < args.min_gap_closed:
        failures.append(
            f"learned closes {result.gap_closed_pct:.1f}% of the oracle gap, "
            f"gate requires >= {args.min_gap_closed:.1f}%"
        )
    if result.sim:
        static_sim = next(a for a in result.sim if a.name == "static_best")
        learned_sim = next(a for a in result.sim if a.name == "learned")
        if learned_sim.mean_ms > static_sim.mean_ms:
            failures.append(
                f"simulated learned mean {learned_sim.mean_ms:.3f} ms exceeds "
                f"static replay {static_sim.mean_ms:.3f} ms"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
