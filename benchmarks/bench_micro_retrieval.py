"""Microbenchmarks — query evaluation strategies and the shard fan-out.

Not a paper figure: engine-level timing that backs the cost model's
"pruning does less work" premise (Section III-C), plus the parallel
fan-out executor's speedup and bit-identical-merge guarantee.
"""

import pytest

from conftest import emit

from repro.retrieval import (
    BatchExecutor,
    SerialExecutor,
    block_max_wand_search,
    block_max_wand_search_kernel,
    conjunctive_search,
    conjunctive_search_kernel,
    exhaustive_search,
    maxscore_search,
    maxscore_search_kernel,
    merge_results,
    wand_search,
    wand_search_kernel,
)

STRATEGIES = {
    "exhaustive": exhaustive_search,
    "maxscore": maxscore_search,
    "wand": wand_search,
}

# Scalar reference vs. the block-scored arena kernel that replaced it as
# the STRATEGIES default (see repro/retrieval/kernels.py).
KERNEL_PAIRS = {
    "maxscore": (maxscore_search, maxscore_search_kernel),
    "wand": (wand_search, wand_search_kernel),
    "block_max_wand": (block_max_wand_search, block_max_wand_search_kernel),
    "conjunctive": (conjunctive_search, conjunctive_search_kernel),
}


def _hot_terms(testbed, n_terms=2, shard_id=0):
    shard = testbed.cluster.shards[shard_id]
    by_length = sorted(
        ((len(shard.term(t).postings), t) for t in shard.terms()), reverse=True
    )
    return [t for _, t in by_length[:n_terms]]


def _fanout_queries(testbed, n_queries=24):
    """Distinct multi-term queries spread over every shard's hot set."""
    n_shards = testbed.cluster.n_shards
    queries = []
    for i in range(n_queries):
        a = _hot_terms(testbed, 2, shard_id=i % n_shards)
        b = _hot_terms(testbed, 3, shard_id=(i * 7 + 3) % n_shards)
        terms = list(dict.fromkeys(a + b[i % 3 :]))
        if terms not in queries:
            queries.append(terms)
    return queries


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_micro_retrieval(benchmark, testbed, strategy):
    shard = testbed.cluster.shards[0]
    terms = _hot_terms(testbed)
    search = STRATEGIES[strategy]
    result = benchmark(lambda: search(shard, terms, 10))
    assert len(result.hits) > 0
    if strategy != "exhaustive":
        full = exhaustive_search(shard, terms, 10)
        # Pruning never does more document evaluations than exhaustive.
        assert result.cost.docs_evaluated <= full.cost.docs_evaluated


@pytest.mark.parametrize("strategy", sorted(KERNEL_PAIRS))
def test_micro_kernel_vs_reference(benchmark, testbed, strategy):
    """Arena kernel timing, pinned bit-identical to its scalar reference.

    At testbed scale the posting lists are short, so the MaxScore kernel
    may dispatch to the scalar below its postings floor — the comparison
    here is primarily the identity check; ``run_bench_retrieval.py``
    measures speedups at the corpus scale the kernels target.
    """
    shard = testbed.cluster.shards[0]
    terms = _hot_terms(testbed, 3)
    reference, kernel = KERNEL_PAIRS[strategy]
    result = benchmark(lambda: kernel(shard, list(terms), 10))
    assert result.fingerprint() == reference(shard, list(terms), 10).fingerprint()


def test_fanout_speedup(benchmark, testbed):
    """Parallel shard fan-out: >= 2x over serial at 8 workers, 16 shards.

    A whole query batch is pipelined through a ``BatchExecutor`` — one
    retrieval task per (query, shard), no per-query barrier.  The speedup
    reported is the fan-out *critical path* from the measured per-task
    service times (FIFO makespan at the worker count): the completion
    time the simulator's latency model charges a partition-aggregate
    engine, and what wall clock converges to when the host has free
    cores.  (CI containers often pin to one core, where wall-clock
    parallel speedup is physically impossible; the merge-equality check
    below is core-count-independent.)
    """
    shards = testbed.cluster.shards
    k = testbed.cluster.k
    queries = _fanout_queries(testbed)
    tasks = [
        (lambda sh=shard, t=terms: maxscore_search(sh, t, k))
        for terms in queries
        for shard in shards
    ]

    serial = SerialExecutor()
    flat_serial = serial.map(tasks)
    serial_stats = serial.last_stats

    with BatchExecutor(8) as executor:
        flat_parallel = benchmark.pedantic(
            lambda: executor.map(tasks), rounds=3, iterations=1
        )
        parallel_stats = executor.last_stats

    # Hard requirement 1: merged top-k bit-identical to the serial run,
    # query by query.
    n_shards = len(shards)
    for i in range(len(queries)):
        per_shard_serial = flat_serial[i * n_shards : (i + 1) * n_shards]
        per_shard_parallel = flat_parallel[i * n_shards : (i + 1) * n_shards]
        assert (
            merge_results(per_shard_parallel, k).fingerprint()
            == merge_results(per_shard_serial, k).fingerprint()
        )

    # Hard requirement 2: >= 2x fan-out speedup with 8 workers.  The
    # critical path is modeled from the *serial* run's task durations —
    # contention-free measurements of true per-task service time — so a
    # GIL-saturated single-core host cannot inflate the numbers.
    speedup = serial_stats.serial_ms / serial_stats.makespan_ms(8)
    lines = [
        f"Fan-out executor ({n_shards}-shard corpus, "
        f"{len(queries)} queries x {n_shards} shards = {serial_stats.n_tasks} tasks)",
        f"  serial scan        : {serial_stats.serial_ms:8.2f} ms",
        f"  8-worker critical  : {serial_stats.makespan_ms(8):8.2f} ms "
        f"({speedup:.1f}x)",
    ]
    for workers in (2, 4, 16):
        path = serial_stats.makespan_ms(workers)
        lines.append(
            f"  {workers:2d}-worker critical : {path:8.2f} ms "
            f"({serial_stats.serial_ms / path:.1f}x)"
        )
    lines.append(
        f"  8-worker pool wall : {parallel_stats.wall_ms:8.2f} ms "
        "(tracks the critical path when the host has free cores)"
    )
    emit("\n".join(lines))
    assert speedup >= 2.0
