"""Microbenchmarks — query evaluation strategies on one shard.

Not a paper figure: engine-level timing that backs the cost model's
"pruning does less work" premise (Section III-C).
"""

import pytest

from repro.retrieval import exhaustive_search, maxscore_search, wand_search

STRATEGIES = {
    "exhaustive": exhaustive_search,
    "maxscore": maxscore_search,
    "wand": wand_search,
}


def _hot_terms(testbed, n_terms=2):
    shard = testbed.cluster.shards[0]
    by_length = sorted(
        ((len(shard.term(t).postings), t) for t in shard.terms()), reverse=True
    )
    return [t for _, t in by_length[:n_terms]]


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_micro_retrieval(benchmark, testbed, strategy):
    shard = testbed.cluster.shards[0]
    terms = _hot_terms(testbed)
    search = STRATEGIES[strategy]
    result = benchmark(lambda: search(shard, terms, 10))
    assert len(result.hits) > 0
    if strategy != "exhaustive":
        full = exhaustive_search(shard, terms, 10)
        # Pruning never does more document evaluations than exhaustive.
        assert result.cost.docs_evaluated <= full.cost.docs_evaluated
