"""Standalone storage-plane benchmark harness.

Builds the scaled column-direct corpus, packs it into compressed
``.store`` shards, reopens them lazily, and measures compression ratio,
cold-open time, kernel-on-compressed speedup, decode-LRU hit rate and
the serial/thread/process executor comparison, writing
``BENCH_storage.json`` for the perf trajectory (CI uploads it as an
artifact)::

    python benchmarks/run_bench_storage.py --out BENCH_storage.json

Exits nonzero if any bit-identity check fails, if the compression ratio
falls below ``--fail-ratio-below`` (default 2x), or — on multi-core
hosts only — if the process backend does not beat the thread backend's
wall clock.  Single-core hosts record ``wall_gate:
"skipped-single-core"`` in the JSON instead of failing, because neither
backend can physically outrun the other on one core; the
worker-measured makespans are recorded either way.  Seeds are pinned
and the machine fingerprint (platform, python, numpy, cpu count) is
embedded in the record so trajectories from different hosts are never
compared blind.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import bench_storage  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=bench_storage.N_SHARDS)
    parser.add_argument(
        "--docs-per-shard", type=int, default=bench_storage.DOCS_PER_SHARD
    )
    parser.add_argument("--vocab", type=int, default=bench_storage.VOCAB_SIZE)
    parser.add_argument("--queries", type=int, default=bench_storage.N_QUERIES)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=bench_storage.SEED)
    parser.add_argument(
        "--out", default="BENCH_storage.json", help="JSON output path"
    )
    parser.add_argument(
        "--fail-ratio-below", type=float, default=2.0,
        help="exit nonzero if the compression ratio falls below this factor",
    )
    args = parser.parse_args(argv)

    print(
        f"building {args.shards}-shard x {args.docs_per_shard}-doc corpus, "
        "packing stores and measuring...",
        flush=True,
    )
    result = bench_storage.run(
        n_shards=args.shards,
        docs_per_shard=args.docs_per_shard,
        vocab_size=args.vocab,
        n_queries=args.queries,
        seed=args.seed,
        repeats=args.repeats,
        workers=args.workers,
    )
    print(bench_storage.format_report(result))
    bench_storage.write_json(result, args.out)
    print(f"wrote {args.out}")

    if not result.bit_identical:
        broken = [
            name
            for name, ok in result.strategies_bit_identical.items()
            if not ok
        ]
        if not result.executors_bit_identical:
            broken.append("executors")
        print(f"FAIL: not bit-identical: {broken}", file=sys.stderr)
        return 1
    if result.compression_ratio < args.fail_ratio_below:
        print(
            f"FAIL: compression ratio {result.compression_ratio:.2f}x below "
            f"--fail-ratio-below {args.fail_ratio_below:.2f}x",
            file=sys.stderr,
        )
        return 1
    if result.process_beats_thread is False:
        print(
            f"FAIL: process backend wall clock "
            f"{result.process_wall_ms:.1f} ms did not beat thread backend "
            f"{result.thread_wall_ms:.1f} ms on a "
            f"{result.machine.cpu_count}-core host",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
