"""Ablation — confidence-gated zero cutting (DESIGN.md design decision).

The paper cuts on the raw predicted class; at reproduction scale quality
labels are noisier, so Cottage here cuts only on *confident* zeros.  The
sweep shows the quality/resource trade the gate controls (0.0 = the
paper's literal argmax rule).
"""

from repro.core import CottagePolicy
from repro.metrics import summarize_run


def test_ablation_cut_confidence(benchmark, testbed):
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    rows = {}
    for confidence in (0.0, 0.5, 0.9, 0.99):
        policy = CottagePolicy(
            testbed.bank, cut_confidence=confidence,
            half_cut_confidence=min(confidence, 0.75),
            network=testbed.cluster.network,
        )
        run = testbed.cluster.run_trace(trace, policy)
        rows[confidence] = summarize_run(run, truth, trace.name)
    benchmark.pedantic(
        lambda: testbed.cluster.run_trace(
            trace, CottagePolicy(testbed.bank, network=testbed.cluster.network)
        ),
        rounds=1, iterations=1,
    )

    print("\nAblation — cut-confidence gate (Wikipedia trace):")
    print("  confidence   avg_ms    P@10   ISNs   C_RES")
    for confidence, s in rows.items():
        print(
            f"  {confidence:<10} {s.avg_latency_ms:7.2f}  {s.avg_precision:.3f}"
            f"  {s.avg_selected_isns:5.2f}  {s.avg_docs_searched:7.1f}"
        )
    # Higher confidence keeps more ISNs and more quality.
    assert rows[0.99].avg_precision >= rows[0.0].avg_precision
    assert rows[0.99].avg_selected_isns >= rows[0.0].avg_selected_isns
