"""Full policy comparison — the paper's evaluation (Figs. 10-15), condensed.

Replays the Wikipedia- and Lucene-style traces under every policy
(baselines + Cottage + both ablation variants) and prints the comparison
tables plus the headline paper-vs-measured numbers.  Use small scale for a
faithful run (~2 minutes) or unit for a fast look:

    python examples/trace_comparison.py [unit|small|full]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scale, Testbed, headline
from repro.metrics import comparison_table

ALL_POLICIES = (
    "exhaustive",
    "aggregation",
    "taily",
    "rank_s",
    "cottage_without_ml",
    "cottage_isn",
    "cottage",
)


def main() -> None:
    scale_name = sys.argv[1] if len(sys.argv) > 1 else "small"
    scale = getattr(Scale, scale_name)()
    print(f"Building {scale_name}-scale testbed "
          f"({scale.corpus.n_docs} docs, {scale.n_shards} ISNs)...")
    testbed = Testbed.build(scale)

    for trace in (testbed.wikipedia_trace, testbed.lucene_trace):
        print()
        summaries = [testbed.summarize(trace, name) for name in ALL_POLICIES]
        print(comparison_table(summaries, title=f"{trace.name} trace"))

    print()
    print(headline.format_report(headline.run(testbed)))


if __name__ == "__main__":
    main()
