"""Personalized search — the paper's future-work extension, working.

Two users issue the same query over the same cluster; their term-weight
profiles produce different rankings and different per-shard quality
contributions — the quantity a personalized Cottage deployment would
train its quality predictors on (with the profile-extended Table-I
features).

    python examples/personalized_search.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scale, Testbed
from repro.index.term_stats import TermStatsIndex
from repro.personalization import (
    PERSONALIZED_QUALITY_FEATURE_NAMES,
    PersonalizedSearcher,
    UserProfile,
    personalized_quality_features,
)
from repro.retrieval import Query


def main() -> None:
    testbed = Testbed.build(Scale.unit(), train=False)
    shards = testbed.cluster.shards
    searcher = PersonalizedSearcher(shards, k=10)

    # A two-term query; each user cares about a different term.
    query = max(
        ({q.terms: q for q in testbed.wikipedia_trace}.values()),
        key=lambda q: len(q.terms),
    )
    term_a, term_b = query.terms[0], query.terms[-1]
    users = {
        "alice": UserProfile.from_interests("alice", {term_a: 1.0}),
        "bob": UserProfile.from_interests("bob", {term_b: 1.0}),
        "neutral": UserProfile.neutral(),
    }

    print(f"query: {' '.join(query.terms)}\n")
    for name, profile in users.items():
        result = searcher.search(query, profile)
        contributions = searcher.shard_contributions(query, profile)
        active = sorted(sid for sid, c in contributions.items() if c > 0)
        top = ", ".join(str(doc) for doc, _ in result.hits[:5])
        print(f"[{name:<7}] top-5 docs: {top}")
        print(f"          contributing shards: {active}")

    stats = TermStatsIndex(shards[0], k=10)
    vector = personalized_quality_features(query.terms, stats, users["alice"])
    print("\nprofile-extended Table-I features (alice, ISN-0):")
    for feature, value in zip(PERSONALIZED_QUALITY_FEATURE_NAMES[-3:], vector[-3:]):
        print(f"  {feature:<28} {value:.3f}")


if __name__ == "__main__":
    main()
