"""Using the substrate as a plain search engine over English text.

The reproduction's index/retrieval layers are a complete BM25 engine; this
example indexes a small hand-written document collection across two shards
and answers keyword queries with each evaluation strategy, showing that
dynamic pruning returns identical results with less work.

    python examples/search_engine.py "distributed search latency"
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.index import Document, build_shards, partition_round_robin
from repro.retrieval import DistributedSearcher, Query
from repro.text import StandardAnalyzer

ARTICLES = [
    ("Distributed search engines", "Distributed web search engines partition the "
     "document index across many serving nodes and aggregate ranked results."),
    ("Tail latency", "The slowest index serving node determines a query's tail "
     "latency, so stragglers dominate user-perceived response time."),
    ("Dynamic pruning", "MaxScore and WAND skip documents whose score upper "
     "bounds cannot reach the current top-k threshold, saving query latency."),
    ("DVFS power management", "Dynamic voltage and frequency scaling trades "
     "processor power for speed; boosting frequency accelerates slow queries."),
    ("Selective search", "Selective search ranks index shards by expected "
     "relevance and searches only the most promising ones."),
    ("BM25 ranking", "BM25 scores a document by term frequency saturation and "
     "inverse document frequency with length normalization."),
    ("Query latency prediction", "Service time correlates with posting list "
     "length, but pruning makes simple linear predictors inaccurate."),
    ("Energy efficiency", "Data centers keep search node utilization low to "
     "meet latency targets, wasting energy at light load."),
    ("Neural predictors", "Small neural networks over index statistics can "
     "predict a query's latency and each shard's quality contribution."),
    ("Time budgets", "A per-query time budget tells every serving node when "
     "the aggregator will stop waiting for its results."),
]


def main() -> None:
    query_text = " ".join(sys.argv[1:]) or "search latency prediction"
    analyzer = StandardAnalyzer()
    docs = [
        Document(doc_id=i, title=title, text=body)
        for i, (title, body) in enumerate(ARTICLES)
    ]
    shards = build_shards(partition_round_robin(docs, 2), analyzer=analyzer)

    query = Query.from_text(query_text, analyzer)
    print(f"query: {query_text!r}  -> terms {list(query.terms)}")

    for strategy in ("exhaustive", "maxscore", "wand"):
        searcher = DistributedSearcher(shards, k=3, strategy=strategy)
        result = searcher.search(query)
        print(f"\n[{strategy}] evaluated {result.cost.docs_evaluated} docs, "
              f"scored {result.cost.postings_scored} postings")
        for rank, (doc_id, score) in enumerate(result.hits, start=1):
            print(f"  {rank}. ({score:5.2f}) {ARTICLES[doc_id][0]}")


if __name__ == "__main__":
    main()
