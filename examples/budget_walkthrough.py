"""Algorithm 1 walkthrough — the paper's Fig. 9, live.

Builds a trained testbed, takes one trace query, and narrates the
coordinated decision: the per-ISN <Q^K, Q^{K/2}, L_current, L_boosted>
reports, the stage-1 and stage-2 cuts, the chosen time budget, and which
ISNs boost their CPU frequency to meet it.

    python examples/budget_walkthrough.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cluster.types import ClusterView
from repro.core import CottagePolicy, determine_time_budget
from repro.experiments import Scale, Testbed


def main() -> None:
    testbed = Testbed.build(Scale.unit())
    policy = CottagePolicy(testbed.bank, network=testbed.cluster.network)
    n = testbed.cluster.n_shards
    view = ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=testbed.cluster.freq_scale.default_ghz,
        max_freq_ghz=testbed.cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(0.0 for _ in range(n)),
    )

    # Pick the first query where both cut stages fire.
    chosen = None
    for query in {q.terms: q for q in testbed.wikipedia_trace}.values():
        inputs = policy.budget_inputs(query, view)
        decision = determine_time_budget(inputs, boost_margin=policy.boost_margin)
        if decision.cut_zero_quality and decision.selected:
            chosen = (query, inputs, decision)
            if decision.cut_too_slow or decision.boosted:
                break
    assert chosen is not None
    query, inputs, decision = chosen

    print(f"query: {' '.join(query.terms)}")
    print("\nstep 1-3: every ISN reports its predictions")
    print(" ISN   Q^K  Q^K/2  L_current(ms)  L_boosted(ms)")
    for isn in inputs:
        print(
            f"  {isn.shard_id:<4d} {isn.quality_k:4d} {isn.quality_half_k:6d}"
            f" {isn.latency_current_ms:13.2f} {isn.latency_boosted_ms:14.2f}"
        )

    print("\nstep 4: the aggregator runs Algorithm 1")
    print(f"  stage 1 cuts (Q^K = 0):          {list(decision.cut_zero_quality)}")
    print(f"  stage 2 cuts (slow, Q^K/2 = 0):  {list(decision.cut_too_slow)}")
    print(f"  selected ISNs:                   {list(decision.selected)}")
    print(f"  time budget:                     {decision.time_budget_ms:.2f} ms")

    print("\nstep 5-6: budget broadcast; slow contributors boost to "
          f"{testbed.cluster.freq_scale.max_ghz} GHz")
    print(f"  boosted ISNs: {list(decision.boosted)}")

    final = policy.decide(query, view)
    print(
        f"\nfinal decision: {len(final.shard_ids)}/{n} ISNs, budget "
        f"{final.time_budget_ms:.2f} ms (includes x{policy.budget_slack} "
        f"prediction slack), coordination overhead "
        f"{final.coordination_delay_ms:.3f} ms"
    )


if __name__ == "__main__":
    main()
