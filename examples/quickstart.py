"""Quickstart: build a cluster, train Cottage, compare against exhaustive.

Runs at unit scale in well under a minute::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import Scale, Testbed
from repro.metrics import comparison_table


def main() -> None:
    print("Building testbed (corpus -> 8 shards -> trained predictors)...")
    testbed = Testbed.build(Scale.unit())
    report = testbed.training_report
    print(
        f"  per-ISN predictors trained: quality accuracy "
        f"{report.mean_quality_accuracy:.2f}, latency accuracy "
        f"{report.mean_latency_accuracy:.2f}"
    )

    trace = testbed.wikipedia_trace
    print(f"\nReplaying {len(trace)} queries under four policies...")
    summaries = testbed.compare_policies(trace)
    print(comparison_table(summaries, title="Wikipedia-style trace"))

    exhaustive = summaries[0]
    cottage = summaries[-1]
    saved = 1.0 - cottage.avg_latency_ms / exhaustive.avg_latency_ms
    print(
        f"\nCottage answered {saved:.0%} faster than exhaustive search while"
        f" returning {cottage.avg_precision:.0%} of the exhaustive top-10 and"
        f" touching {cottage.avg_selected_isns:.1f} of"
        f" {testbed.cluster.n_shards} ISNs per query."
    )


if __name__ == "__main__":
    main()
