"""The simulated search cluster: ISNs + aggregator + event loop.

``SearchCluster`` is the top-level runtime: build it once from a list of
shards, then run traces under different selection policies.  Retrieval
results are memoized in the shard searchers, so comparing many policies on
the same trace costs retrieval only once.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.cluster.cache import CacheStats, ResultCache
from repro.cluster.cpu import CostModel, FrequencyScale
from repro.cluster.faults import FaultSchedule
from repro.cluster.governor import FrequencyGovernor
from repro.cluster.network import NetworkModel
from repro.cluster.power import PowerModel, PowerReport
from repro.cluster.replicas import ReplicationConfig
from repro.cluster.sleep import SleepPolicy
from repro.cluster.types import QueryRecord, SelectionPolicy
from repro.index.shard import IndexShard
from repro.retrieval.executor import (
    SerialExecutor,
    ShardExecutor,
    make_executor,
    prewarm_searchers,
)
from repro.retrieval.query import Query, QueryTrace
from repro.retrieval.searcher import (
    DistributedSearcher,
    SearcherCacheStats,
    StrategySelector,
)
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # the serving plane imports this module at runtime
    from repro.serving.admission import AdmissionController
    from repro.serving.orchestrator import ServingStats


@dataclass
class RunResult:
    """Everything a simulated trace run produced.

    ``searcher_hits``/``searcher_computations`` are *per-run deltas* of
    the shard searchers' memo counters (the memo persists across runs on
    the same cluster, so absolute values would conflate runs).
    """

    policy_name: str
    records: list[QueryRecord]
    power: PowerReport
    elapsed_ms: float
    cache_stats: CacheStats | None = None
    events_processed: int = 0
    clamped_schedules: int = 0
    searcher_hits: int = 0
    searcher_computations: int = 0
    # Tail-tolerance accounting (all zero without replication).
    hedges_issued: int = 0
    hedge_wins: int = 0
    cancels_sent: int = 0
    cancelled_in_queue: int = 0
    duplicates_dropped: int = 0
    total_service_ms: float = 0.0
    counted_service_ms: float = 0.0
    # Compressed-arena decode LRU accounting (zero when every shard's
    # postings are uncompressed); per-run deltas like the memo counters.
    decode_hits: int = 0
    decode_misses: int = 0
    decode_evictions: int = 0
    # Adaptive-dispatch composition: effective strategy name -> shard
    # requests dispatched with it.  Empty without a strategy selector.
    strategy_choices: dict[str, int] = field(default_factory=dict)
    # Serving-plane accounting.  The result-cache counters are per-run
    # deltas (the cache object persists across runs, like the memos);
    # shed/admitted are zero without admission control, and ``serving``
    # holds the streaming sink when records were not retained
    # (``retain_records=False`` open-loop runs).
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    offered_queries: int = 0
    admitted_queries: int = 0
    shed_queries: int = 0
    shed_queue_depth: int = 0
    shed_deadline: int = 0
    serving: ServingStats | None = None

    def latencies_ms(self) -> list[float]:
        return [record.latency_ms for record in self.records]

    @property
    def wasted_service_ms(self) -> float:
        """ISN busy time whose response was never merged: hedged/tied
        losers, deadline aborts, post-finalize stragglers."""
        return self.total_service_ms - self.counted_service_ms

    @property
    def wasted_work_ratio(self) -> float:
        """Fraction of all ISN busy time that was wasted (0 when idle)."""
        if self.total_service_ms <= 0:
            return 0.0
        return self.wasted_service_ms / self.total_service_ms

    @property
    def result_cache_hit_rate(self) -> float:
        """This run's aggregator result-cache hit rate (0 without a cache)."""
        lookups = self.result_cache_hits + self.result_cache_misses
        return self.result_cache_hits / lookups if lookups else 0.0

    @property
    def completed_queries(self) -> int:
        """Queries answered with real work (offered minus shed)."""
        return self.offered_queries - self.shed_queries

    def goodput_qps(self) -> float:
        """Completed queries per second of simulated elapsed time."""
        return self.completed_queries / (self.elapsed_ms / 1000.0)


def _close_pooled(pooled: dict[tuple[int, str], ShardExecutor]) -> None:
    """Close every pooled executor (module-level so a weakref finalizer
    can run it without keeping the cluster alive)."""
    for key in sorted(pooled):
        pooled[key].close()
    pooled.clear()


class SearchCluster:
    """A partition-aggregate search engine over simulated hardware.

    Parameters mirror the paper's testbed: 16 shards on one package, a
    1.2-2.7 GHz DVFS ladder, and a single aggregator.  The same instance
    can run any number of traces/policies; each run gets fresh ISN queues
    and energy meters.
    """

    def __init__(
        self,
        shards: list[IndexShard],
        k: int = 10,
        strategy: str = "maxscore",
        cost_model: CostModel | None = None,
        power_model: PowerModel | None = None,
        freq_scale: FrequencyScale | None = None,
        network: NetworkModel | None = None,
        executor: ShardExecutor | None = None,
    ) -> None:
        """``executor`` is how retrieval work fans out over shards — both
        inside ``DistributedSearcher.search`` and when ``run_trace``
        prewarms the memo caches.  Simulation outcomes are bit-identical
        for every executor; only wall-clock changes."""
        if not shards:
            raise ValueError("cluster needs at least one shard")
        self.k = k
        self.cost_model = cost_model or CostModel()
        self.power_model = power_model or PowerModel()
        self.freq_scale = freq_scale or FrequencyScale()
        self.network = network or NetworkModel()
        self.executor = executor or SerialExecutor()
        self.searcher = DistributedSearcher(
            shards, k=k, strategy=strategy, executor=self.executor
        )
        self.shards = shards
        # Per-run executor overrides are served from this pool so worker
        # processes (and their attach registries / shm segments) persist
        # across successive run_trace/serve calls instead of re-spawning.
        # The finalizer releases them at GC / interpreter exit even if the
        # owner never calls close().
        self._pooled_executors: dict[tuple[int, str], ShardExecutor] = {}
        self._pool_finalizer = weakref.finalize(
            self, _close_pooled, self._pooled_executors
        )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def pooled_executor(self, workers: int, backend: str = "thread") -> ShardExecutor:
        """The persistent executor for ``(workers, backend)``.

        Created on first use, then reused by every later override with
        the same shape — a process pool keeps its workers (and their
        attached shards) warm across runs.  Owned by the cluster:
        released by :meth:`close`, never by the per-run override path.
        """
        key = (workers, backend)
        executor = self._pooled_executors.get(key)
        if executor is None:
            executor = make_executor(workers, backend=backend)
            self._pooled_executors[key] = executor
        return executor

    def close(self) -> None:
        """Release pooled executors (worker processes, shm segments).

        The cluster's own ``executor`` (passed in or the default serial
        one) is the caller's to manage, exactly as before pooling.
        Idempotent; the cluster remains usable and will lazily rebuild
        pools on the next override.
        """
        _close_pooled(self._pooled_executors)

    def __enter__(self) -> SearchCluster:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @contextmanager
    def _executor_override(
        self, workers: int | None, backend: str | None
    ) -> Iterator[None]:
        """Temporarily swap in a pooled executor for one run."""
        if workers is None and backend is None:
            yield
            return
        override = self.pooled_executor(
            workers if workers is not None else self.executor.workers,
            backend or "thread",
        )
        previous = self.executor
        self.executor = self.searcher.executor = override
        try:
            yield
        finally:
            self.executor = previous
            self.searcher.executor = previous

    def run_trace(
        self,
        trace: QueryTrace,
        policy: SelectionPolicy,
        governor: FrequencyGovernor | None = None,
        cache: ResultCache | None = None,
        faults: FaultSchedule | None = None,
        response_timeout_ms: float | None = None,
        sleep: SleepPolicy | None = None,
        prewarm: bool | None = None,
        telemetry: Telemetry | None = None,
        replication: ReplicationConfig | None = None,
        workers: int | None = None,
        backend: str | None = None,
        selector: StrategySelector | None = None,
        decode_cache_size: int | None = None,
    ) -> RunResult:
        """Replay ``trace`` under ``policy`` and report latency + power.

        ``governor`` optionally overrides the per-job frequency choice on
        every ISN (see :mod:`repro.cluster.governor`); the default obeys
        the policy's assignment, the paper's behaviour.  ``cache``
        optionally answers repeated queries at the aggregator before the
        policy runs (see :mod:`repro.cluster.cache`).  ``faults`` injects
        fail-silent ISN outages; pair unbudgeted policies with
        ``response_timeout_ms`` so the aggregator cannot wait forever.
        ``sleep`` enables PowerNap-style idle naps on every ISN.

        ``replication`` runs R independent ISN replicas per shard (each
        with its own queue, CPU and meter, sharing the shard's memoized
        searcher) and enables the configured dispatch mode — hedged or
        tied requests against stragglers (see
        :mod:`repro.cluster.replicas`).  The default (one replica,
        ``primary`` mode, ``static`` selector) is bit-identical to the
        pre-replication cluster.

        ``prewarm`` pipelines the whole trace's retrieval through the
        cluster executor before the event loop starts, so the serial
        simulation replays against hot memo caches, and hands the policy
        the whole trace so it can batch its own pure per-query work
        (Cottage runs its predictor inference through the fused
        cross-shard kernels).  Default (``None``): retrieval prewarming
        on iff the executor has more than one worker (it only helps by
        pipelining); policy prewarming always on (the batched kernels
        win even single-threaded).  Pass ``False`` to disable both.
        Retrieval and prediction are pure and memoized, so prewarming
        never changes a simulation outcome — it only moves where the
        CPU time is spent.

        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry`
        session for this run: the simulator clock is bound to the tracer
        (spans record sim-time *and* wall-time), every layer's spans and
        metrics flow into it, and the policy/executor/searchers are
        rebound to the disabled session afterwards.  Telemetry never changes a
        simulation outcome — runs are bit-identical with it on or off
        (pinned by ``tests/test_telemetry_integration.py``).

        ``workers``/``backend`` override the cluster executor for this
        run only: a *pooled* executor (see :meth:`pooled_executor`) fans
        the prewarm out — ``backend="process"`` ships shard searches to
        worker processes that attach the shards via mmap/shared memory —
        and is swapped back afterwards but kept warm for the next run
        with the same shape (release with :meth:`close`).  Outcomes stay
        bit-identical; only where the retrieval CPU time is spent
        changes.

        ``selector`` enables per-(query, shard) adaptive traversal
        selection (see :class:`repro.retrieval.searcher.StrategySelector`):
        the aggregator consults it at dispatch, after the policy assigned
        the time budget, and the chosen strategy's cost drives service
        time and energy.  ``None`` — the default — is bit-identical to
        the static dispatch path.  ``decode_cache_size`` re-budgets every
        compressed shard's decode LRU (bytes) for this run and onwards;
        shards without a built compressed arena are untouched (and never
        force-built).

        The run itself is executed by the serving plane
        (:class:`repro.serving.orchestrator.ServingPlane`): a closed-loop
        trace is its degenerate configuration — all arrivals scheduled up
        front, every record retained, no admission control — and replays
        bit-identically to the pre-serving-plane engine.
        """
        from repro.serving.orchestrator import ServingPlane  # no import cycle

        with self._executor_override(workers, backend):
            return ServingPlane(self).run(
                trace,
                policy,
                governor=governor,
                cache=cache,
                faults=faults,
                response_timeout_ms=response_timeout_ms,
                sleep=sleep,
                prewarm=prewarm,
                telemetry=telemetry,
                replication=replication,
                selector=selector,
                decode_cache_size=decode_cache_size,
            )

    def serve(
        self,
        source: Iterable[Query],
        policy: SelectionPolicy,
        *,
        admission: AdmissionController | None = None,
        retain_records: bool = False,
        governor: FrequencyGovernor | None = None,
        cache: ResultCache | None = None,
        faults: FaultSchedule | None = None,
        response_timeout_ms: float | None = None,
        sleep: SleepPolicy | None = None,
        prewarm: bool | None = None,
        telemetry: Telemetry | None = None,
        replication: ReplicationConfig | None = None,
        workers: int | None = None,
        backend: str | None = None,
        selector: StrategySelector | None = None,
        decode_cache_size: int | None = None,
    ) -> RunResult:
        """Open-loop serving: drive a lazy query stream through the cluster.

        ``source`` is any iterable of queries — typically a
        :class:`repro.serving.stream.QueryStream` — consumed one arrival
        at a time, so campaign length never bounds memory.  By default no
        per-query records are retained: latency distributions come back
        as streaming histograms on ``RunResult.serving``.  ``admission``
        enables load shedding (see :mod:`repro.serving.admission`);
        everything else matches :meth:`run_trace`.
        """
        from repro.serving.orchestrator import ServingPlane  # no import cycle

        with self._executor_override(workers, backend):
            return ServingPlane(self).run(
                source,
                policy,
                governor=governor,
                cache=cache,
                faults=faults,
                response_timeout_ms=response_timeout_ms,
                sleep=sleep,
                prewarm=prewarm,
                telemetry=telemetry,
                replication=replication,
                admission=admission,
                retain_records=retain_records,
                selector=selector,
                decode_cache_size=decode_cache_size,
            )

    def _searcher_totals(self) -> tuple[int, int]:
        """Cluster-wide (hits, computations) sums of the searcher memos."""
        stats = self.searcher.cache_stats()
        return (
            sum(s.hits for s in stats),
            sum(s.computations for s in stats),
        )

    def _decode_totals(self) -> tuple[int, int, int]:
        """Cluster-wide (hits, misses, evictions) decode LRU sums.

        Only compressed arenas keep decode counters; shards whose arena
        has not been built yet contribute nothing (and are left unbuilt —
        this must never trigger the uncompressed arena construction).
        """
        hits = misses = evictions = 0
        for shard in self.shards:
            arena = getattr(shard, "_arena", None)
            stats = getattr(arena, "decode_stats", None)
            if stats is not None:
                hits += stats.hits
                misses += stats.misses
                evictions += stats.evictions
        return hits, misses, evictions

    def set_decode_cache(self, cache_bytes: int) -> int:
        """Re-budget every compressed shard's decode LRU to ``cache_bytes``.

        Applies only to shards whose compressed arena already exists —
        uncompressed shards have no decode cache, and unbuilt arenas are
        left unbuilt (the same non-forcing contract as
        :meth:`_decode_totals`).  Oversized caches evict down
        immediately.  Returns the number of arenas re-budgeted.
        """
        touched = 0
        for shard in self.shards:
            arena = getattr(shard, "_arena", None)
            resize = getattr(arena, "set_cache_budget", None)
            if resize is not None:
                resize(cache_bytes)
                touched += 1
        return touched

    def prewarm_trace(
        self, trace: QueryTrace, selector: StrategySelector | None = None
    ) -> int:
        """Fill every shard searcher's memo cache for ``trace``.

        All uncached (shard, query) retrieval tasks are pipelined through
        the cluster executor at once — query *i+1* overlaps stragglers of
        query *i* — and deduplicated first, so repeated trace queries cost
        nothing.  ``selector`` warms the keys adaptive dispatch will ask
        for instead of the static defaults.  Returns the number of
        evaluations performed.
        """
        return prewarm_searchers(
            self.searcher.searchers, trace, self.executor, selector
        )

    def searcher_cache_stats(self) -> list[SearcherCacheStats]:
        """Per-shard memo counters (hits / computations / size)."""
        return self.searcher.cache_stats()

    def service_time_ms(self, query, shard_id: int, freq_ghz: float | None = None) -> float:
        """Offline service-time oracle (no queueing): one query, one shard.

        Used for predictor training labels and for the frequency-sweep
        experiment (Fig. 4).
        """
        freq = freq_ghz if freq_ghz is not None else self.freq_scale.default_ghz
        result = self.searcher.search_shard(shard_id, query)
        return self.cost_model.service_ms(result.cost, freq)
