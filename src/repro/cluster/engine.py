"""The simulated search cluster: ISNs + aggregator + event loop.

``SearchCluster`` is the top-level runtime: build it once from a list of
shards, then run traces under different selection policies.  Retrieval
results are memoized in the shard searchers, so comparing many policies on
the same trace costs retrieval only once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.aggregator import Aggregator
from repro.cluster.cache import CacheStats, ResultCache
from repro.cluster.cpu import CostModel, FrequencyScale
from repro.cluster.events import Simulator
from repro.cluster.faults import FaultSchedule
from repro.cluster.governor import FrequencyGovernor
from repro.cluster.isn import ISNServer
from repro.cluster.network import NetworkModel
from repro.cluster.power import EnergyMeter, PowerModel, PowerReport, package_report
from repro.cluster.replicas import ReplicationConfig, make_selector
from repro.cluster.sleep import SleepPolicy
from repro.cluster.types import QueryRecord, SelectionPolicy
from repro.index.shard import IndexShard
from repro.retrieval.executor import (
    SerialExecutor,
    ShardExecutor,
    make_executor,
    prewarm_searchers,
)
from repro.retrieval.query import QueryTrace
from repro.retrieval.searcher import DistributedSearcher, SearcherCacheStats
from repro.telemetry import NO_TELEMETRY, Telemetry


@dataclass
class RunResult:
    """Everything a simulated trace run produced.

    ``searcher_hits``/``searcher_computations`` are *per-run deltas* of
    the shard searchers' memo counters (the memo persists across runs on
    the same cluster, so absolute values would conflate runs).
    """

    policy_name: str
    records: list[QueryRecord]
    power: PowerReport
    elapsed_ms: float
    cache_stats: CacheStats | None = None
    events_processed: int = 0
    clamped_schedules: int = 0
    searcher_hits: int = 0
    searcher_computations: int = 0
    # Tail-tolerance accounting (all zero without replication).
    hedges_issued: int = 0
    hedge_wins: int = 0
    cancels_sent: int = 0
    cancelled_in_queue: int = 0
    duplicates_dropped: int = 0
    total_service_ms: float = 0.0
    counted_service_ms: float = 0.0
    # Compressed-arena decode LRU accounting (zero when every shard's
    # postings are uncompressed); per-run deltas like the memo counters.
    decode_hits: int = 0
    decode_misses: int = 0

    def latencies_ms(self) -> list[float]:
        return [record.latency_ms for record in self.records]

    @property
    def wasted_service_ms(self) -> float:
        """ISN busy time whose response was never merged: hedged/tied
        losers, deadline aborts, post-finalize stragglers."""
        return self.total_service_ms - self.counted_service_ms

    @property
    def wasted_work_ratio(self) -> float:
        """Fraction of all ISN busy time that was wasted (0 when idle)."""
        if self.total_service_ms <= 0:
            return 0.0
        return self.wasted_service_ms / self.total_service_ms


class SearchCluster:
    """A partition-aggregate search engine over simulated hardware.

    Parameters mirror the paper's testbed: 16 shards on one package, a
    1.2-2.7 GHz DVFS ladder, and a single aggregator.  The same instance
    can run any number of traces/policies; each run gets fresh ISN queues
    and energy meters.
    """

    def __init__(
        self,
        shards: list[IndexShard],
        k: int = 10,
        strategy: str = "maxscore",
        cost_model: CostModel | None = None,
        power_model: PowerModel | None = None,
        freq_scale: FrequencyScale | None = None,
        network: NetworkModel | None = None,
        executor: ShardExecutor | None = None,
    ) -> None:
        """``executor`` is how retrieval work fans out over shards — both
        inside ``DistributedSearcher.search`` and when ``run_trace``
        prewarms the memo caches.  Simulation outcomes are bit-identical
        for every executor; only wall-clock changes."""
        if not shards:
            raise ValueError("cluster needs at least one shard")
        self.k = k
        self.cost_model = cost_model or CostModel()
        self.power_model = power_model or PowerModel()
        self.freq_scale = freq_scale or FrequencyScale()
        self.network = network or NetworkModel()
        self.executor = executor or SerialExecutor()
        self.searcher = DistributedSearcher(
            shards, k=k, strategy=strategy, executor=self.executor
        )
        self.shards = shards

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def run_trace(
        self,
        trace: QueryTrace,
        policy: SelectionPolicy,
        governor: FrequencyGovernor | None = None,
        cache: ResultCache | None = None,
        faults: FaultSchedule | None = None,
        response_timeout_ms: float | None = None,
        sleep: SleepPolicy | None = None,
        prewarm: bool | None = None,
        telemetry: Telemetry | None = None,
        replication: ReplicationConfig | None = None,
        workers: int | None = None,
        backend: str | None = None,
    ) -> RunResult:
        """Replay ``trace`` under ``policy`` and report latency + power.

        ``governor`` optionally overrides the per-job frequency choice on
        every ISN (see :mod:`repro.cluster.governor`); the default obeys
        the policy's assignment, the paper's behaviour.  ``cache``
        optionally answers repeated queries at the aggregator before the
        policy runs (see :mod:`repro.cluster.cache`).  ``faults`` injects
        fail-silent ISN outages; pair unbudgeted policies with
        ``response_timeout_ms`` so the aggregator cannot wait forever.
        ``sleep`` enables PowerNap-style idle naps on every ISN.

        ``replication`` runs R independent ISN replicas per shard (each
        with its own queue, CPU and meter, sharing the shard's memoized
        searcher) and enables the configured dispatch mode — hedged or
        tied requests against stragglers (see
        :mod:`repro.cluster.replicas`).  The default (one replica,
        ``primary`` mode, ``static`` selector) is bit-identical to the
        pre-replication cluster.

        ``prewarm`` pipelines the whole trace's retrieval through the
        cluster executor before the event loop starts, so the serial
        simulation replays against hot memo caches, and hands the policy
        the whole trace so it can batch its own pure per-query work
        (Cottage runs its predictor inference through the fused
        cross-shard kernels).  Default (``None``): retrieval prewarming
        on iff the executor has more than one worker (it only helps by
        pipelining); policy prewarming always on (the batched kernels
        win even single-threaded).  Pass ``False`` to disable both.
        Retrieval and prediction are pure and memoized, so prewarming
        never changes a simulation outcome — it only moves where the
        CPU time is spent.

        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry`
        session for this run: the simulator clock is bound to the tracer
        (spans record sim-time *and* wall-time), every layer's spans and
        metrics flow into it, and the policy/executor/searchers are
        rebound to the disabled session afterwards.  Telemetry never changes a
        simulation outcome — runs are bit-identical with it on or off
        (pinned by ``tests/test_telemetry_integration.py``).

        ``workers``/``backend`` override the cluster executor for this
        run only: a temporary executor (``make_executor(workers,
        backend)``) fans the prewarm out — ``backend="process"`` ships
        shard searches to worker processes that attach the shards via
        mmap/shared memory — and is closed and swapped back afterwards.
        Outcomes stay bit-identical; only where the retrieval CPU time
        is spent changes.
        """
        if workers is not None or backend is not None:
            override = make_executor(
                workers if workers is not None else self.executor.workers,
                backend=backend or "thread",
            )
            previous = self.executor
            self.executor = self.searcher.executor = override
            try:
                return self.run_trace(
                    trace,
                    policy,
                    governor=governor,
                    cache=cache,
                    faults=faults,
                    response_timeout_ms=response_timeout_ms,
                    sleep=sleep,
                    prewarm=prewarm,
                    telemetry=telemetry,
                    replication=replication,
                )
            finally:
                self.executor = previous
                self.searcher.executor = previous
                override.close()
        if prewarm is None:
            # Remote executors only move retrieval off-process during the
            # prewarm fan-out (replay hits the ISNs' local memos), so they
            # always prewarm; threads prewarm iff they can pipeline.
            prewarm_retrieval = self.executor.workers > 1 or self.executor.remote
            prewarm_policy = True
        else:
            prewarm_retrieval = prewarm_policy = prewarm
        telemetry = telemetry or NO_TELEMETRY
        tracer = telemetry.tracer if telemetry.enabled else None
        sim = Simulator(telemetry)
        if tracer is not None:
            telemetry.bind_clock(lambda: sim.now)
        policy_bind = getattr(policy, "bind_telemetry", None)
        if policy_bind is not None:
            policy_bind(telemetry)
        self.executor.bind_telemetry(telemetry)
        self.searcher.bind_telemetry(telemetry)
        cache_before = self._searcher_totals()
        decode_before = self._decode_totals()
        try:
            if prewarm_retrieval:
                if tracer is None:
                    self.prewarm_trace(trace)
                else:
                    with tracer.span(
                        "cluster.prewarm_retrieval", track="cluster",
                        n_queries=len(trace.queries),
                    ):
                        self.prewarm_trace(trace)
            if prewarm_policy:
                # Optional hook: minimal duck-typed policies may omit it.
                policy_prewarm = getattr(policy, "prewarm", None)
                if policy_prewarm is not None:
                    if tracer is None:
                        policy_prewarm(trace.queries)
                    else:
                        with tracer.span(
                            "cluster.prewarm_policy", track="cluster",
                            n_queries=len(trace.queries),
                        ):
                            policy_prewarm(trace.queries)
            repl = replication or ReplicationConfig()
            # Meters stay a flat list (shard-major: shard i's replica r is
            # meters[i * R + r]) so package_report sums the whole cluster.
            meters = [
                EnergyMeter(self.power_model)
                for _ in range(self.n_shards * repl.n_replicas)
            ]
            groups = [
                [
                    ISNServer(
                        shard_id=i,
                        searcher=self.searcher.searchers[i],
                        cost_model=self.cost_model,
                        freq_scale=self.freq_scale,
                        meter=meters[i * repl.n_replicas + r],
                        governor=governor,
                        faults=faults,
                        sleep=sleep,
                        telemetry=telemetry,
                        replica_id=r,
                    )
                    for r in range(repl.n_replicas)
                ]
                for i in range(self.n_shards)
            ]
            aggregator = Aggregator(
                isns=groups, policy=policy, network=self.network, sim=sim, k=self.k,
                cache=cache, response_timeout_ms=response_timeout_ms,
                telemetry=telemetry, replication=repl,
                selector=make_selector(repl),
            )
            for query in trace:
                sim.schedule_at(
                    query.arrival_time * 1000.0,
                    lambda q=query: aggregator.on_query(q),
                )
            if tracer is None:
                sim.run()
            else:
                with tracer.span(
                    "cluster.replay", track="cluster",
                    policy=policy.name, n_queries=len(trace.queries),
                ):
                    sim.run()
            elapsed = max(sim.now, trace.duration * 1000.0, 1e-9)
            for group in groups:
                for isn in group:
                    isn.finalize_sleep(elapsed)
        finally:
            if tracer is not None:
                telemetry.unbind_clock()
            if policy_bind is not None:
                policy_bind(NO_TELEMETRY)
            self.executor.bind_telemetry(NO_TELEMETRY)
            self.searcher.bind_telemetry(NO_TELEMETRY)
        report = package_report(meters, self.power_model, elapsed)
        records = sorted(aggregator.records, key=lambda r: r.arrival_ms)
        hits_after, comps_after = self._searcher_totals()
        decode_after = self._decode_totals()
        if tracer is not None:
            metrics = telemetry.metrics
            metrics.gauge("run.events_processed").set(sim.events_processed)
            metrics.gauge("run.elapsed_sim_ms").set(elapsed)
            metrics.gauge("run.queries").set(len(records))
            metrics.gauge("run.decode_hits").set(decode_after[0] - decode_before[0])
            metrics.gauge("run.decode_misses").set(decode_after[1] - decode_before[1])
        return RunResult(
            policy_name=policy.name,
            records=records,
            power=report,
            elapsed_ms=elapsed,
            cache_stats=cache.stats if cache is not None else None,
            events_processed=sim.events_processed,
            clamped_schedules=sim.clamped_schedules,
            searcher_hits=hits_after - cache_before[0],
            searcher_computations=comps_after - cache_before[1],
            hedges_issued=aggregator.hedges_issued,
            hedge_wins=aggregator.hedge_wins,
            cancels_sent=aggregator.cancels_sent,
            cancelled_in_queue=aggregator.cancelled_in_queue,
            duplicates_dropped=aggregator.duplicates_dropped,
            total_service_ms=aggregator.total_service_ms,
            counted_service_ms=aggregator.counted_service_ms,
            decode_hits=decode_after[0] - decode_before[0],
            decode_misses=decode_after[1] - decode_before[1],
        )

    def _searcher_totals(self) -> tuple[int, int]:
        """Cluster-wide (hits, computations) sums of the searcher memos."""
        stats = self.searcher.cache_stats()
        return (
            sum(s.hits for s in stats),
            sum(s.computations for s in stats),
        )

    def _decode_totals(self) -> tuple[int, int]:
        """Cluster-wide (hits, misses) sums of the decode LRU counters.

        Only compressed arenas keep decode counters; shards whose arena
        has not been built yet contribute nothing (and are left unbuilt —
        this must never trigger the uncompressed arena construction).
        """
        hits = misses = 0
        for shard in self.shards:
            arena = getattr(shard, "_arena", None)
            stats = getattr(arena, "decode_stats", None)
            if stats is not None:
                hits += stats.hits
                misses += stats.misses
        return hits, misses

    def prewarm_trace(self, trace: QueryTrace) -> int:
        """Fill every shard searcher's memo cache for ``trace``.

        All uncached (shard, query) retrieval tasks are pipelined through
        the cluster executor at once — query *i+1* overlaps stragglers of
        query *i* — and deduplicated first, so repeated trace queries cost
        nothing.  Returns the number of evaluations performed.
        """
        return prewarm_searchers(self.searcher.searchers, trace, self.executor)

    def searcher_cache_stats(self) -> list[SearcherCacheStats]:
        """Per-shard memo counters (hits / computations / size)."""
        return self.searcher.cache_stats()

    def service_time_ms(self, query, shard_id: int, freq_ghz: float | None = None) -> float:
        """Offline service-time oracle (no queueing): one query, one shard.

        Used for predictor training labels and for the frequency-sweep
        experiment (Fig. 4).
        """
        freq = freq_ghz if freq_ghz is not None else self.freq_scale.default_ghz
        result = self.searcher.search_shard(shard_id, query)
        return self.cost_model.service_ms(result.cost, freq)
