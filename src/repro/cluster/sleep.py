"""Sleep states: PowerNap-style idle power management.

The paper's related work includes sleep-based schemes (PowerNap,
DreamWeaver) that drop an idle server into a near-zero-power nap and pay a
wake-up latency on the next request.  This module adds that mechanism to
the simulated ISNs so the reproduction can combine Cottage's
fewer-active-ISNs effect with nap savings on the ISNs it idles — the
composition the paper's energy argument implies but does not evaluate.

Semantics (evaluated lazily, at the next submission):

* an ISN that has been idle for ``nap_after_ms`` is asleep;
* a sleeping ISN draws ``nap_power_w`` instead of the core's static power;
* the first job after a nap pays ``wake_ms`` before service starts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SleepPolicy:
    """Nap configuration for one ISN core.

    Defaults follow PowerNap's premise: transition quickly (1 ms wake),
    nap aggressively (after 50 ms idle), draw almost nothing asleep.
    """

    nap_after_ms: float = 50.0
    wake_ms: float = 1.0
    nap_power_w: float = 0.05

    def __post_init__(self) -> None:
        if self.nap_after_ms < 0:
            raise ValueError("nap_after_ms must be non-negative")
        if self.wake_ms < 0:
            raise ValueError("wake_ms must be non-negative")
        if self.nap_power_w < 0:
            raise ValueError("nap power must be non-negative")

    def nap_ms_in_gap(self, idle_gap_ms: float) -> float:
        """How much of an idle gap was spent asleep."""
        return max(idle_gap_ms - self.nap_after_ms, 0.0)

    def wake_penalty_ms(self, idle_gap_ms: float) -> float:
        """Wake latency charged to the job ending this idle gap."""
        return self.wake_ms if idle_gap_ms > self.nap_after_ms else 0.0
