"""The simulated Index Serving Node.

A single-core FIFO server: queries queue, run at a per-query core frequency,
and abort at their deadline (the ISN knows the budget the aggregator
broadcast, paper Fig. 5 step 5-6).  The ISN also maintains the running sum
of its queued work — the queue term of the paper's equivalent latency
(Eq. 2) that Cottage's latency prediction reports upstream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.cpu import CostModel, FrequencyScale
from repro.cluster.events import Simulator
from repro.cluster.faults import FaultSchedule
from repro.cluster.governor import AssignedFrequencyGovernor, FrequencyGovernor
from repro.cluster.power import EnergyMeter
from repro.cluster.sleep import SleepPolicy
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult
from repro.retrieval.searcher import ShardSearcher, StrategyChoice
from repro.telemetry import NO_TELEMETRY, Telemetry


@dataclass
class Job:
    """One query's execution on one ISN."""

    query: Query
    result: SearchResult
    freq_ghz: float
    deadline_ms: float | None
    service_default_ms: float
    on_done: Callable[["Job", bool, float], None]
    started_ms: float = 0.0
    boosted: bool = False
    aborted_in_queue: bool = field(default=False, init=False)
    cancelled: bool = field(default=False, init=False)  # tied/hedged recall
    span: object | None = field(default=None, init=False)  # telemetry service span


class ISNServer:
    """Single-worker FIFO query server over one shard replica.

    ``replica_id`` distinguishes the R independent instances a replicated
    cluster runs per shard (each with its own queue, CPU and meter);
    single-replica clusters leave it at 0.
    """

    def __init__(
        self,
        shard_id: int,
        searcher: ShardSearcher,
        cost_model: CostModel,
        freq_scale: FrequencyScale,
        meter: EnergyMeter,
        governor: FrequencyGovernor | None = None,
        faults: FaultSchedule | None = None,
        sleep: SleepPolicy | None = None,
        telemetry: Telemetry | None = None,
        replica_id: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.searcher = searcher
        self.cost_model = cost_model
        self.freq_scale = freq_scale
        self.meter = meter
        self.governor = governor or AssignedFrequencyGovernor()
        self.faults = faults
        self.sleep = sleep
        # Telemetry: the tracer reference is None when disabled so every
        # hot-path check is a single attribute test (zero allocation).
        telemetry = telemetry or NO_TELEMETRY
        self._tracer = telemetry.tracer if telemetry.enabled else None
        # Replica 0 keeps the pre-replication track name so existing
        # trace tooling (and exported Perfetto baselines) line up.
        self._track = (
            f"isn.{shard_id}" if replica_id == 0 else f"isn.{shard_id}.r{replica_id}"
        )
        self._metrics = telemetry.metrics
        self._m_queue_depth = self._metrics.histogram("isn.queue_depth", lo=0.5, hi=1e4)
        self._m_queued_work = self._metrics.histogram("isn.queued_work_ms")
        self._queue: deque[Job] = deque()
        self._busy = False
        self._last_activity_end_ms = 0.0
        self.queued_work_default_ms = 0.0  # remaining work, default-frequency ms
        self.jobs_processed = 0
        self.jobs_aborted = 0
        self.jobs_cancelled = 0
        self.jobs_lost_to_faults = 0
        self.wakeups = 0

    # ------------------------------------------------------------- submission
    def make_job(
        self,
        query: Query,
        freq_ghz: float,
        deadline_ms: float | None,
        on_done: Callable[[Job, bool, float], None],
        choice: StrategyChoice | None = None,
    ) -> Job:
        """Run retrieval (timing-free, memoized) and wrap it as a job.

        ``choice`` is the aggregator's per-(query, shard) traversal
        selection; the job's cost — and therefore its simulated service
        time and energy — follows whatever strategy actually ran.
        """
        freq_ghz = self.freq_scale.clamp(freq_ghz)
        result = self.searcher.search(query, choice)
        service_default = self.cost_model.service_ms(
            result.cost, self.freq_scale.default_ghz
        )
        return Job(
            query=query,
            result=result,
            freq_ghz=freq_ghz,
            deadline_ms=deadline_ms,
            service_default_ms=service_default,
            on_done=on_done,
            boosted=freq_ghz > self.freq_scale.default_ghz + 1e-12,
        )

    def submit(self, job: Job, sim: Simulator) -> None:
        if self.faults is not None and self.faults.is_down(
            self.shard_id, sim.now, self.replica_id
        ):
            # Fail-silent: the request vanishes; the aggregator learns only
            # through its deadline or response timeout.
            self.jobs_lost_to_faults += 1
            if self._tracer is not None:
                self._tracer.instant(
                    "isn.fault_drop", track=self._track,
                    qid=job.query.query_id, shard=self.shard_id,
                )
                self._metrics.counter("isn.jobs_lost_to_faults").add()
            return
        self.queued_work_default_ms += job.service_default_ms
        self._queue.append(job)
        if self._tracer is not None:
            # Depth includes the in-service job: the backlog a new arrival
            # actually waits behind.
            self._m_queue_depth.observe(len(self._queue) + (1 if self._busy else 0))
            self._m_queued_work.observe(self.queued_work_default_ms)
        if not self._busy:
            self._start_next(sim)

    def cancel(self, job: Job, sim: Simulator) -> bool:
        """Recall a queued job (a tied/hedged request that lost the race).

        Only jobs still waiting can be recalled — an in-service job keeps
        running (the core is already committed; its late response is the
        caller's to drop) and a finished one is gone.  Returns whether
        the job was still queued.  A successful recall releases the job's
        pending-work contribution and reports ``on_done(job, False, 0.0)``
        with ``job.cancelled`` set, so the aggregator's attempt
        accounting sees exactly one completion per attempt.
        """
        try:
            self._queue.remove(job)
        except ValueError:
            return False
        job.cancelled = True
        self.jobs_cancelled += 1
        if self._tracer is not None:
            self._tracer.instant(
                "isn.cancelled_in_queue", track=self._track,
                qid=job.query.query_id, shard=self.shard_id,
                replica=self.replica_id,
            )
            self._metrics.counter("isn.cancelled_in_queue").add()
        self._release_work(job)
        job.on_done(job, False, 0.0)
        return True

    # ------------------------------------------------------------- execution
    def _start_next(self, sim: Simulator) -> None:
        while self._queue:
            job = self._queue.popleft()
            if job.deadline_ms is not None and sim.now >= job.deadline_ms:
                # Expired while waiting: discard without doing any work.
                job.aborted_in_queue = True
                self.jobs_aborted += 1
                if self._tracer is not None:
                    self._tracer.instant(
                        "isn.abort_in_queue", track=self._track,
                        qid=job.query.query_id, shard=self.shard_id,
                    )
                    self._metrics.counter("isn.aborted_in_queue").add()
                self._release_work(job)
                job.on_done(job, False, 0.0)
                continue
            self._busy = True
            # If the core napped through the preceding idle gap, credit
            # the nap energy and pay the wake latency before service.
            wake_ms = 0.0
            if self.sleep is not None:
                # gap == 0 for back-to-back jobs; only a real idle stretch
                # can have napped.
                gap = max(sim.now - self._last_activity_end_ms, 0.0)
                nap = self.sleep.nap_ms_in_gap(gap)
                if nap > 0:
                    self.meter.add_nap(nap, self.sleep.nap_power_w)
                    wake_ms = self.sleep.wake_penalty_ms(gap)
                    self.wakeups += 1
            job.started_ms = sim.now
            # The governor has the final say on the core frequency, given
            # how much of the budget queueing already consumed.
            remaining = (
                job.deadline_ms - sim.now if job.deadline_ms is not None else None
            )
            job.freq_ghz = self.governor.frequency_for(
                job.result.cost, job.freq_ghz, remaining,
                self.cost_model, self.freq_scale,
            )
            job.boosted = job.freq_ghz > self.freq_scale.default_ghz + 1e-12
            service_ms = self.cost_model.service_ms(job.result.cost, job.freq_ghz)
            if self.faults is not None:
                # Straggler injection: the replica silently serves this
                # job slower (GC pause, noisy neighbour).  The factor is
                # sampled once at service start — the ISN's own backlog
                # estimate (queued_work_default_ms) deliberately stays
                # unaware, because the upstream latency predictor would
                # not know either.
                service_ms *= self.faults.slowdown_factor(
                    self.shard_id, sim.now, self.replica_id
                )
            service = wake_ms + service_ms
            if job.deadline_ms is not None and sim.now + service > job.deadline_ms:
                # Will miss the budget: work until the deadline, then abort.
                busy = job.deadline_ms - sim.now
                self.meter.add_busy(busy, job.freq_ghz, boosted=job.boosted)
                sim.schedule(busy, lambda j=job, b=busy: self._finish(j, False, b, sim))
            else:
                busy = service
                self.meter.add_busy(service, job.freq_ghz, boosted=job.boosted)
                sim.schedule(
                    service, lambda j=job, s=service: self._finish(j, True, s, sim)
                )
            if self._tracer is not None:
                # The service span opens when the core starts the job and
                # closes in _finish — an interval with real sim duration
                # on this ISN's (strictly sequential) track.
                job.span = self._tracer.span(
                    "isn.service", track=self._track,
                    qid=job.query.query_id, shard=self.shard_id,
                    freq_ghz=job.freq_ghz, boosted=job.boosted,
                )
                self._metrics.counter(
                    f"isn.freq_residency_ms.{job.freq_ghz:.1f}ghz"
                ).add(busy)
                if wake_ms > 0:
                    self._metrics.counter("isn.wakeups").add()
            return
        self._busy = False

    def finalize_sleep(self, now_ms: float) -> None:
        """Credit the trailing idle gap at end of run.

        Without this, an ISN a policy never touched would earn no nap
        savings despite sleeping the whole trace.
        """
        if self.sleep is None or self._busy or self._queue:
            return
        gap = max(now_ms - self._last_activity_end_ms, 0.0)
        nap = self.sleep.nap_ms_in_gap(gap)
        if nap > 0:
            self.meter.add_nap(nap, self.sleep.nap_power_w)
        self._last_activity_end_ms = now_ms

    def _finish(self, job: Job, completed: bool, busy_ms: float, sim: Simulator) -> None:
        self._busy = False
        self._last_activity_end_ms = sim.now
        if completed:
            self.jobs_processed += 1
        else:
            self.jobs_aborted += 1
        if job.span is not None:
            job.span.attrs["completed"] = completed
            job.span.finish()
            self._metrics.histogram("isn.service_ms").observe(busy_ms)
            if not completed:
                self._metrics.counter("isn.aborted_at_deadline").add()
        self._release_work(job)
        job.on_done(job, completed, busy_ms)
        self._start_next(sim)

    def _release_work(self, job: Job) -> None:
        """Drop the job's contribution to the pending-work estimate.

        Work is released at completion (not at dispatch) so that
        ``queued_work_default_ms`` includes the in-service job — the view
        Eq. 2's equivalent latency needs.
        """
        self.queued_work_default_ms = max(
            self.queued_work_default_ms - job.service_default_ms, 0.0
        )

    # ------------------------------------------------------------- accounting
    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._queue)
