"""ISN-side frequency governors.

The paper positions Cottage as the missing *budget source* for the DVFS
power managers it cites (Pegasus, TimeTrader, Rubik): "all these papers
assume that the time budget or the deadline for a query is known".  This
module closes that loop: once Cottage has broadcast a per-query deadline,
a governor on each ISN picks the core frequency for each job.

* :class:`AssignedFrequencyGovernor` — run at whatever the aggregator
  assigned (the paper's scheme: default, or f_max when boosted).
* :class:`SlackGovernor` — Rubik/TimeTrader-style: run each query at the
  *lowest* frequency that still meets its deadline given the time already
  spent in queue, never below the aggregator's assignment is required —
  the assignment is treated as a hint, the deadline as the contract.
  Saves power on queries with slack at zero quality cost (deadline still
  met under perfect service-time knowledge; prediction error is absorbed
  by the same budget slack as the baseline scheme).
* :class:`RaceToIdleGovernor` — always run at f_max ("computational
  sprinting"): the classic energy-latency counterpoint.

``benchmarks/bench_ext_governor.py`` measures the three under Cottage
budgets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cluster.cpu import CostModel, FrequencyScale
from repro.retrieval.result import CostStats


class FrequencyGovernor(ABC):
    """Chooses the core frequency for one job at dispatch time."""

    name: str = "governor"

    @abstractmethod
    def frequency_for(
        self,
        cost: CostStats,
        assigned_ghz: float,
        deadline_remaining_ms: float | None,
        cost_model: CostModel,
        freq_scale: FrequencyScale,
    ) -> float:
        """Frequency for a job about to start.

        Parameters
        ----------
        cost:
            The job's retrieval work (the governor may estimate service
            time from it; a real system would use the latency predictor,
            which tracks this quantity to within a bin).
        assigned_ghz:
            The frequency the aggregator's policy assigned.
        deadline_remaining_ms:
            Time left until the query's deadline, or None when unbudgeted.
        """


class AssignedFrequencyGovernor(FrequencyGovernor):
    """The paper's scheme: obey the aggregator's assignment verbatim."""

    name = "assigned"

    def frequency_for(self, cost, assigned_ghz, deadline_remaining_ms,
                      cost_model, freq_scale):
        return freq_scale.clamp(assigned_ghz)


class RaceToIdleGovernor(FrequencyGovernor):
    """Sprint every job at f_max and return to idle sooner."""

    name = "race_to_idle"

    def frequency_for(self, cost, assigned_ghz, deadline_remaining_ms,
                      cost_model, freq_scale):
        return freq_scale.max_ghz


class SlackGovernor(FrequencyGovernor):
    """Lowest frequency that still meets the remaining deadline.

    ``margin`` shrinks the remaining time before solving, absorbing the
    service-time uncertainty a real ISN has (it knows predicted, not
    actual, cycles).  Unbudgeted jobs fall back to the assignment — with
    no deadline there is no slack to define.
    """

    name = "slack"

    def __init__(self, margin: float = 0.9) -> None:
        if not 0.0 < margin <= 1.0:
            raise ValueError("margin must be in (0, 1]")
        self.margin = margin

    def frequency_for(self, cost, assigned_ghz, deadline_remaining_ms,
                      cost_model, freq_scale):
        if deadline_remaining_ms is None:
            return freq_scale.clamp(assigned_ghz)
        usable_ms = deadline_remaining_ms * self.margin
        if usable_ms <= 0.0:
            return freq_scale.max_ghz  # already late: sprint and hope
        # service_ms(f) = cycles / (f * 1e6)  =>  f >= cycles / (usable * 1e6)
        required_ghz = cost_model.cycles(cost) / (usable_ms * 1e6)
        return freq_scale.clamp(required_ghz)


GOVERNORS = {
    "assigned": AssignedFrequencyGovernor,
    "slack": SlackGovernor,
    "race_to_idle": RaceToIdleGovernor,
}
