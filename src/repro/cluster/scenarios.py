"""Declarative fault scenarios and the faults × replication × budget matrix.

The fault-tolerance story has three independent axes — what breaks
(:mod:`repro.cluster.faults`), how the cluster is replicated
(:mod:`repro.cluster.replicas`) and which budget policy runs — and the
interesting behaviour lives in their interactions: a budgeted policy
converts a dead shard into bounded quality loss, a hedged replica
converts a straggler into a small latency bump, a correlated outage
defeats replication and falls back to the timeout safety net.

This module makes those cells first-class: :data:`SCENARIOS` names a
handful of canonical fault timelines (pure functions of a seed, per the
DET-RNG discipline), :class:`MatrixCase` names one cell, and
:func:`run_matrix` replays a trace through every cell and reduces each
run to a :class:`CellResult` — tail latency, wasted work and quality
loss against the same policy's fault-free reference run.

``repro faults`` (CLI), ``benchmarks/bench_ext_fault_injection.py`` and
``tests/test_scenario_matrix.py`` all drive this one implementation.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

import numpy as np

from repro.cluster.engine import RunResult, SearchCluster
from repro.cluster.faults import FaultSchedule
from repro.cluster.replicas import DISPATCH_MODES, SELECTORS, ReplicationConfig
from repro.metrics.quality import GroundTruth
from repro.retrieval.query import QueryTrace


@dataclass(frozen=True)
class ScenarioContext:
    """What a scenario builder may depend on — nothing else, so a
    scenario's timeline is identical across policies and dispatch modes
    (cells of one scenario row stay comparable)."""

    n_shards: int
    n_replicas: int
    horizon_ms: float
    seed: int

    def rng(self, salt: int) -> random.Random:
        """A fresh seeded stream per (seed, scenario): DET-RNG compliant,
        and decoupled so adding a scenario never shifts another's draws."""
        return random.Random((self.seed * 1_000_003 + salt) & 0x7FFFFFFF)


def _none(ctx: ScenarioContext) -> FaultSchedule | None:
    return None


def _outage(ctx: ScenarioContext) -> FaultSchedule:
    """Shard 0 (every replica) fail-silent over the middle third."""
    return FaultSchedule.single(
        0, ctx.horizon_ms / 3.0, 2.0 * ctx.horizon_ms / 3.0
    )


def _flaky_shard(ctx: ScenarioContext) -> FaultSchedule:
    """Shard 0 flaps: exponentially jittered up/down intervals."""
    return FaultSchedule.random_flaky(
        0,
        ctx.horizon_ms,
        ctx.rng(salt=101),
        mean_up_ms=ctx.horizon_ms / 12.0,
        mean_down_ms=ctx.horizon_ms / 30.0,
    )


def _slow_replica(ctx: ScenarioContext) -> FaultSchedule:
    """Replica 0 of shard 0 serves 20x slow for the whole run (a wedged
    node: every query routed there becomes a straggler).  The canonical
    hedging case — a backup replica is healthy throughout."""
    return FaultSchedule.straggler(
        0, 0.0, ctx.horizon_ms, factor=20.0, replica_id=0
    )


def _correlated(ctx: ScenarioContext) -> FaultSchedule:
    """A rack dies: the first quarter of the shards (at least two), every
    replica, over the middle third.  Replication cannot help; budgets and
    timeouts must."""
    n_down = max(ctx.n_shards // 4, 2)
    return FaultSchedule.correlated_outage(
        list(range(min(n_down, ctx.n_shards))),
        ctx.horizon_ms / 3.0,
        2.0 * ctx.horizon_ms / 3.0,
    )


def _burst_outage(ctx: ScenarioContext) -> FaultSchedule:
    """Compound stress: shard 0 dies during the opening burst (queues are
    deepest early in a trace) while random stragglers roam the cluster."""
    burst = FaultSchedule.single(0, 1.0, ctx.horizon_ms / 4.0)
    stragglers = FaultSchedule.random_stragglers(
        ctx.n_shards,
        ctx.horizon_ms,
        ctx.rng(salt=202),
        n_events=max(ctx.n_shards // 2, 2),
        mean_len_ms=ctx.horizon_ms / 10.0,
        n_replicas=ctx.n_replicas,
    )
    return FaultSchedule(
        outages=list(burst.outages), slowdowns=list(stragglers.slowdowns)
    )


SCENARIOS = {
    "none": _none,
    "outage": _outage,
    "flaky_shard": _flaky_shard,
    "slow_replica": _slow_replica,
    "correlated": _correlated,
    "burst_outage": _burst_outage,
}


def scenario_schedule(
    name: str, ctx: ScenarioContext
) -> FaultSchedule | None:
    """Build the named scenario's fault timeline for one run."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; use one of {sorted(SCENARIOS)}"
        ) from None
    return builder(ctx)


@dataclass(frozen=True)
class MatrixCase:
    """One cell: a fault scenario × a policy × a replication setup."""

    scenario: str
    policy: str
    mode: str = "primary"
    n_replicas: int = 1
    selector: str = "static"

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.mode not in DISPATCH_MODES:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.selector not in SELECTORS:
            raise ValueError(f"unknown selector {self.selector!r}")
        if self.n_replicas < 1:
            raise ValueError("need at least one replica")
        if self.mode != "primary" and self.n_replicas < 2:
            raise ValueError(f"{self.mode} dispatch needs >= 2 replicas")

    @property
    def label(self) -> str:
        return (
            f"{self.scenario}/{self.policy}/{self.mode}"
            f"/r{self.n_replicas}/{self.selector}"
        )


@dataclass(frozen=True)
class CellResult:
    """One cell's reduced outcome (a row of ``BENCH_faults.json``)."""

    scenario: str
    policy: str
    mode: str
    n_replicas: int
    selector: str
    n_queries: int
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    avg_precision: float
    quality_loss: float  # reference (fault-free) precision minus this cell's
    avg_dropped_shards: float
    hedges_issued: int
    hedge_wins: int
    cancels_sent: int
    cancelled_in_queue: int
    duplicates_dropped: int
    total_service_ms: float
    wasted_service_ms: float
    wasted_work_ratio: float
    avg_power_w: float

    def row(self) -> dict:
        return asdict(self)


def reduce_run(
    case: MatrixCase,
    run: RunResult,
    truth: GroundTruth,
    reference_precision: float,
) -> CellResult:
    """Fold one cell's run into its scoreboard row."""
    if not run.records:
        raise ValueError("run produced no records")
    latencies = np.asarray(run.latencies_ms(), dtype=np.float64)
    precisions = [
        truth.precision(record.query, record.result.doc_ids())
        for record in run.records
    ]
    avg_precision = float(np.mean(precisions))
    return CellResult(
        scenario=case.scenario,
        policy=case.policy,
        mode=case.mode,
        n_replicas=case.n_replicas,
        selector=case.selector,
        n_queries=len(run.records),
        mean_latency_ms=float(latencies.mean()),
        p50_latency_ms=float(np.percentile(latencies, 50)),
        p95_latency_ms=float(np.percentile(latencies, 95)),
        p99_latency_ms=float(np.percentile(latencies, 99)),
        avg_precision=avg_precision,
        quality_loss=reference_precision - avg_precision,
        avg_dropped_shards=float(
            np.mean([r.n_dropped_shards for r in run.records])
        ),
        hedges_issued=run.hedges_issued,
        hedge_wins=run.hedge_wins,
        cancels_sent=run.cancels_sent,
        cancelled_in_queue=run.cancelled_in_queue,
        duplicates_dropped=run.duplicates_dropped,
        total_service_ms=run.total_service_ms,
        wasted_service_ms=run.wasted_service_ms,
        wasted_work_ratio=run.wasted_work_ratio,
        avg_power_w=run.power.average_power_w,
    )


def default_matrix(
    policies: tuple[str, ...] = ("exhaustive", "cottage"),
    scenarios: tuple[str, ...] = (
        "outage", "flaky_shard", "slow_replica", "correlated",
    ),
    n_replicas: int = 2,
) -> list[MatrixCase]:
    """The canonical grid: every scenario × policy × dispatch mode (with
    a single-replica ``primary`` baseline per policy and scenario)."""
    cases: list[MatrixCase] = []
    for scenario in scenarios:
        for policy in policies:
            cases.append(MatrixCase(scenario, policy, "primary", 1))
            for mode in ("hedged", "tied"):
                cases.append(MatrixCase(scenario, policy, mode, n_replicas))
    return cases


def run_matrix(
    cluster: SearchCluster,
    make_policy,
    trace: QueryTrace,
    truth: GroundTruth,
    cases: list[MatrixCase],
    seed: int = 0,
    response_timeout_ms: float | None = 150.0,
) -> list[CellResult]:
    """Replay ``trace`` through every matrix cell.

    ``make_policy`` maps a policy name to a fresh :class:`SelectionPolicy`
    (``Testbed.make_policy`` fits).  ``response_timeout_ms`` is passed to
    every run; it only bites queries dispatched without a deadline, i.e.
    it is the unbudgeted policies' safety net and a no-op for Cottage.

    Each policy's fault-free single-replica run is the quality-loss
    reference; references are computed once per policy and reused across
    cells.  Every run is a pure function of (trace, seed, case), so the
    whole matrix is reproducible row by row.
    """
    horizon_ms = max(trace.duration * 1000.0, 1.0)
    references: dict[str, float] = {}
    results: list[CellResult] = []

    def reference_precision(policy_name: str) -> float:
        cached = references.get(policy_name)
        if cached is None:
            run = cluster.run_trace(
                trace,
                make_policy(policy_name),
                response_timeout_ms=response_timeout_ms,
            )
            cached = float(
                np.mean([
                    truth.precision(r.query, r.result.doc_ids())
                    for r in run.records
                ])
            )
            references[policy_name] = cached
        return cached

    for case in cases:
        ctx = ScenarioContext(
            n_shards=cluster.n_shards,
            n_replicas=case.n_replicas,
            horizon_ms=horizon_ms,
            seed=seed,
        )
        run = cluster.run_trace(
            trace,
            make_policy(case.policy),
            faults=scenario_schedule(case.scenario, ctx),
            response_timeout_ms=response_timeout_ms,
            replication=ReplicationConfig(
                n_replicas=case.n_replicas,
                mode=case.mode,
                selector=case.selector,
                seed=seed,
            ),
        )
        results.append(
            reduce_run(case, run, truth, reference_precision(case.policy))
        )
    return results
