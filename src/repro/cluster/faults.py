"""Fault injection: ISN outages.

Real clusters lose serving nodes; partition-aggregate search degrades
gracefully only if the aggregator stops waiting for the dead.  A
:class:`FaultSchedule` marks (shard, interval) outages; a failed ISN
accepts jobs but never responds (the fail-silent model — crashes and
network partitions look identical to the aggregator).

Two mechanisms bound the damage:

* per-query time budgets (Cottage, aggregation policy) — a dead ISN is
  just a straggler and is dropped at the deadline;
* the aggregator's ``response_timeout_ms`` safety net — without it, an
  unbudgeted policy (exhaustive, Taily, Rank-S) would wait forever.

``tests/test_faults.py`` and ``benchmarks/bench_ext_fault_injection.py``
exercise both.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Outage:
    """One ISN down for [start_ms, end_ms)."""

    shard_id: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError("shard_id must be non-negative")
        if not 0.0 <= self.start_ms < self.end_ms:
            raise ValueError("need 0 <= start < end")

    def covers(self, time_ms: float) -> bool:
        return self.start_ms <= time_ms < self.end_ms


@dataclass
class FaultSchedule:
    """All outages for one simulated run."""

    outages: list[Outage] = field(default_factory=list)
    _by_shard: dict[int, list[Outage]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        for outage in self.outages:
            self._by_shard.setdefault(outage.shard_id, []).append(outage)
        for _, intervals in sorted(self._by_shard.items()):
            intervals.sort(key=lambda o: o.start_ms)
            for a, b in zip(intervals, intervals[1:]):
                if b.start_ms < a.end_ms:
                    raise ValueError(
                        f"overlapping outages on shard {a.shard_id}"
                    )

    def is_down(self, shard_id: int, time_ms: float) -> bool:
        """Whether the shard is failed at ``time_ms``."""
        intervals = self._by_shard.get(shard_id)
        if not intervals:
            return False
        idx = bisect_right([o.start_ms for o in intervals], time_ms) - 1
        return idx >= 0 and intervals[idx].covers(time_ms)

    def downtime_ms(self, shard_id: int) -> float:
        return sum(
            o.end_ms - o.start_ms for o in self._by_shard.get(shard_id, [])
        )

    @classmethod
    def single(cls, shard_id: int, start_ms: float, end_ms: float) -> "FaultSchedule":
        return cls(outages=[Outage(shard_id, start_ms, end_ms)])
