"""Aggregator-side query result cache.

Web search traffic is heavily skewed — the paper's Wikipedia trace repeats
a small hot set — and production aggregators answer repeats from a result
cache before any ISN is touched (Baeza-Yates et al., the paper's [1]).
This LRU cache slots in front of the selection policy: a hit answers in
the cache lookup time with zero ISN work; a miss falls through and the
merged response is stored.

Entries can carry a TTL so a deployment can bound staleness; the simulated
index is immutable, so the default is no expiry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.retrieval.result import SearchResult


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters for one run."""

    hits: int
    misses: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """LRU result cache keyed by the query's term tuple and result depth.

    ``k`` is part of the key: a result merged for one depth must never
    answer a lookup at another (a top-2 response replayed for a top-10
    request would silently truncate the answer; the reverse would return
    more hits than the aggregator merged for).
    """

    def __init__(
        self,
        capacity: int,
        ttl_ms: float | None = None,
        lookup_ms: float = 0.02,
    ) -> None:
        """
        Parameters
        ----------
        capacity:
            Maximum number of cached queries (LRU eviction beyond it).
        ttl_ms:
            Entry lifetime; ``None`` never expires.
        lookup_ms:
            Simulated lookup latency charged on every query (hit or miss).
        """
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if ttl_ms is not None and ttl_ms <= 0:
            raise ValueError("ttl must be positive when set")
        if lookup_ms < 0:
            raise ValueError("lookup time cannot be negative")
        self.capacity = capacity
        self.ttl_ms = ttl_ms
        self.lookup_ms = lookup_ms
        self._entries: OrderedDict[
            tuple[tuple[str, ...], int], tuple[float, SearchResult]
        ] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(
        self, terms: tuple[str, ...], k: int, now_ms: float
    ) -> SearchResult | None:
        """Cached result for ``(terms, k)``, honouring TTL; None on miss."""
        key = (terms, k)
        entry = self._entries.get(key)
        if entry is not None:
            stored_ms, result = entry
            if self.ttl_ms is None or now_ms - stored_ms <= self.ttl_ms:
                self._entries.move_to_end(key)
                self._hits += 1
                return result
            del self._entries[key]  # expired
        self._misses += 1
        return None

    def put(
        self, terms: tuple[str, ...], k: int, result: SearchResult, now_ms: float
    ) -> None:
        key = (terms, k)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (now_ms, result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[tuple[str, ...], int]) -> bool:
        return key in self._entries

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits, misses=self._misses, evictions=self._evictions
        )
