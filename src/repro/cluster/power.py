"""Package power model and energy metering.

Stands in for the Intel RAPL counters the paper reads.  Each ISN core draws
static (leakage) power whenever the package is on, plus a cubic-in-frequency
dynamic term while actively processing a query — the standard CMOS
``P = P_static + c * f^3`` approximation that underpins all the DVFS work
the paper cites (Pegasus, TimeTrader, Rubik).

Calibration anchors (paper Fig. 14, 16 ISNs on one package):
  * idle package power 14.53 W  -> uncore + 16 cores static
  * exhaustive search ~36 W      -> cores at the default frequency, busy at
    the evaluation trace's utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PowerModel:
    """Per-core and package power in watts."""

    uncore_idle_w: float = 8.0
    core_static_w: float = 0.41
    dynamic_coeff: float = 0.29  # watts per GHz^3 while busy

    def core_power_w(self, freq_ghz: float, busy: bool) -> float:
        """Instantaneous draw of one core."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        dynamic = self.dynamic_coeff * freq_ghz**3 if busy else 0.0
        return self.core_static_w + dynamic

    def idle_package_w(self, n_cores: int) -> float:
        """Package draw with every core idle (the paper's 14.53 W anchor)."""
        return self.uncore_idle_w + n_cores * self.core_static_w


@dataclass
class EnergyMeter:
    """Accumulates one core's energy over simulated time.

    The ISN calls :meth:`add_busy` for each service interval; idle energy
    is derived at report time from total elapsed time minus busy time, so
    the meter never needs to see idle intervals explicitly.
    """

    model: PowerModel
    busy_ms: float = 0.0
    busy_energy_mj: float = 0.0  # millijoules (W * ms)
    boosted_ms: float = 0.0
    nap_ms: float = 0.0
    nap_savings_mj: float = 0.0
    _freq_ms: dict[float, float] = field(default_factory=dict)

    def add_busy(self, duration_ms: float, freq_ghz: float, boosted: bool = False) -> None:
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        self.busy_ms += duration_ms
        self.busy_energy_mj += duration_ms * self.model.core_power_w(freq_ghz, busy=True)
        if boosted:
            self.boosted_ms += duration_ms
        self._freq_ms[freq_ghz] = self._freq_ms.get(freq_ghz, 0.0) + duration_ms

    def add_nap(self, duration_ms: float, nap_power_w: float) -> None:
        """Credit a nap interval: the core drew ``nap_power_w`` instead of
        its static power for ``duration_ms`` of what would otherwise be
        counted as plain idle time."""
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        saving = max(self.model.core_static_w - nap_power_w, 0.0)
        self.nap_ms += duration_ms
        self.nap_savings_mj += duration_ms * saving

    def total_energy_mj(self, elapsed_ms: float) -> float:
        """Busy energy plus static energy over the full elapsed window,
        minus any nap savings."""
        if elapsed_ms < self.busy_ms - 1e-6:
            raise ValueError("elapsed time shorter than recorded busy time")
        idle_ms = max(elapsed_ms - self.busy_ms, 0.0)
        idle_energy = idle_ms * self.model.core_power_w(freq_ghz=1.0, busy=False)
        return self.busy_energy_mj + idle_energy - min(
            self.nap_savings_mj, idle_energy
        )

    def utilization(self, elapsed_ms: float) -> float:
        if elapsed_ms <= 0:
            return 0.0
        return min(self.busy_ms / elapsed_ms, 1.0)

    def frequency_residency(self) -> dict[float, float]:
        """Busy milliseconds spent at each frequency level."""
        return dict(self._freq_ms)


@dataclass(frozen=True)
class PowerReport:
    """Cluster-wide power summary for one simulated run."""

    elapsed_ms: float
    package_energy_mj: float
    idle_package_w: float
    per_core_utilization: tuple[float, ...]

    @property
    def average_power_w(self) -> float:
        """Mean package watts over the window (what Fig. 14 plots)."""
        if self.elapsed_ms <= 0:
            return self.idle_package_w
        return self.package_energy_mj / self.elapsed_ms

    @property
    def dynamic_power_w(self) -> float:
        """Power added on top of the idle package draw."""
        return max(self.average_power_w - self.idle_package_w, 0.0)


def package_report(
    meters: list[EnergyMeter], model: PowerModel, elapsed_ms: float
) -> PowerReport:
    """Aggregate per-core meters into a package-level report."""
    core_energy = sum(meter.total_energy_mj(elapsed_ms) for meter in meters)
    package = core_energy + elapsed_ms * model.uncore_idle_w
    return PowerReport(
        elapsed_ms=elapsed_ms,
        package_energy_mj=package,
        idle_package_w=model.idle_package_w(len(meters)),
        per_core_utilization=tuple(m.utilization(elapsed_ms) for m in meters),
    )
