"""Shard replica groups: selection, and budget-aware hedged/tied dispatch.

The *Tail-Tolerant Distributed Search* playbook gives partition-aggregate
search three tools against stragglers, and this module configures all of
them for the simulated cluster:

* **replica selection** — which of a shard's R replicas serves a query
  (:class:`StaticSelector`, :class:`SeededSelector`,
  :class:`LeastLoadedSelector`);
* **hedged requests** — issue a backup to a second replica once the
  primary has been outstanding long enough that the latency predictor
  says it will miss the query's Cottage budget (see
  :func:`hedge_delay_ms`);
* **tied requests** — issue to two replicas up front and recall the
  loser the moment the first response arrives (exactly-once merge; a
  recalled replica that already started keeps running and its late
  response is dropped as a duplicate).

Determinism: selectors draw only from an explicitly seeded
``random.Random`` built from :attr:`ReplicationConfig.seed` (the repo's
DET-RNG discipline), and a fresh selector is constructed per run by
:meth:`SearchCluster.run_trace`, so identical (seed, config) pairs replay
identical replica choices.

The degenerate configuration — one replica, ``primary`` mode — schedules
exactly the same simulator events as the pre-replication cluster, which
is what the bit-identity property suite in ``tests/test_replication.py``
pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.isn import ISNServer

DISPATCH_MODES = ("primary", "hedged", "tied")
SELECTORS = ("static", "seeded", "least_loaded")


@dataclass(frozen=True)
class ReplicationConfig:
    """How a run replicates shards and spends backups.

    Attributes
    ----------
    n_replicas:
        Independent ISN instances per shard (each with its own queue,
        CPU and energy meter).  1 reproduces the seed cluster.
    mode:
        ``primary`` sends each query to one replica; ``hedged`` adds a
        delayed backup when the primary looks likely to miss the budget;
        ``tied`` races two replicas and recalls the loser.  Modes needing
        a backup degrade to ``primary`` when only one replica exists.
    selector:
        Primary-choice policy: ``static`` always picks replica 0 (the
        bit-identity baseline), ``seeded`` draws uniformly from the
        run's seeded RNG, ``least_loaded`` picks the smallest pending
        work backlog (ties to the lowest replica id).
    seed:
        Seed for the ``seeded`` selector's ``random.Random``.  Fault
        timelines are seeded separately (see
        :meth:`FaultSchedule.random_flaky` and friends).
    hedge_floor_ms:
        Never hedge sooner than this after dispatch — an instant hedge
        is a tied request at double cost.
    hedge_fixed_ms:
        Hedge delay for unbudgeted policies (exhaustive, Taily), which
        give the planner no deadline to derive from.
    """

    n_replicas: int = 1
    mode: str = "primary"
    selector: str = "static"
    seed: int = 0
    hedge_floor_ms: float = 0.5
    hedge_fixed_ms: float = 25.0

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError("need at least one replica per shard")
        if self.mode not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {self.mode!r}; use one of {DISPATCH_MODES}"
            )
        if self.selector not in SELECTORS:
            raise ValueError(
                f"unknown selector {self.selector!r}; use one of {SELECTORS}"
            )
        if self.hedge_floor_ms < 0 or self.hedge_fixed_ms <= 0:
            raise ValueError("hedge delays must be positive")


class ReplicaSelector(Protocol):
    """Orders a shard's replicas for one query: primary first, backups after."""

    def order(
        self, shard_id: int, group: Sequence["ISNServer"], now_ms: float
    ) -> tuple[int, ...]:
        """Replica ids in dispatch preference order (primary first)."""
        ...

    def queue_view(self, group: Sequence["ISNServer"]) -> float:
        """The backlog (default-frequency ms) a policy should see for the
        shard — the queue term of Eq. 2 given where this selector would
        send the next query."""
        ...


class StaticSelector:
    """Always replica 0 — the seed cluster's (only) behaviour.

    With this selector, extra replicas are pure spares: a zero-fault
    primary-mode run is bit-identical to the single-replica cluster at
    any replica count (pinned in ``tests/test_replication.py``).
    """

    name = "static"

    def order(
        self, shard_id: int, group: Sequence["ISNServer"], now_ms: float
    ) -> tuple[int, ...]:
        return tuple(range(len(group)))

    def queue_view(self, group: Sequence["ISNServer"]) -> float:
        return group[0].queued_work_default_ms


class SeededSelector:
    """Uniform primary choice from a seeded RNG; backups follow in rotation.

    One RNG draw per (query, shard) — the draw count is a pure function
    of the trace and the policy's selections, so equal seeds replay
    equal choices.
    """

    name = "seeded"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    def order(
        self, shard_id: int, group: Sequence["ISNServer"], now_ms: float
    ) -> tuple[int, ...]:
        n = len(group)
        if n == 1:
            return (0,)
        first = self.rng.randrange(n)
        return tuple((first + i) % n for i in range(n))

    def queue_view(self, group: Sequence["ISNServer"]) -> float:
        # Expected backlog under a uniform draw.  Reading (not drawing)
        # keeps the RNG sequence independent of how often policies peek.
        return sum(r.queued_work_default_ms for r in group) / len(group)


class LeastLoadedSelector:
    """Smallest pending-work backlog first; ties go to the lowest id."""

    name = "least_loaded"

    def order(
        self, shard_id: int, group: Sequence["ISNServer"], now_ms: float
    ) -> tuple[int, ...]:
        return tuple(
            sorted(range(len(group)), key=lambda r: (group[r].queued_work_default_ms, r))
        )

    def queue_view(self, group: Sequence["ISNServer"]) -> float:
        return min(r.queued_work_default_ms for r in group)


def make_selector(config: ReplicationConfig) -> ReplicaSelector:
    """Fresh selector for one run (the seeded RNG starts from the seed)."""
    if config.selector == "static":
        return StaticSelector()
    if config.selector == "seeded":
        return SeededSelector(random.Random(config.seed))
    if config.selector == "least_loaded":
        return LeastLoadedSelector()
    raise ValueError(f"unknown selector {config.selector!r}")


def hedge_delay_ms(
    budget_ms: float | None,
    predicted_service_ms: float,
    backup_queue_ms: float,
    network_delay_ms: float,
    config: ReplicationConfig,
) -> float:
    """How long after dispatch to wait before issuing the hedge.

    Budget-aware derivation: the backup's predicted completion needs
    ``backup_queue + predicted_service + network_delay`` ms, so the
    *latest* useful hedge instant is ``budget`` minus that — hedging
    later buys nothing (the backup would miss the deadline too), hedging
    earlier wastes a replica on primaries that were always going to make
    it.  At that instant the condition "the primary has not answered
    yet" is exactly "the latency predictor says the primary will miss
    the remaining Cottage budget", which is when *Tail-Tolerant
    Distributed Search* says to spend the replica.

    A primary predicted to be slower than the whole budget pushes the
    delay to the floor: hedge immediately, the backup is the only hope.
    Unbudgeted policies fall back to the fixed ``hedge_fixed_ms``.
    """
    if budget_ms is None:
        return config.hedge_fixed_ms
    backup_eta_ms = backup_queue_ms + predicted_service_ms + network_delay_ms
    return max(budget_ms - backup_eta_ms, config.hedge_floor_ms)
