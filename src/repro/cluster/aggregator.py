"""The aggregator: policy consultation, dispatch, merge, budget enforcement.

Implements the paper's Fig. 5 control flow.  For coordinated policies the
predict-and-report round (steps 1-5) is charged as the decision's
``coordination_delay_ms``; dispatch then fans the query out, each selected
ISN executes within the broadcast budget, and the aggregator merges
whatever arrived by the deadline, dropping stragglers (step 7).

With shard replicas (:mod:`repro.cluster.replicas`) each selected shard
becomes a *request* that may spawn several *attempts*:

* ``primary`` mode issues one attempt to the selector's first choice —
  the pre-replication behaviour, bit-identical to it at any replica
  count;
* ``hedged`` mode schedules a backup attempt at the budget-derived hedge
  instant (see :func:`repro.cluster.replicas.hedge_delay_ms`) and issues
  it only if the primary has not answered by then;
* ``tied`` mode races two attempts and recalls the loser the moment the
  first response arrives (a recall only reaches jobs still queued; an
  attempt already in service runs on and its late response is dropped as
  a duplicate).

Whatever the mode, exactly one response per shard is merged and exactly
one record per query is committed — the invariants
``tests/test_tied_requests.py`` stresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.cluster.cache import ResultCache
from repro.cluster.events import Simulator
from repro.cluster.isn import ISNServer, Job
from repro.cluster.network import NetworkModel
from repro.cluster.replicas import (
    ReplicaSelector,
    ReplicationConfig,
    hedge_delay_ms,
    make_selector,
)
from repro.cluster.types import (
    ClusterView,
    Decision,
    QueryRecord,
    SelectionPolicy,
    ShardOutcome,
)
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult, merge_results
from repro.retrieval.searcher import StrategyChoice, StrategySelector
from repro.telemetry import NO_TELEMETRY, Telemetry

if TYPE_CHECKING:  # avoids a runtime cluster <-> serving import cycle
    from repro.serving.admission import AdmissionController

_TRACK = "aggregator"


@dataclass
class _Attempt:
    """One job issued to one replica for one (query, shard) request."""

    replica_id: int
    job: Job
    role: str  # "primary" | "hedge" | "tied"
    issued_ms: float
    done: bool = False  # the ISN reported back (finish, abort or recall)
    completed: bool = False  # finished in time; its response is travelling


@dataclass
class _ShardRequest:
    """Aggregator-side state for one selected shard of one query."""

    shard_id: int
    attempts: dict[int, _Attempt] = field(default_factory=dict)
    won: bool = False  # a response for this shard was accepted
    winner_replica: int = -1
    hedge_scheduled: bool = False
    backup_replica: int | None = None


@dataclass
class _PendingQuery:
    """Aggregator-side state for one in-flight query."""

    query: Query
    arrival_ms: float
    decision: Decision
    dispatch_ms: float
    deadline_ms: float | None
    expected: set[int]
    choices: dict[int, StrategyChoice | None] = field(default_factory=dict)
    requests: dict[int, _ShardRequest] = field(default_factory=dict)
    responses: dict[int, SearchResult] = field(default_factory=dict)
    outcomes: dict[tuple[int, int], ShardOutcome] = field(default_factory=dict)
    finalized: bool = False
    span: object | None = None  # telemetry lifecycle span


class Aggregator:
    """Drives queries through the cluster under a selection policy."""

    def __init__(
        self,
        isns: list[ISNServer] | list[list[ISNServer]],
        policy: SelectionPolicy,
        network: NetworkModel,
        sim: Simulator,
        k: int,
        cache: ResultCache | None = None,
        response_timeout_ms: float | None = None,
        telemetry: Telemetry | None = None,
        replication: ReplicationConfig | None = None,
        selector: ReplicaSelector | None = None,
        admission: AdmissionController | None = None,
        record_sink: Callable[[QueryRecord], None] | None = None,
        strategy_selector: StrategySelector | None = None,
    ) -> None:
        """``isns`` is one entry per shard: either a bare :class:`ISNServer`
        (single replica, the pre-replication form) or that shard's replica
        group.  ``response_timeout_ms`` is the safety net for unbudgeted
        policies: with fail-silent ISNs in play, exhaustive-style "wait for
        everyone" would otherwise never answer.  ``selector`` overrides the
        replica selector built from ``replication`` (used to share one
        seeded selector across direct constructions).

        ``admission`` gates every cache-missing query before the policy
        runs (see :mod:`repro.serving.admission`): a rejected query is
        answered empty after the controller's fast-reject delay and
        committed with ``shed=True`` — and is *not* shown to the policy's
        ``observe``.  ``record_sink`` replaces the ``records`` list with a
        streaming consumer, so million-query open-loop campaigns retain
        no per-query state.  Both default to ``None``, which is
        bit-identical to the pre-serving-plane aggregator.

        ``strategy_selector`` picks a per-(query, shard) traversal at
        dispatch time (see :class:`repro.retrieval.searcher.
        StrategySelector`).  It is consulted once per selected shard,
        *after* the policy's decision, with the assigned time budget — so
        a tight budget can downshift the traversal — and the same choice
        is issued to every replica attempt of that shard (hedged/tied
        attempts must race identical work).  ``None`` keeps every shard's
        static default, bit-identical to the pre-selection aggregator."""
        if not isns:
            raise ValueError("cluster needs at least one ISN")
        if response_timeout_ms is not None and response_timeout_ms <= 0:
            raise ValueError("response timeout must be positive")
        self.groups: list[list[ISNServer]] = [
            list(entry) if isinstance(entry, (list, tuple)) else [entry]
            for entry in isns
        ]
        self.replication = replication or ReplicationConfig()
        self.selector = selector or make_selector(self.replication)
        self.policy = policy
        self.network = network
        self.sim = sim
        self.k = k
        self.cache = cache
        self.response_timeout_ms = response_timeout_ms
        self.admission = admission
        self._record_sink = record_sink
        self.strategy_selector = strategy_selector
        #: Dispatch-composition accounting: effective strategy name ->
        #: number of shard requests dispatched with it (selector runs
        #: only; empty without one).
        self.strategy_choices: dict[str, int] = {}
        self.records: list[QueryRecord] = []
        self._default_freq = self.groups[0][0].freq_scale.default_ghz
        self._max_freq = self.groups[0][0].freq_scale.max_ghz
        # Run-level tail-tolerance accounting (surfaced on RunResult).
        self.queries_seen = 0
        # Serving-plane accounting (all zero without admission control).
        self.admitted = 0
        self.shed_queue_depth = 0
        self.shed_deadline = 0
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.cancels_sent = 0
        self.cancelled_in_queue = 0
        self.duplicates_dropped = 0
        self.total_service_ms = 0.0
        self.counted_service_ms = 0.0
        # Telemetry: the tracer reference is None when disabled, so the
        # per-query hot path pays one attribute test and nothing else.
        telemetry = telemetry or NO_TELEMETRY
        self._tracer = telemetry.tracer if telemetry.enabled else None
        metrics = telemetry.metrics
        self._m_cache_hits = metrics.counter("aggregator.result_cache.hits")
        self._m_cache_misses = metrics.counter("aggregator.result_cache.misses")
        self._m_admitted = metrics.counter("aggregator.admitted")
        self._m_shed = metrics.counter("aggregator.shed")
        self._m_stragglers = metrics.counter("aggregator.stragglers_dropped")
        self._m_hedges = metrics.counter("aggregator.hedges_issued")
        self._m_hedge_wins = metrics.counter("aggregator.hedge_wins")
        self._m_cancels = metrics.counter("aggregator.cancels_sent")
        self._m_duplicates = metrics.counter("aggregator.duplicates_dropped")
        self._m_selector = metrics.counter("aggregator.selector_choices")
        self._m_latency = metrics.histogram("aggregator.latency_ms")
        self._m_budget = metrics.histogram("aggregator.time_budget_ms")
        self._m_slack = metrics.histogram("aggregator.budget_slack_ms")
        self._m_selected = metrics.histogram("aggregator.selected_isns", lo=0.5, hi=1e4)

    @property
    def isns(self) -> list[ISNServer]:
        """Each shard's primary replica (the pre-replication view)."""
        return [group[0] for group in self.groups]

    # ---------------------------------------------------------------- intake
    def view(self) -> ClusterView:
        return ClusterView(
            now_ms=self.sim.now,
            n_shards=len(self.groups),
            default_freq_ghz=self._default_freq,
            max_freq_ghz=self._max_freq,
            queued_predicted_ms=tuple(
                self.selector.queue_view(group) for group in self.groups
            ),
        )

    def on_query(self, query: Query) -> None:
        """Entry point, fired by the engine at the query's arrival time."""
        arrival = self.sim.now
        self.queries_seen += 1
        tracer = self._tracer
        qspan = None
        if tracer is not None:
            # Lifecycles overlap (queries are in flight concurrently), so
            # they are *async* spans — one Perfetto nestable track event
            # per query, arrival to response.
            qspan = tracer.async_span("query", track=_TRACK, qid=query.query_id)
        if self.cache is not None:
            cached = self.cache.get(query.terms, self.k, arrival)
            if cached is not None:
                if qspan is not None:
                    self._m_cache_hits.add()
                    qspan.attrs["from_cache"] = True
                    qspan.finish()
                record = QueryRecord(
                    query=query,
                    arrival_ms=arrival,
                    latency_ms=self.cache.lookup_ms,
                    result=cached,
                    decision=Decision(shard_ids=()),
                    from_cache=True,
                )
                self._commit(record)
                return
            if qspan is not None:
                self._m_cache_misses.add()
        if self.admission is not None:
            reason = self.admission.admit(query, self.view(), arrival)
            if reason is not None:
                if reason == "deadline":
                    self.shed_deadline += 1
                else:
                    self.shed_queue_depth += 1
                if qspan is not None:
                    self._m_shed.add()
                    qspan.attrs["shed"] = reason
                    qspan.finish()
                record = QueryRecord(
                    query=query,
                    arrival_ms=arrival,
                    latency_ms=self.admission.reject_ms,
                    result=SearchResult(),
                    decision=Decision(shard_ids=()),
                    shed=True,
                )
                self._commit(record)
                return
            self.admission.on_admit(query.query_id, arrival)
        self.admitted += 1
        if qspan is not None:
            self._m_admitted.add()
        if tracer is None:
            decision = self.policy.decide(query, self.view())
        else:
            # Policy-internal spans (predict, budget-assign) nest inside.
            with tracer.span("aggregator.decide", track=_TRACK, qid=query.query_id):
                decision = self.policy.decide(query, self.view())
        if not decision.shard_ids:
            # A policy that selects nothing answers immediately and empty.
            if qspan is not None:
                qspan.finish()
            record = QueryRecord(
                query=query,
                arrival_ms=arrival,
                latency_ms=decision.coordination_delay_ms,
                result=SearchResult(),
                decision=decision,
            )
            self._commit(record)
            return

        dispatch_delay = decision.coordination_delay_ms + self.network.delay_ms()
        dispatch_ms = arrival + dispatch_delay
        deadline = (
            dispatch_ms + decision.time_budget_ms
            if decision.time_budget_ms is not None
            else None
        )
        pending = _PendingQuery(
            query=query,
            arrival_ms=arrival,
            decision=decision,
            dispatch_ms=dispatch_ms,
            deadline_ms=deadline,
            expected=set(decision.shard_ids),
            span=qspan,
        )
        if qspan is not None:
            self._m_selected.observe(len(decision.shard_ids))
            if decision.time_budget_ms is not None:
                self._m_budget.observe(decision.time_budget_ms)

        if self.strategy_selector is not None:
            # One choice per selected shard, made with the assigned budget
            # in hand and shared by every replica attempt of that shard.
            for sid in decision.shard_ids:
                choice = self.strategy_selector.choose(
                    query, sid, decision.time_budget_ms
                )
                pending.choices[sid] = choice
                searcher = self.groups[sid][0].searcher
                effective = (
                    choice.strategy
                    if choice is not None and choice.strategy is not None
                    else searcher.strategy
                )
                self.strategy_choices[effective] = (
                    self.strategy_choices.get(effective, 0) + 1
                )
                if qspan is not None and choice is not None:
                    self._m_selector.add()

        mode = self.replication.mode
        for sid in decision.shard_ids:
            group = self.groups[sid]
            order = self.selector.order(sid, group, arrival)
            request = _ShardRequest(shard_id=sid)
            pending.requests[sid] = request
            primary = self._launch(
                pending, request, order[0], "primary", at_ms=dispatch_ms
            )
            if len(group) < 2:
                continue  # hedged/tied degrade to primary-only
            if mode == "tied":
                self._launch(pending, request, order[1], "tied", at_ms=dispatch_ms)
            elif mode == "hedged":
                request.backup_replica = order[1]
                request.hedge_scheduled = True
                backup_queue = group[order[1]].queued_work_default_ms
                predicted = decision.predicted_service_ms.get(
                    sid, primary.job.service_default_ms
                )
                delay = hedge_delay_ms(
                    decision.time_budget_ms,
                    predicted,
                    backup_queue,
                    self.network.delay_ms(),
                    self.replication,
                )
                self.sim.schedule_at(
                    dispatch_ms + delay,
                    lambda p=pending, s=sid: self._fire_hedge(p, s),
                )

        if deadline is not None:
            # Hard stop: merge whatever has arrived once responses from the
            # deadline could have travelled back.  The epsilon makes the
            # deadline inclusive: an ISN finishing exactly on the budget
            # would otherwise lose the same-timestamp tie against this
            # finalize event and be dropped.
            self.sim.schedule_at(
                deadline + self.network.delay_ms() + 1e-6,
                lambda p=pending: self._finalize(p),
            )
        elif self.response_timeout_ms is not None:
            # Unbudgeted policy: answer with whatever arrived by the safety
            # timeout (fail-silent ISNs never respond at all).
            self.sim.schedule_at(
                dispatch_ms + self.response_timeout_ms,
                lambda p=pending: self._finalize(p),
            )

    # ---------------------------------------------------------------- dispatch
    def _launch(
        self,
        pending: _PendingQuery,
        request: _ShardRequest,
        replica_id: int,
        role: str,
        at_ms: float | None,
    ) -> _Attempt:
        """Create a job on one replica and submit it (now, or at ``at_ms``)."""
        sid = request.shard_id
        isn = self.groups[sid][replica_id]
        freq = pending.decision.frequency_overrides.get(sid, self._default_freq)
        job = isn.make_job(
            pending.query,
            freq_ghz=freq,
            deadline_ms=pending.deadline_ms,
            on_done=lambda job, ok, busy, p=pending, s=sid, r=replica_id: (
                self._on_isn_done(p, s, r, job, ok, busy)
            ),
            choice=pending.choices.get(sid),
        )
        attempt = _Attempt(
            replica_id=replica_id,
            job=job,
            role=role,
            issued_ms=at_ms if at_ms is not None else self.sim.now,
        )
        request.attempts[replica_id] = attempt
        if at_ms is None:
            isn.submit(job, self.sim)
        else:
            self.sim.schedule_at(at_ms, lambda i=isn, j=job: i.submit(j, self.sim))
        return attempt

    def _fire_hedge(self, pending: _PendingQuery, shard_id: int) -> None:
        """The hedge instant arrived: spend the backup iff still useful."""
        request = pending.requests[shard_id]
        request.hedge_scheduled = False
        if pending.finalized or request.won:
            return  # the primary answered in time — no replica spent
        replica = request.backup_replica
        if replica is None or replica in request.attempts:
            return
        self.hedges_issued += 1
        if self._tracer is not None:
            self._tracer.instant(
                "aggregator.hedge_issued", track=_TRACK,
                qid=pending.query.query_id, shard=shard_id, replica=replica,
            )
            self._m_hedges.add()
        self._launch(pending, request, replica, "hedge", at_ms=None)

    # ---------------------------------------------------------------- results
    def _on_isn_done(
        self,
        pending: _PendingQuery,
        shard_id: int,
        replica_id: int,
        job: Job,
        completed: bool,
        busy_ms: float,
    ) -> None:
        request = pending.requests[shard_id]
        attempt = request.attempts[replica_id]
        attempt.done = True
        isn = self.groups[shard_id][replica_id]
        partial_docs = job.result.cost.docs_evaluated
        service = isn.cost_model.service_ms(job.result.cost, job.freq_ghz)
        if not completed and service > 0:
            partial_docs = int(round(partial_docs * min(busy_ms / service, 1.0)))
        if job.cancelled:
            partial_docs = 0
            self.cancelled_in_queue += 1
        pending.outcomes[(shard_id, replica_id)] = ShardOutcome(
            shard_id=shard_id,
            service_ms=busy_ms,
            queued_ms=max(job.started_ms - attempt.issued_ms, 0.0),
            freq_ghz=job.freq_ghz,
            completed=completed,
            counted=False,
            docs_evaluated=partial_docs,
            replica_id=replica_id,
            role=attempt.role,
            cancelled=job.cancelled,
        )
        self.total_service_ms += busy_ms
        if completed:
            attempt.completed = True
            # Response travels back; count it on arrival.
            self.sim.schedule(
                self.network.delay_ms(),
                lambda p=pending, s=shard_id, r=replica_id, res=job.result: (
                    self._on_response(p, s, r, res)
                ),
            )
        else:
            self._give_up_if_dead(pending, request)

    def _give_up_if_dead(self, pending: _PendingQuery, request: _ShardRequest) -> None:
        """Stop waiting for a shard once no attempt can answer any more.

        A fail-silent (fault-dropped) attempt never reports back, so its
        ``done`` flag stays False and the shard stays expected — exactly
        the pre-replication semantics: the aggregator only learns about a
        dead ISN through its deadline or response timeout (unless a hedge
        is still to come and routes around it).
        """
        if request.won or pending.finalized:
            return
        if request.hedge_scheduled:
            return  # a backup may still be issued
        if any(
            request.attempts[rid].completed for rid in sorted(request.attempts)
        ):
            # Another attempt finished in time and its response is still on
            # the wire (e.g. a hedge that beat a primary aborting exactly at
            # the deadline): not dead — the response decides this shard.
            return
        if all(
            request.attempts[rid].done for rid in sorted(request.attempts)
        ):
            pending.expected.discard(request.shard_id)
            self._maybe_finalize(pending)

    def _on_response(
        self,
        pending: _PendingQuery,
        shard_id: int,
        replica_id: int,
        result: SearchResult,
    ) -> None:
        if pending.finalized:
            # Straggler: dropped at the aggregator (paper step 7).
            if self._tracer is not None:
                self._tracer.instant(
                    "aggregator.straggler_dropped", track=_TRACK,
                    qid=pending.query.query_id, shard=shard_id,
                )
                self._m_stragglers.add()
            return
        request = pending.requests[shard_id]
        if request.won:
            # The shard already answered through another replica (the
            # tied loser was in service when the recall arrived, or both
            # hedge and primary completed): exactly-once merge drops it.
            self.duplicates_dropped += 1
            if self._tracer is not None:
                self._tracer.instant(
                    "aggregator.duplicate_dropped", track=_TRACK,
                    qid=pending.query.query_id, shard=shard_id,
                    replica=replica_id,
                )
                self._m_duplicates.add()
            return
        request.won = True
        request.winner_replica = replica_id
        if request.attempts[replica_id].role == "hedge":
            self.hedge_wins += 1
            if self._tracer is not None:
                self._m_hedge_wins.add()
        pending.responses[shard_id] = result
        # Recall the losers: the cancel message takes one network hop and
        # only reaches jobs still queued (cancel-after-finish is a no-op).
        # Sorted so same-instant cancel deliveries tie-break identically
        # across runs.
        for other in sorted(
            request.attempts.values(), key=lambda a: a.replica_id
        ):
            if other.replica_id != replica_id and not other.done:
                self.cancels_sent += 1
                if self._tracer is not None:
                    self._m_cancels.add()
                self.sim.schedule(
                    self.network.delay_ms(),
                    lambda s=shard_id, a=other: self._deliver_cancel(s, a),
                )
        pending.expected.discard(shard_id)
        self._maybe_finalize(pending)

    def _deliver_cancel(self, shard_id: int, attempt: _Attempt) -> None:
        if attempt.done:
            return  # finished or aborted while the recall was in flight
        isn = self.groups[shard_id][attempt.replica_id]
        isn.cancel(attempt.job, self.sim)

    def _maybe_finalize(self, pending: _PendingQuery) -> None:
        if not pending.finalized and not pending.expected:
            self._finalize(pending)

    def _finalize(self, pending: _PendingQuery) -> None:
        if pending.finalized:
            return
        pending.finalized = True
        for sid in pending.responses:
            request = pending.requests[sid]
            outcome = pending.outcomes.get((sid, request.winner_replica))
            if outcome is not None:
                outcome.counted = True
                self.counted_service_ms += outcome.service_ms
        tracer = self._tracer
        if tracer is None:
            merged = merge_results(list(pending.responses.values()), self.k)
        else:
            with tracer.span(
                "aggregator.merge", track=_TRACK,
                qid=pending.query.query_id, responses=len(pending.responses),
            ):
                merged = merge_results(list(pending.responses.values()), self.k)
        if self.cache is not None:
            self.cache.put(pending.query.terms, self.k, merged, self.sim.now)
        if pending.span is not None:
            latency = self.sim.now - pending.arrival_ms
            self._m_latency.observe(latency)
            budget = pending.decision.time_budget_ms
            if budget is not None:
                # How much of the broadcast budget (plus the return trip
                # the finalize event waits for) was left when the query
                # actually answered — 0 when the deadline itself fired.
                return_deadline = (
                    pending.dispatch_ms + budget + self.network.delay_ms() + 1e-6
                )
                self._m_slack.observe(max(return_deadline - self.sim.now, 0.0))
            pending.span.attrs["latency_ms"] = latency
            pending.span.attrs["counted"] = len(pending.responses)
            pending.span.finish()
        record = QueryRecord(
            query=pending.query,
            arrival_ms=pending.arrival_ms,
            latency_ms=self.sim.now - pending.arrival_ms,
            result=merged,
            decision=pending.decision,
            outcomes=sorted(
                pending.outcomes.values(),
                key=lambda o: (o.shard_id, o.replica_id),
            ),
        )
        self._commit(record)

    def _commit(self, record: QueryRecord) -> None:
        if self._record_sink is None:
            self.records.append(record)
        else:
            self._record_sink(record)
        if self.admission is not None and not record.shed:
            self.admission.on_finalize(record)
        if not record.shed:
            # Shed queries never reached the policy; showing them to
            # adaptive policies would poison their latency feedback.
            self.policy.observe(record)
