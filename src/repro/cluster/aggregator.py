"""The aggregator: policy consultation, dispatch, merge, budget enforcement.

Implements the paper's Fig. 5 control flow.  For coordinated policies the
predict-and-report round (steps 1-5) is charged as the decision's
``coordination_delay_ms``; dispatch then fans the query out, each selected
ISN executes within the broadcast budget, and the aggregator merges
whatever arrived by the deadline, dropping stragglers (step 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cache import ResultCache
from repro.cluster.events import Simulator
from repro.cluster.isn import ISNServer, Job
from repro.cluster.network import NetworkModel
from repro.cluster.types import (
    ClusterView,
    Decision,
    QueryRecord,
    SelectionPolicy,
    ShardOutcome,
)
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult, merge_results
from repro.telemetry import NO_TELEMETRY, Telemetry

_TRACK = "aggregator"


@dataclass
class _PendingQuery:
    """Aggregator-side state for one in-flight query."""

    query: Query
    arrival_ms: float
    decision: Decision
    dispatch_ms: float
    expected: set[int]
    responses: dict[int, SearchResult] = field(default_factory=dict)
    outcomes: dict[int, ShardOutcome] = field(default_factory=dict)
    finalized: bool = False
    span: object | None = None  # telemetry lifecycle span


class Aggregator:
    """Drives queries through the cluster under a selection policy."""

    def __init__(
        self,
        isns: list[ISNServer],
        policy: SelectionPolicy,
        network: NetworkModel,
        sim: Simulator,
        k: int,
        cache: ResultCache | None = None,
        response_timeout_ms: float | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        """``response_timeout_ms`` is the safety net for unbudgeted
        policies: with fail-silent ISNs in play, exhaustive-style "wait for
        everyone" would otherwise never answer."""
        if not isns:
            raise ValueError("cluster needs at least one ISN")
        if response_timeout_ms is not None and response_timeout_ms <= 0:
            raise ValueError("response timeout must be positive")
        self.isns = isns
        self.policy = policy
        self.network = network
        self.sim = sim
        self.k = k
        self.cache = cache
        self.response_timeout_ms = response_timeout_ms
        self.records: list[QueryRecord] = []
        self._default_freq = isns[0].freq_scale.default_ghz
        self._max_freq = isns[0].freq_scale.max_ghz
        # Telemetry: the tracer reference is None when disabled, so the
        # per-query hot path pays one attribute test and nothing else.
        telemetry = telemetry or NO_TELEMETRY
        self._tracer = telemetry.tracer if telemetry.enabled else None
        metrics = telemetry.metrics
        self._m_cache_hits = metrics.counter("aggregator.result_cache.hits")
        self._m_cache_misses = metrics.counter("aggregator.result_cache.misses")
        self._m_stragglers = metrics.counter("aggregator.stragglers_dropped")
        self._m_latency = metrics.histogram("aggregator.latency_ms")
        self._m_budget = metrics.histogram("aggregator.time_budget_ms")
        self._m_slack = metrics.histogram("aggregator.budget_slack_ms")
        self._m_selected = metrics.histogram("aggregator.selected_isns", lo=0.5, hi=1e4)

    # ---------------------------------------------------------------- intake
    def view(self) -> ClusterView:
        return ClusterView(
            now_ms=self.sim.now,
            n_shards=len(self.isns),
            default_freq_ghz=self._default_freq,
            max_freq_ghz=self._max_freq,
            queued_predicted_ms=tuple(
                isn.queued_work_default_ms for isn in self.isns
            ),
        )

    def on_query(self, query: Query) -> None:
        """Entry point, fired by the engine at the query's arrival time."""
        arrival = self.sim.now
        tracer = self._tracer
        qspan = None
        if tracer is not None:
            # Lifecycles overlap (queries are in flight concurrently), so
            # they are *async* spans — one Perfetto nestable track event
            # per query, arrival to response.
            qspan = tracer.async_span("query", track=_TRACK, qid=query.query_id)
        if self.cache is not None:
            cached = self.cache.get(query.terms, self.k, arrival)
            if cached is not None:
                if qspan is not None:
                    self._m_cache_hits.add()
                    qspan.attrs["from_cache"] = True
                    qspan.finish()
                record = QueryRecord(
                    query=query,
                    arrival_ms=arrival,
                    latency_ms=self.cache.lookup_ms,
                    result=cached,
                    decision=Decision(shard_ids=()),
                    from_cache=True,
                )
                self._commit(record)
                return
            if qspan is not None:
                self._m_cache_misses.add()
        if tracer is None:
            decision = self.policy.decide(query, self.view())
        else:
            # Policy-internal spans (predict, budget-assign) nest inside.
            with tracer.span("aggregator.decide", track=_TRACK, qid=query.query_id):
                decision = self.policy.decide(query, self.view())
        if not decision.shard_ids:
            # A policy that selects nothing answers immediately and empty.
            if qspan is not None:
                qspan.finish()
            record = QueryRecord(
                query=query,
                arrival_ms=arrival,
                latency_ms=decision.coordination_delay_ms,
                result=SearchResult(),
                decision=decision,
            )
            self._commit(record)
            return

        dispatch_delay = decision.coordination_delay_ms + self.network.delay_ms()
        dispatch_ms = arrival + dispatch_delay
        deadline = (
            dispatch_ms + decision.time_budget_ms
            if decision.time_budget_ms is not None
            else None
        )
        pending = _PendingQuery(
            query=query,
            arrival_ms=arrival,
            decision=decision,
            dispatch_ms=dispatch_ms,
            expected=set(decision.shard_ids),
            span=qspan,
        )
        if qspan is not None:
            self._m_selected.observe(len(decision.shard_ids))
            if decision.time_budget_ms is not None:
                self._m_budget.observe(decision.time_budget_ms)

        for sid in decision.shard_ids:
            isn = self.isns[sid]
            freq = decision.frequency_overrides.get(sid, self._default_freq)
            job = isn.make_job(
                query,
                freq_ghz=freq,
                deadline_ms=deadline,
                on_done=lambda job, ok, busy, p=pending, s=sid: self._on_isn_done(
                    p, s, job, ok, busy
                ),
            )
            self.sim.schedule_at(dispatch_ms, lambda i=isn, j=job: i.submit(j, self.sim))

        if deadline is not None:
            # Hard stop: merge whatever has arrived once responses from the
            # deadline could have travelled back.  The epsilon makes the
            # deadline inclusive: an ISN finishing exactly on the budget
            # would otherwise lose the same-timestamp tie against this
            # finalize event and be dropped.
            self.sim.schedule_at(
                deadline + self.network.delay_ms() + 1e-6,
                lambda p=pending: self._finalize(p),
            )
        elif self.response_timeout_ms is not None:
            # Unbudgeted policy: answer with whatever arrived by the safety
            # timeout (fail-silent ISNs never respond at all).
            self.sim.schedule_at(
                dispatch_ms + self.response_timeout_ms,
                lambda p=pending: self._finalize(p),
            )

    # ---------------------------------------------------------------- results
    def _on_isn_done(
        self, pending: _PendingQuery, shard_id: int, job: Job, completed: bool, busy_ms: float
    ) -> None:
        partial_docs = job.result.cost.docs_evaluated
        service = self.isns[shard_id].cost_model.service_ms(job.result.cost, job.freq_ghz)
        if not completed and service > 0:
            partial_docs = int(round(partial_docs * min(busy_ms / service, 1.0)))
        pending.outcomes[shard_id] = ShardOutcome(
            shard_id=shard_id,
            service_ms=busy_ms,
            queued_ms=max(job.started_ms - pending.dispatch_ms, 0.0),
            freq_ghz=job.freq_ghz,
            completed=completed,
            counted=False,
            docs_evaluated=partial_docs,
        )
        if completed:
            # Response travels back; count it on arrival.
            self.sim.schedule(
                self.network.delay_ms(),
                lambda p=pending, s=shard_id, r=job.result: self._on_response(p, s, r),
            )
        else:
            pending.expected.discard(shard_id)
            self._maybe_finalize(pending)

    def _on_response(
        self, pending: _PendingQuery, shard_id: int, result: SearchResult
    ) -> None:
        if pending.finalized:
            # Straggler: dropped at the aggregator (paper step 7).
            if self._tracer is not None:
                self._tracer.instant(
                    "aggregator.straggler_dropped", track=_TRACK,
                    qid=pending.query.query_id, shard=shard_id,
                )
                self._m_stragglers.add()
            return
        pending.responses[shard_id] = result
        pending.expected.discard(shard_id)
        self._maybe_finalize(pending)

    def _maybe_finalize(self, pending: _PendingQuery) -> None:
        if not pending.finalized and not pending.expected:
            self._finalize(pending)

    def _finalize(self, pending: _PendingQuery) -> None:
        if pending.finalized:
            return
        pending.finalized = True
        for sid in pending.responses:
            if sid in pending.outcomes:
                pending.outcomes[sid].counted = True
        tracer = self._tracer
        if tracer is None:
            merged = merge_results(list(pending.responses.values()), self.k)
        else:
            with tracer.span(
                "aggregator.merge", track=_TRACK,
                qid=pending.query.query_id, responses=len(pending.responses),
            ):
                merged = merge_results(list(pending.responses.values()), self.k)
        if self.cache is not None:
            self.cache.put(pending.query.terms, self.k, merged, self.sim.now)
        if pending.span is not None:
            latency = self.sim.now - pending.arrival_ms
            self._m_latency.observe(latency)
            budget = pending.decision.time_budget_ms
            if budget is not None:
                # How much of the broadcast budget (plus the return trip
                # the finalize event waits for) was left when the query
                # actually answered — 0 when the deadline itself fired.
                return_deadline = (
                    pending.dispatch_ms + budget + self.network.delay_ms() + 1e-6
                )
                self._m_slack.observe(max(return_deadline - self.sim.now, 0.0))
            pending.span.attrs["latency_ms"] = latency
            pending.span.attrs["counted"] = len(pending.responses)
            pending.span.finish()
        record = QueryRecord(
            query=pending.query,
            arrival_ms=pending.arrival_ms,
            latency_ms=self.sim.now - pending.arrival_ms,
            result=merged,
            decision=pending.decision,
            outcomes=sorted(pending.outcomes.values(), key=lambda o: o.shard_id),
        )
        self._commit(record)

    def _commit(self, record: QueryRecord) -> None:
        self.records.append(record)
        self.policy.observe(record)
