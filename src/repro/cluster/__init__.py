"""Cluster simulation substrate.

Replaces the paper's physical testbed (24-core Xeon, ACPI DVFS, RAPL) with
a discrete-event simulation: FIFO single-core ISNs with per-query frequency
scaling, an aggregator enforcing per-query time budgets, a data-center
network model, and a calibrated package power model.
"""

from repro.cluster.aggregator import Aggregator
from repro.cluster.cache import CacheStats, ResultCache
from repro.cluster.cpu import (
    CostModel,
    FrequencyScale,
    equivalent_latency_ms,
    scaled_service_ms,
)
from repro.cluster.engine import RunResult, SearchCluster
from repro.cluster.events import Simulator
from repro.cluster.faults import FaultSchedule, Outage, Slowdown
from repro.cluster.replicas import (
    DISPATCH_MODES,
    SELECTORS,
    LeastLoadedSelector,
    ReplicaSelector,
    ReplicationConfig,
    SeededSelector,
    StaticSelector,
    hedge_delay_ms,
    make_selector,
)
from repro.cluster.scenarios import (
    SCENARIOS,
    CellResult,
    MatrixCase,
    ScenarioContext,
    default_matrix,
    run_matrix,
    scenario_schedule,
)
from repro.cluster.sleep import SleepPolicy
from repro.cluster.governor import (
    GOVERNORS,
    AssignedFrequencyGovernor,
    FrequencyGovernor,
    RaceToIdleGovernor,
    SlackGovernor,
)
from repro.cluster.isn import ISNServer, Job
from repro.cluster.network import NetworkModel
from repro.cluster.power import EnergyMeter, PowerModel, PowerReport, package_report
from repro.cluster.types import (
    ClusterView,
    Decision,
    QueryRecord,
    SelectionPolicy,
    ShardOutcome,
)

__all__ = [
    "Simulator",
    "FrequencyScale",
    "CostModel",
    "scaled_service_ms",
    "equivalent_latency_ms",
    "PowerModel",
    "EnergyMeter",
    "PowerReport",
    "package_report",
    "NetworkModel",
    "ISNServer",
    "Job",
    "FrequencyGovernor",
    "AssignedFrequencyGovernor",
    "SlackGovernor",
    "RaceToIdleGovernor",
    "GOVERNORS",
    "ResultCache",
    "CacheStats",
    "FaultSchedule",
    "Outage",
    "Slowdown",
    "ReplicationConfig",
    "ReplicaSelector",
    "StaticSelector",
    "SeededSelector",
    "LeastLoadedSelector",
    "make_selector",
    "hedge_delay_ms",
    "DISPATCH_MODES",
    "SELECTORS",
    "SCENARIOS",
    "ScenarioContext",
    "MatrixCase",
    "CellResult",
    "scenario_schedule",
    "default_matrix",
    "run_matrix",
    "SleepPolicy",
    "Aggregator",
    "SearchCluster",
    "RunResult",
    "ClusterView",
    "Decision",
    "QueryRecord",
    "ShardOutcome",
    "SelectionPolicy",
]
