"""CPU frequency scaling and the query service-time model.

The paper's testbed scales each ISN core between 1.2 and 2.7 GHz via ACPI
and assumes search work is compute-bound, so service time is inversely
proportional to frequency (Eq. 1).  The cost model converts the retrieval
engine's work counters into CPU cycles; dividing by the selected frequency
yields service time.  Constants are calibrated so that the synthetic
workload's latencies land in the paper's 4-65 ms band at the default
frequency (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.retrieval.result import CostStats


@dataclass(frozen=True)
class FrequencyScale:
    """The discrete DVFS ladder of an ISN core.

    Defaults mirror the paper's Xeon E5-2697: 1.2-2.7 GHz; the maximum step
    is the "boosted" frequency Cottage uses to accelerate slow,
    high-quality ISNs.
    """

    levels_ghz: tuple[float, ...] = (1.2, 1.5, 1.8, 2.1, 2.4, 2.7)
    default_ghz: float = 2.1

    def __post_init__(self) -> None:
        if not self.levels_ghz:
            raise ValueError("need at least one frequency level")
        if any(b <= a for a, b in zip(self.levels_ghz, self.levels_ghz[1:])):
            raise ValueError("levels must be strictly increasing")
        if self.default_ghz not in self.levels_ghz:
            raise ValueError("default frequency must be one of the levels")

    @property
    def min_ghz(self) -> float:
        return self.levels_ghz[0]

    @property
    def max_ghz(self) -> float:
        return self.levels_ghz[-1]

    def clamp(self, freq_ghz: float) -> float:
        """Snap an arbitrary request to the nearest available level at or
        above it (DVFS governors round up to meet deadlines)."""
        for level in self.levels_ghz:
            if level >= freq_ghz - 1e-12:
                return level
        return self.max_ghz

    @property
    def boost_ratio(self) -> float:
        """Speedup available by boosting from default to max frequency."""
        return self.max_ghz / self.default_ghz


@dataclass(frozen=True)
class CostModel:
    """Converts retrieval work into CPU cycles and service time.

    ``cycles = fixed + docs * cycles_per_doc + scored * cycles_per_posting
    + skipped * cycles_per_skip``.  Scoring a posting is cheap; the per-
    document cost (heap operations, doc lookup, cache misses) dominates,
    which is why service time tracks documents evaluated — the same
    proportionality the paper leans on ("a query's service time at an ISN
    is roughly proportional to the length of its posting list").
    """

    cycles_per_doc: float = 700_000.0
    cycles_per_posting: float = 90_000.0
    cycles_per_skip: float = 7_000.0
    fixed_cycles: float = 4_000_000.0

    def cycles(self, cost: CostStats) -> float:
        return (
            self.fixed_cycles
            + cost.docs_evaluated * self.cycles_per_doc
            + cost.postings_scored * self.cycles_per_posting
            + cost.postings_skipped * self.cycles_per_skip
        )

    def service_ms(self, cost: CostStats, freq_ghz: float) -> float:
        """Service time in milliseconds at the given core frequency."""
        if freq_ghz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles(cost) / (freq_ghz * 1e6)


def scaled_service_ms(
    predicted_default_ms: float, default_ghz: float, freq_ghz: float
) -> float:
    """Paper Eq. (1): S_i = S_i^Predict * f_default / f."""
    if freq_ghz <= 0:
        raise ValueError("frequency must be positive")
    return predicted_default_ms * default_ghz / freq_ghz


def equivalent_latency_ms(
    queued_predicted_default_ms: float,
    predicted_default_ms: float,
    default_ghz: float,
    freq_ghz: float,
) -> float:
    """Queue-aware latency at frequency ``f`` (paper Eq. 2, adapted).

    The paper's Eq. 2 divides the *entire* backlog by ``f`` — correct when
    boosting retunes the whole core until the queue drains.  This
    simulator's ISNs choose a frequency per job, so the queued work runs
    at its own (default) frequency and only the new request's service
    scales:  ``S* = queue_default + S^Predict * f_default / f``.  Using
    the literal Eq. 2 here systematically underestimates boosted
    latencies under load and turns kept ISNs into deadline misses (caught
    by the oracle-policy test: perfect predictions still lost quality).
    """
    return queued_predicted_default_ms + scaled_service_ms(
        predicted_default_ms, default_ghz, freq_ghz
    )
