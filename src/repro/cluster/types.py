"""Shared cluster datatypes: policy decisions, cluster views, query records.

These sit at the boundary between the simulator (:mod:`repro.cluster`) and
the selection policies (:mod:`repro.policies`, :mod:`repro.core`): the
aggregator hands a policy a :class:`ClusterView`, the policy returns a
:class:`Decision`, and each finished query yields a :class:`QueryRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult


@dataclass(frozen=True)
class ClusterView:
    """What a policy may observe when deciding (global aggregator view).

    ``queued_predicted_ms`` is each ISN's backlog of *predicted* service
    time at the default frequency — the queue term of the paper's
    equivalent latency (Eq. 2).
    """

    now_ms: float
    n_shards: int
    default_freq_ghz: float
    max_freq_ghz: float
    queued_predicted_ms: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.queued_predicted_ms) != self.n_shards:
            raise ValueError("queue vector length must equal n_shards")


@dataclass(frozen=True)
class Decision:
    """A policy's verdict for one query.

    Attributes
    ----------
    shard_ids:
        ISNs that will execute the query (order irrelevant).
    time_budget_ms:
        Deadline measured from dispatch; ``None`` waits for every selected
        ISN (exhaustive semantics).
    frequency_overrides:
        Per-shard core frequency for this query; shards absent run at the
        ISN's default frequency.
    coordination_delay_ms:
        Aggregator-side decision latency to charge before dispatch (e.g.
        Cottage's predict-and-report round, Rank-S's CSI search).
    predicted_service_ms:
        The policy's latency predictor's per-shard service-time estimate
        (default-frequency ms, queue excluded).  Optional; when present
        the aggregator's hedge planner derives the hedge delay from it
        instead of from the oracle service time (see
        :func:`repro.cluster.replicas.hedge_delay_ms`).
    """

    shard_ids: tuple[int, ...]
    time_budget_ms: float | None = None
    frequency_overrides: dict[int, float] = field(default_factory=dict)
    coordination_delay_ms: float = 0.0
    predicted_service_ms: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.shard_ids)) != len(self.shard_ids):
            raise ValueError("shard_ids must be unique")
        if self.time_budget_ms is not None and self.time_budget_ms <= 0:
            raise ValueError("time budget must be positive")
        if self.coordination_delay_ms < 0:
            raise ValueError("coordination delay must be non-negative")
        for sid in self.frequency_overrides:
            if sid not in self.shard_ids:
                raise ValueError("frequency override for unselected shard")
        for sid, predicted in self.predicted_service_ms.items():
            if sid not in self.shard_ids:
                raise ValueError("service prediction for unselected shard")
            if predicted < 0:
                raise ValueError("predicted service time must be non-negative")


@dataclass
class ShardOutcome:
    """What happened on one dispatch attempt (one ISN replica, one query).

    With replication a query may spawn several attempts per shard
    (primary + hedge, or a tied pair); each gets its own outcome.
    ``role`` records why the attempt was issued and ``cancelled`` marks a
    tied/hedged loser recalled while still queued (zero work spent).
    """

    shard_id: int
    service_ms: float = 0.0
    queued_ms: float = 0.0
    freq_ghz: float = 0.0
    completed: bool = False
    counted: bool = False  # response arrived in time and was merged
    docs_evaluated: int = 0
    replica_id: int = 0
    role: str = "primary"  # primary | hedge | tied
    cancelled: bool = False


@dataclass
class QueryRecord:
    """Full per-query outcome from a simulated run.

    ``latency_ms`` is client-observed (arrival to aggregator response).
    ``result`` holds the merged hits actually returned; quality metrics are
    computed later against exhaustive ground truth.
    """

    query: Query
    arrival_ms: float
    latency_ms: float
    result: SearchResult
    decision: Decision
    outcomes: list[ShardOutcome] = field(default_factory=list)
    from_cache: bool = False
    #: Rejected by admission control before any ISN was touched (the
    #: serving plane's load shedding); the result is empty and the
    #: latency is the fast-reject reply time.
    shed: bool = False

    @property
    def n_selected(self) -> int:
        return len(self.decision.shard_ids)

    @property
    def n_counted(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.counted)

    @property
    def n_dropped_shards(self) -> int:
        """Selected shards that contributed nothing to the merged answer.

        The quality-loss accounting unit: every dropped shard removes its
        (potential) top-K contribution from the response.  With replicas,
        a shard counts as answered if *any* of its attempts was merged.
        """
        answered = {o.shard_id for o in self.outcomes if o.counted}
        return sum(1 for sid in self.decision.shard_ids if sid not in answered)

    @property
    def wasted_service_ms(self) -> float:
        """Busy time spent on attempts whose response was not merged —
        hedged/tied losers, deadline aborts, post-finalize stragglers."""
        return sum(o.service_ms for o in self.outcomes if not o.counted)

    @property
    def docs_searched(self) -> int:
        """C_RES: documents evaluated across the ISNs used for this query."""
        return sum(outcome.docs_evaluated for outcome in self.outcomes)


@runtime_checkable
class SelectionPolicy(Protocol):
    """What the aggregator requires of a policy.

    ``decide`` picks ISNs/budget/frequencies for one query; ``observe`` is
    called with each finished record (adaptive policies such as the
    epoch-based aggregation baseline learn their budget from it);
    ``prewarm`` gives the policy the whole trace up front so pure,
    memoized per-query work (e.g. predictor inference) can run batched.
    """

    name: str

    def decide(self, query: Query, view: ClusterView) -> Decision:
        ...

    def observe(self, record: QueryRecord) -> None:
        ...

    def prewarm(self, queries: list[Query]) -> None:
        ...
