"""Discrete-event simulation core.

A minimal but complete event loop: schedule callbacks at future simulated
times, run until drained.  All cluster timing (queueing, service, network,
budget expiry) is built on this.
Times are milliseconds throughout the cluster package — the natural unit of
web-search latencies.
"""

from __future__ import annotations

import heapq
from typing import Callable


class Simulator:
    """Event-driven clock.

    Events scheduled for the same instant fire in scheduling order (a
    monotonic sequence number breaks ties), which keeps runs fully
    deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay_ms`` simulated milliseconds from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay_ms, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``."""
        self.schedule(max(time_ms - self.now, 0.0), callback)

    def run(self, until_ms: float | None = None) -> None:
        """Drain the event queue (optionally stopping at ``until_ms``)."""
        while self._heap:
            time, _, callback = self._heap[0]
            if until_ms is not None and time > until_ms:
                self.now = until_ms
                return
            heapq.heappop(self._heap)
            self.now = time
            self._events_processed += 1
            callback()

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed
