"""Discrete-event simulation core.

A minimal but complete event loop: schedule callbacks at future simulated
times, run until drained.  All cluster timing (queueing, service, network,
budget expiry) is built on this.
Times are milliseconds throughout the cluster package — the natural unit of
web-search latencies.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


class Simulator:
    """Event-driven clock.

    Events scheduled for the same instant fire in scheduling order (a
    monotonic sequence number breaks ties), which keeps runs fully
    deterministic.

    ``telemetry`` (optional) receives the loop's own counters — most
    importantly the :meth:`schedule_at` past-time clamp (see below).
    """

    def __init__(self, telemetry: "Telemetry | None" = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        self._clamped_schedules = 0
        self._clamp_counter = (
            telemetry.metrics.counter("sim.schedule_at.clamped")
            if telemetry is not None and telemetry.enabled
            else None
        )

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay_ms`` simulated milliseconds from now."""
        if delay_ms < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay_ms, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``time_ms``.

        **Clamp policy:** a ``time_ms`` already in the past runs *now*
        (at ``self.now``), after all previously scheduled same-instant
        events.  This is deliberate — callers schedule at computed
        absolute times (trace arrivals, dispatch instants, deadlines)
        and a sub-epsilon rounding below ``now`` must not crash the
        run — but it is never silent: each clamp increments
        :attr:`clamped_schedules` and, when the simulator was built
        with telemetry, the ``sim.schedule_at.clamped`` counter.  A
        clamp during a trace replay indicates a timing bug upstream
        (e.g. an unsorted trace), so tests and experiments can assert
        the counter stayed zero.
        """
        delay = time_ms - self.now
        if delay < 0.0:
            delay = 0.0
            self._clamped_schedules += 1
            if self._clamp_counter is not None:
                self._clamp_counter.add()
        self.schedule(delay, callback)

    def run(self, until_ms: float | None = None) -> None:
        """Drain the event queue (optionally stopping at ``until_ms``)."""
        while self._heap:
            time, _, callback = self._heap[0]
            if until_ms is not None and time > until_ms:
                self.now = until_ms
                return
            heapq.heappop(self._heap)
            self.now = time
            self._events_processed += 1
            callback()

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def clamped_schedules(self) -> int:
        """How often :meth:`schedule_at` clamped a past time to now."""
        return self._clamped_schedules
