"""Data-center network model.

The paper notes that aggregator<->ISN round trips are "a few microseconds"
against tens-of-milliseconds service times, so a simple latency+bandwidth
model is faithful: Cottage's extra coordination round costs two message
delays plus predictor inference, and that overhead must stay negligible for
the reproduction to be honest about it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """One-way message delay between the aggregator and an ISN."""

    base_delay_ms: float = 0.05
    bandwidth_gbps: float = 10.0

    def __post_init__(self) -> None:
        if self.base_delay_ms < 0:
            raise ValueError("base delay must be non-negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")

    def delay_ms(self, payload_bytes: int = 256) -> float:
        """One-way delay for a message of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        transfer_ms = payload_bytes * 8 / (self.bandwidth_gbps * 1e6)
        return self.base_delay_ms + transfer_ms

    def rtt_ms(self, payload_bytes: int = 256) -> float:
        return 2.0 * self.delay_ms(payload_bytes)
