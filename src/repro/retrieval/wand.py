"""WAND dynamic pruning (Broder et al., CIKM'03).

WAND keeps the query's cursors sorted by their current document and walks a
*pivot*: the first cursor at which the running sum of upper bounds reaches
the top-K threshold.  Documents before the pivot cannot enter the top-K, so
all lagging cursors jump straight to the pivot document.
"""

from __future__ import annotations

from repro.index.postings import END_OF_LIST
from repro.index.shard import IndexShard
from repro.retrieval.maxscore import _prepare_cursors
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector


def wand_search(shard: IndexShard, terms: list[str], k: int) -> SearchResult:
    """Top-k disjunctive evaluation with WAND pruning."""
    if k < 1:
        raise ValueError("k must be positive")
    cursors = _prepare_cursors(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not cursors:
        return SearchResult(hits=[], cost=cost)

    while True:
        cursors.sort(key=lambda c: c.doc())
        if cursors[0].doc() == END_OF_LIST:
            break
        threshold = collector.threshold()

        # Find the pivot: first index where cumulative bounds can tie the bar.
        acc = 0.0
        pivot_idx = -1
        for i, cursor in enumerate(cursors):
            if cursor.doc() == END_OF_LIST:
                break
            acc += cursor.upper_bound
            if acc >= threshold:
                pivot_idx = i
                break
        if pivot_idx < 0:
            break  # no document can reach the threshold any more
        pivot_doc = cursors[pivot_idx].doc()

        if cursors[0].doc() == pivot_doc:
            # All cursors at or before the pivot sit on pivot_doc: score it.
            score = 0.0
            for cursor in cursors:
                if cursor.doc() != pivot_doc:
                    break
                score += cursor.score()
                cost.postings_scored += 1
                cursor.next()
            cost.docs_evaluated += 1
            collector.offer(pivot_doc, score)
        else:
            # Advance the most-lagging cursor up to the pivot document.
            cursor = cursors[0]
            before = cursor.position
            cursor.next_geq(pivot_doc)
            cost.postings_skipped += cursor.position - before

    return SearchResult(hits=collector.results(), cost=cost)
