"""Bounded top-K collection with a deterministic tie-break."""

from __future__ import annotations

import heapq


class TopKCollector:
    """Min-heap top-K collector.

    Ties on score are broken toward smaller document ids, so results are
    fully deterministic regardless of insertion order — essential for
    comparing evaluation strategies bit-for-bit in tests.

    The heap stores ``(score, -doc_id)``: the root is the entry that loses
    first (lowest score; among equals, the largest doc id).
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self._heap: list[tuple[float, int]] = []

    def offer(self, doc_id: int, score: float) -> bool:
        """Offer a candidate; return True if it entered the top-K."""
        entry = (score, -doc_id)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def threshold(self) -> float:
        """Current entry bar: a candidate must beat this score to matter.

        Returns -inf until the heap is full, so pruning strategies know
        nothing can be skipped yet.
        """
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def offer_all(self, hits: "list[tuple[int, float]]") -> None:
        """Offer an already-ranked hit list, e.g. one shard's top-k.

        Insertion order cannot affect the final ``results()`` — the
        collector's total order ``(-score, doc id)`` decides — which is
        what lets the distributed merge accept per-shard lists in any
        completion order and stay deterministic.
        """
        for doc_id, score in hits:
            self.offer(doc_id, score)

    def would_enter(self, score: float) -> bool:
        """Whether ``score`` could enter regardless of doc id.

        Used by pruning: admissible skipping must keep any candidate whose
        score *ties* the threshold, because the tie-break could favour it.
        """
        return len(self._heap) < self.k or score >= self._heap[0][0]

    def results(self) -> list[tuple[int, float]]:
        """Final hits as (doc_id, score), best first."""
        ordered = sorted(self._heap, reverse=True)
        return [(-neg_doc, score) for score, neg_doc in ordered]

    def __len__(self) -> int:
        return len(self._heap)
