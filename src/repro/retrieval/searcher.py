"""Per-shard search façade and the distributed searcher.

``ShardSearcher`` is what an ISN runs; ``DistributedSearcher`` is the pure
retrieval view of the whole cluster (broadcast + merge) without any timing —
the cluster simulator layers queueing, frequencies and budgets on top of it.
Both are safe to drive from a ``ShardExecutor`` thread pool: the memo cache
guarantees exactly-once evaluation per key without locking the hit path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

from repro.index.shard import IndexShard
from repro.retrieval.block_max_wand import block_max_wand_search
from repro.retrieval.conjunctive import conjunctive_search
from repro.retrieval.executor import SerialExecutor, ShardExecutor
from repro.retrieval.exhaustive import exhaustive_search, exhaustive_search_daat
from repro.retrieval.kernels import (
    KernelStats,
    block_max_wand_search_kernel,
    conjunctive_search_kernel,
    maxscore_search_kernel,
    wand_search_kernel,
)
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult, merge_results
from repro.retrieval.wand import wand_search
from repro.telemetry import Telemetry
from repro.telemetry.metrics import Counter
from repro.telemetry.trace import Tracer

STRATEGIES: dict[str, Callable[[IndexShard, list[str], int], SearchResult]] = {
    "exhaustive": exhaustive_search,
    "exhaustive_daat": exhaustive_search_daat,
    # The pruning strategies dispatch to the vectorized arena kernels;
    # the cursor-based evaluators stay registered as *_reference — they
    # are the bit-identity ground truth the kernels are tested against.
    "maxscore": maxscore_search_kernel,
    "maxscore_reference": maxscore_search,
    "wand": wand_search_kernel,
    "wand_reference": wand_search,
    "block_max_wand": block_max_wand_search_kernel,
    "block_max_wand_reference": block_max_wand_search,
    "conjunctive": conjunctive_search_kernel,
    "conjunctive_reference": conjunctive_search,
}

#: Strategies implemented in :mod:`repro.retrieval.kernels` — they accept
#: a ``stats=KernelStats()`` kwarg for telemetry instrumentation.
KERNEL_STRATEGIES = frozenset(
    {"maxscore", "wand", "block_max_wand", "conjunctive"}
)

CacheKey = tuple[tuple[str, ...], int, str]


@dataclass(frozen=True)
class StrategyChoice:
    """One dispatch decision: which traversal to run for one (query, shard).

    ``None`` fields fall back to the searcher's configured default, so
    ``StrategyChoice("wand")`` only swaps the strategy and
    ``StrategyChoice("maxscore", min_postings=0)`` forces the vectorized
    MaxScore kernel regardless of posting count.  ``min_postings`` is the
    kernel's scalar-dispatch floor: both sides of that floor are
    bit-identical by contract, so it deliberately does **not** enter the
    memo cache key — only ``strategy`` and ``k`` can change observable
    results.
    """

    strategy: str | None = None
    k: int | None = None
    min_postings: int | None = None

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; options: {sorted(STRATEGIES)}"
            )
        if self.k is not None and self.k < 1:
            raise ValueError("k override must be positive")
        if self.min_postings is not None and self.min_postings < 0:
            raise ValueError("min_postings override must be non-negative")


@runtime_checkable
class StrategySelector(Protocol):
    """Per-(query, shard) traversal selection — the adaptive dispatch hook.

    ``choose`` runs at aggregator dispatch time, *after* the selection
    policy decided the query's time budget, so a budget-aware selector
    can downshift to a cheaper traversal when the budget is tight.
    ``budget_ms`` is ``None`` for unbudgeted policies (and during
    prewarming, where no budget exists yet).  Returning ``None`` keeps
    the searcher's static default — an always-``None`` selector is
    bit-identical to running without one.

    Implementations must be **pure and deterministic** per
    ``(query.terms, shard_id, budget_ms)``: the same inputs must yield
    the same choice on every call (the memo caches and the replica plane
    both rely on it).
    """

    name: str

    def choose(
        self, query: Query, shard_id: int, budget_ms: float | None
    ) -> StrategyChoice | None:
        ...


@dataclass(frozen=True)
class FixedSelector:
    """Selects one fixed :class:`StrategyChoice` for every (query, shard).

    The simplest selector — used to force a single strategy through the
    full dispatch path (benchmarks' static arms, bit-identity tests).
    """

    choice: StrategyChoice
    name: str = "fixed"

    def choose(
        self, query: Query, shard_id: int, budget_ms: float | None
    ) -> StrategyChoice | None:
        return self.choice


@dataclass(frozen=True)
class SearcherCacheStats:
    """Memo-cache counters for one ``ShardSearcher``.

    ``computations`` and ``size`` are exact (only a key's owner thread
    increments them).  ``hits`` is maintained with plain unlocked
    increments so the hit path stays lock-free; under heavy thread races
    it can undercount, never overcount.
    """

    hits: int
    computations: int
    size: int


class _Pending:
    """In-flight computation other threads can wait on (exactly-once)."""

    __slots__ = ("_event", "result", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: SearchResult | None = None
        self.error: BaseException | None = None

    def publish(self, result: SearchResult | None, error: BaseException | None) -> None:
        self.result = result
        self.error = error
        self._event.set()

    def wait(self) -> SearchResult:
        self._event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class ShardSearcher:
    """Executes queries on one shard with a fixed strategy and k.

    Results are memoized: trace replay repeats popular queries many
    times, and re-running retrieval for each occurrence would dominate
    simulation time without changing any outcome (the index is
    immutable).  The memo key is ``(terms, k, strategy)`` — not terms
    alone — so a searcher whose ``k`` or ``strategy`` is changed between
    calls can never serve a stale, differently-truncated result.

    Thread safety: the cache is written through a per-key in-flight
    registry, so concurrent misses on the same key compute **exactly
    once** (losers block until the owner publishes) while the hit path
    stays a single lock-free ``dict.get``.
    """

    def __init__(self, shard: IndexShard, k: int = 10, strategy: str = "maxscore") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; options: {sorted(STRATEGIES)}"
            )
        self.shard = shard
        self.k = k
        self.strategy = strategy
        self._search = STRATEGIES[strategy]
        self._cache: dict[CacheKey, SearchResult] = {}
        self._pending: dict[CacheKey, _Pending] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._computations = 0
        # Telemetry, rebound per run (see bind_telemetry).  Spans are only
        # emitted from the binding thread so a parallel prewarm cannot
        # interleave begin/end events on one track; the counters use plain
        # unlocked adds everywhere (they can undercount under races,
        # never overcount — the same contract as the memo-cache hits).
        self._tracer: Tracer | None = None
        self._telemetry_thread: int = 0
        self._m_chunks: Counter | None = None
        self._m_offers: Counter | None = None
        self._m_restarts: Counter | None = None

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a run's telemetry session to subsequent kernel calls."""
        if telemetry.enabled:
            self._tracer = telemetry.tracer
            self._telemetry_thread = threading.get_ident()
            metrics = telemetry.metrics
            self._m_chunks = metrics.counter("retrieval.kernel.chunks")
            self._m_offers = metrics.counter("retrieval.kernel.offers")
            self._m_restarts = metrics.counter(
                "retrieval.kernel.threshold_restarts"
            )
        else:
            self._tracer = None
            self._m_chunks = self._m_offers = self._m_restarts = None

    def cache_key(self, query: Query, choice: StrategyChoice | None = None) -> CacheKey:
        if choice is None:
            return (query.terms, self.k, self.strategy)
        return (
            query.terms,
            choice.k if choice.k is not None else self.k,
            choice.strategy if choice.strategy is not None else self.strategy,
        )

    def is_cached(self, query: Query, choice: StrategyChoice | None = None) -> bool:
        return self.cache_key(query, choice) in self._cache

    @property
    def cache_stats(self) -> SearcherCacheStats:
        return SearcherCacheStats(
            hits=self._hits,
            computations=self._computations,
            size=len(self._cache),
        )

    def search(self, query: Query, choice: StrategyChoice | None = None) -> SearchResult:
        """Evaluate ``query``, optionally under a per-call dispatch ``choice``.

        ``choice`` overrides strategy/k for this call only (the memo key
        follows, so an overridden call can never collide with the default
        key) — the hook adaptive selectors dispatch through.  ``None`` is
        byte-for-byte the static path.
        """
        key = self.cache_key(query, choice)
        cached = self._cache.get(key)  # lock-free hot path
        if cached is not None:
            self._hits += 1
            return cached
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            pending = self._pending.get(key)
            if pending is None:
                pending = self._pending[key] = _Pending()
                owner = True
            else:
                owner = False
        if not owner:
            return pending.wait()
        strategy = STRATEGIES[key[2]]
        try:
            result = self._evaluate(strategy, key, query, choice)
        except BaseException as exc:
            pending.publish(None, exc)
            with self._lock:
                self._pending.pop(key, None)
            raise
        # Publish to the cache before waking waiters so every later
        # lookup (including theirs) sees the same object.
        self._cache[key] = result
        self._computations += 1
        pending.publish(result, None)
        with self._lock:
            self._pending.pop(key, None)
        return result

    def _evaluate(
        self,
        strategy: Callable[[IndexShard, list[str], int], SearchResult],
        key: CacheKey,
        query: Query,
        choice: StrategyChoice | None = None,
    ) -> SearchResult:
        """Run the strategy, recording kernel telemetry when bound.

        Kernel executions get a ``retrieval.kernel`` span on the shard's
        ``retrieval.<id>`` track plus chunk/offer/restart counters;
        everything is skipped (one attribute test) when telemetry is off.
        A ``choice`` carrying ``min_postings`` forwards it to the MaxScore
        kernel (the only strategy with a scalar-dispatch floor); both
        sides of the floor are bit-identical, so the memo key ignores it.
        """
        extra: dict[str, int] = {}
        if (
            choice is not None
            and choice.min_postings is not None
            and key[2] == "maxscore"
        ):
            extra["min_postings"] = choice.min_postings
        tracer = self._tracer
        if tracer is None or key[2] not in KERNEL_STRATEGIES:
            return strategy(self.shard, list(query.terms), key[1], **extra)
        kstats = KernelStats()
        if threading.get_ident() == self._telemetry_thread:
            with tracer.span(
                "retrieval.kernel",
                track=f"retrieval.{self.shard.shard_id}",
                strategy=key[2], k=key[1], n_terms=len(query.terms),
            ) as span:
                result = strategy(
                    self.shard, list(query.terms), key[1], stats=kstats, **extra
                )
                span.attrs["chunks"] = kstats.chunks
                span.attrs["offers"] = kstats.offers
        else:
            result = strategy(
                self.shard, list(query.terms), key[1], stats=kstats, **extra
            )
        # The counters are bound iff the tracer is (see bind_telemetry).
        assert (
            self._m_chunks is not None
            and self._m_offers is not None
            and self._m_restarts is not None
        )
        self._m_chunks.add(kstats.chunks)
        self._m_offers.add(kstats.offers)
        self._m_restarts.add(kstats.threshold_restarts)
        return result

    def seed(
        self,
        query: Query,
        result: SearchResult,
        choice: StrategyChoice | None = None,
    ) -> None:
        """Install an externally computed result under ``query``'s key.

        Used by remote executors: a worker process ran the search against
        its own attached copy of this searcher's shard, and the parent
        adopts the result so replay here is pure cache hits.  Seeding
        counts as a computation — the work happened, just elsewhere — so
        cache-stat totals match the local execution paths.  First write
        wins, same as the memo contract.
        """
        key = self.cache_key(query, choice)
        with self._lock:
            if key not in self._cache:
                self._cache[key] = result
                self._computations += 1

    def search_terms(self, terms: list[str]) -> SearchResult:
        return self.search(Query(query_id=-1, terms=tuple(dict.fromkeys(terms))))


class DistributedSearcher:
    """Timing-free distributed retrieval: broadcast to shards, merge top-k.

    This is the ground-truth engine: ``search`` over all shards gives the
    exhaustive result that defines P@K and per-ISN quality labels.  The
    fan-out runs through ``executor`` (serial by default); the merged
    result is bit-identical for every executor because per-shard results
    come back in submission order and the merge orders hits by the total
    key ``(-score, doc_id)``.
    """

    def __init__(
        self,
        shards: list[IndexShard],
        k: int = 10,
        strategy: str = "maxscore",
        executor: ShardExecutor | None = None,
    ) -> None:
        self.k = k
        self.executor = executor or SerialExecutor()
        self.searchers = [ShardSearcher(shard, k=k, strategy=strategy) for shard in shards]

    @property
    def n_shards(self) -> int:
        return len(self.searchers)

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Forward a run's telemetry session to every shard searcher."""
        for searcher in self.searchers:
            searcher.bind_telemetry(telemetry)

    def search_shard(
        self, shard_id: int, query: Query, choice: StrategyChoice | None = None
    ) -> SearchResult:
        return self.searchers[shard_id].search(query, choice)

    def search(
        self,
        query: Query,
        shard_ids: list[int] | None = None,
        selector: StrategySelector | None = None,
    ) -> SearchResult:
        """Search a subset of shards (default: all) and merge.

        With a remote executor the fan-out ships picklable
        ``ShardSearchTask`` descriptors instead of closures; workers
        attach the shards via mmap/shared memory and the parent seeds the
        results into its memo caches, so repeats are local cache hits and
        the merged result is bit-identical to every local backend.

        ``selector`` picks a per-shard :class:`StrategyChoice` (consulted
        with no budget — this is the timing-free view); ``None`` is the
        static default on every shard.
        """
        if shard_ids is None:
            shard_ids = list(range(self.n_shards))
        choices: dict[int, StrategyChoice | None] = {
            sid: selector.choose(query, sid, None) if selector is not None else None
            for sid in shard_ids
        }
        if self.executor.remote:
            return self._search_remote(query, shard_ids, choices)
        per_shard = self.executor.map(
            [
                lambda s=self.searchers[sid], c=choices[sid]: s.search(query, c)
                for sid in shard_ids
            ]
        )
        return merge_results(per_shard, self.k)

    def _search_remote(
        self,
        query: Query,
        shard_ids: list[int],
        choices: dict[int, StrategyChoice | None],
    ) -> SearchResult:
        from repro.retrieval.executor import ShardSearchTask

        per_shard: list[SearchResult | None] = [None] * len(shard_ids)
        tasks: list[ShardSearchTask] = []
        misses: list[int] = []
        for position, sid in enumerate(shard_ids):
            searcher = self.searchers[sid]
            choice = choices.get(sid)
            if searcher.is_cached(query, choice):
                per_shard[position] = searcher.search(query, choice)
                continue
            key = searcher.cache_key(query, choice)
            tasks.append(
                ShardSearchTask(
                    spec=self.executor.spec_for(searcher.shard),  # type: ignore[attr-defined]
                    terms=query.terms,
                    k=key[1],
                    strategy=key[2],
                )
            )
            misses.append(position)
        if tasks:
            for position, result in zip(misses, self.executor.map(tasks)):
                sid = shard_ids[position]
                searcher = self.searchers[sid]
                choice = choices.get(sid)
                searcher.seed(query, result, choice)
                # Read back through the memo so concurrent seeders agree
                # on one canonical object (first write wins).
                per_shard[position] = searcher.search(query, choice)
        return merge_results(per_shard, self.k)

    def cache_stats(self) -> list[SearcherCacheStats]:
        """Per-shard memo counters, in shard order."""
        return [searcher.cache_stats for searcher in self.searchers]

    def shard_contributions(self, query: Query, k: int | None = None) -> dict[int, int]:
        """Per-shard document counts in the global top-k (quality labels).

        This is the paper's definition of an ISN's quality: "the number of
        documents it reports that will be included in the final top-K
        results".

        One search per shard feeds both the per-shard contribution sets
        and the global merge.  A document that more than one shard could
        claim (impossible under disjoint partitioning, where every doc id
        lives on exactly one shard) is attributed to the **lowest shard
        id** — a deterministic "first shard wins" rule, so labels cannot
        depend on iteration order.
        """
        k = k or self.k
        if k > self.k:
            raise ValueError("contribution k cannot exceed the searcher's k")
        per_shard = [
            self.searchers[sid].search(query) for sid in range(self.n_shards)
        ]
        merged = merge_results(per_shard, k)
        top_docs = [set(result.doc_ids()[:k]) for result in per_shard]
        counts = {sid: 0 for sid in range(self.n_shards)}
        for doc_id, _ in merged.hits[:k]:
            for sid, docs in enumerate(top_docs):  # ascending: first shard wins
                if doc_id in docs:
                    counts[sid] += 1
                    break
        return counts
