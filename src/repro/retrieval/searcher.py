"""Per-shard search façade and the distributed searcher.

``ShardSearcher`` is what an ISN runs; ``DistributedSearcher`` is the pure
retrieval view of the whole cluster (broadcast + merge) without any timing —
the cluster simulator layers queueing, frequencies and budgets on top of it.
Both are safe to drive from a ``ShardExecutor`` thread pool: the memo cache
guarantees exactly-once evaluation per key without locking the hit path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.index.shard import IndexShard
from repro.retrieval.block_max_wand import block_max_wand_search
from repro.retrieval.executor import SerialExecutor, ShardExecutor
from repro.retrieval.exhaustive import exhaustive_search, exhaustive_search_daat
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult, merge_results
from repro.retrieval.wand import wand_search

STRATEGIES: dict[str, Callable[[IndexShard, list[str], int], SearchResult]] = {
    "exhaustive": exhaustive_search,
    "exhaustive_daat": exhaustive_search_daat,
    "maxscore": maxscore_search,
    "wand": wand_search,
    "block_max_wand": block_max_wand_search,
}

CacheKey = tuple[tuple[str, ...], int, str]


@dataclass(frozen=True)
class SearcherCacheStats:
    """Memo-cache counters for one ``ShardSearcher``.

    ``computations`` and ``size`` are exact (only a key's owner thread
    increments them).  ``hits`` is maintained with plain unlocked
    increments so the hit path stays lock-free; under heavy thread races
    it can undercount, never overcount.
    """

    hits: int
    computations: int
    size: int


class _Pending:
    """In-flight computation other threads can wait on (exactly-once)."""

    __slots__ = ("_event", "result", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.result: SearchResult | None = None
        self.error: BaseException | None = None

    def publish(self, result: SearchResult | None, error: BaseException | None) -> None:
        self.result = result
        self.error = error
        self._event.set()

    def wait(self) -> SearchResult:
        self._event.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class ShardSearcher:
    """Executes queries on one shard with a fixed strategy and k.

    Results are memoized: trace replay repeats popular queries many
    times, and re-running retrieval for each occurrence would dominate
    simulation time without changing any outcome (the index is
    immutable).  The memo key is ``(terms, k, strategy)`` — not terms
    alone — so a searcher whose ``k`` or ``strategy`` is changed between
    calls can never serve a stale, differently-truncated result.

    Thread safety: the cache is written through a per-key in-flight
    registry, so concurrent misses on the same key compute **exactly
    once** (losers block until the owner publishes) while the hit path
    stays a single lock-free ``dict.get``.
    """

    def __init__(self, shard: IndexShard, k: int = 10, strategy: str = "maxscore") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; options: {sorted(STRATEGIES)}"
            )
        self.shard = shard
        self.k = k
        self.strategy = strategy
        self._search = STRATEGIES[strategy]
        self._cache: dict[CacheKey, SearchResult] = {}
        self._pending: dict[CacheKey, _Pending] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._computations = 0

    def cache_key(self, query: Query) -> CacheKey:
        return (query.terms, self.k, self.strategy)

    def is_cached(self, query: Query) -> bool:
        return self.cache_key(query) in self._cache

    @property
    def cache_stats(self) -> SearcherCacheStats:
        return SearcherCacheStats(
            hits=self._hits,
            computations=self._computations,
            size=len(self._cache),
        )

    def search(self, query: Query) -> SearchResult:
        key = self.cache_key(query)
        cached = self._cache.get(key)  # lock-free hot path
        if cached is not None:
            self._hits += 1
            return cached
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return cached
            pending = self._pending.get(key)
            if pending is None:
                pending = self._pending[key] = _Pending()
                owner = True
            else:
                owner = False
        if not owner:
            return pending.wait()
        strategy = STRATEGIES[key[2]]
        try:
            result = strategy(self.shard, list(query.terms), key[1])
        except BaseException as exc:
            pending.publish(None, exc)
            with self._lock:
                self._pending.pop(key, None)
            raise
        # Publish to the cache before waking waiters so every later
        # lookup (including theirs) sees the same object.
        self._cache[key] = result
        self._computations += 1
        pending.publish(result, None)
        with self._lock:
            self._pending.pop(key, None)
        return result

    def search_terms(self, terms: list[str]) -> SearchResult:
        return self.search(Query(query_id=-1, terms=tuple(dict.fromkeys(terms))))


class DistributedSearcher:
    """Timing-free distributed retrieval: broadcast to shards, merge top-k.

    This is the ground-truth engine: ``search`` over all shards gives the
    exhaustive result that defines P@K and per-ISN quality labels.  The
    fan-out runs through ``executor`` (serial by default); the merged
    result is bit-identical for every executor because per-shard results
    come back in submission order and the merge orders hits by the total
    key ``(-score, doc_id)``.
    """

    def __init__(
        self,
        shards: list[IndexShard],
        k: int = 10,
        strategy: str = "maxscore",
        executor: ShardExecutor | None = None,
    ) -> None:
        self.k = k
        self.executor = executor or SerialExecutor()
        self.searchers = [ShardSearcher(shard, k=k, strategy=strategy) for shard in shards]

    @property
    def n_shards(self) -> int:
        return len(self.searchers)

    def search_shard(self, shard_id: int, query: Query) -> SearchResult:
        return self.searchers[shard_id].search(query)

    def search(self, query: Query, shard_ids: list[int] | None = None) -> SearchResult:
        """Search a subset of shards (default: all) and merge."""
        if shard_ids is None:
            shard_ids = list(range(self.n_shards))
        per_shard = self.executor.map(
            [lambda s=self.searchers[sid]: s.search(query) for sid in shard_ids]
        )
        return merge_results(per_shard, self.k)

    def cache_stats(self) -> list[SearcherCacheStats]:
        """Per-shard memo counters, in shard order."""
        return [searcher.cache_stats for searcher in self.searchers]

    def shard_contributions(self, query: Query, k: int | None = None) -> dict[int, int]:
        """Per-shard document counts in the global top-k (quality labels).

        This is the paper's definition of an ISN's quality: "the number of
        documents it reports that will be included in the final top-K
        results".
        """
        k = k or self.k
        if k > self.k:
            raise ValueError("contribution k cannot exceed the searcher's k")
        per_shard = {
            sid: set(self.searchers[sid].search(query).doc_ids()[:k])
            for sid in range(self.n_shards)
        }
        merged = merge_results(
            [self.searchers[sid].search(query) for sid in range(self.n_shards)], k
        )
        counts = {sid: 0 for sid in range(self.n_shards)}
        for doc_id, _ in merged.hits[:k]:
            for sid, docs in per_shard.items():
                if doc_id in docs:
                    counts[sid] += 1
                    break
        return counts
