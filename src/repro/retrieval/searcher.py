"""Per-shard search façade and the distributed searcher.

``ShardSearcher`` is what an ISN runs; ``DistributedSearcher`` is the pure
retrieval view of the whole cluster (broadcast + merge) without any timing —
the cluster simulator layers queueing, frequencies and budgets on top of it.
"""

from __future__ import annotations

from typing import Callable

from repro.index.shard import IndexShard
from repro.retrieval.block_max_wand import block_max_wand_search
from repro.retrieval.exhaustive import exhaustive_search, exhaustive_search_daat
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.query import Query
from repro.retrieval.result import SearchResult, merge_results
from repro.retrieval.wand import wand_search

STRATEGIES: dict[str, Callable[[IndexShard, list[str], int], SearchResult]] = {
    "exhaustive": exhaustive_search,
    "exhaustive_daat": exhaustive_search_daat,
    "maxscore": maxscore_search,
    "wand": wand_search,
    "block_max_wand": block_max_wand_search,
}


class ShardSearcher:
    """Executes queries on one shard with a fixed strategy and k.

    Results are memoized by query terms: trace replay repeats popular
    queries many times, and re-running retrieval for each occurrence would
    dominate simulation time without changing any outcome (the index is
    immutable).
    """

    def __init__(self, shard: IndexShard, k: int = 10, strategy: str = "maxscore") -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; options: {sorted(STRATEGIES)}"
            )
        self.shard = shard
        self.k = k
        self.strategy = strategy
        self._search = STRATEGIES[strategy]
        self._cache: dict[tuple[str, ...], SearchResult] = {}

    def search(self, query: Query) -> SearchResult:
        key = query.terms
        cached = self._cache.get(key)
        if cached is None:
            cached = self._search(self.shard, list(query.terms), self.k)
            self._cache[key] = cached
        return cached

    def search_terms(self, terms: list[str]) -> SearchResult:
        return self.search(Query(query_id=-1, terms=tuple(dict.fromkeys(terms))))


class DistributedSearcher:
    """Timing-free distributed retrieval: broadcast to shards, merge top-k.

    This is the ground-truth engine: ``search`` over all shards gives the
    exhaustive result that defines P@K and per-ISN quality labels.
    """

    def __init__(
        self, shards: list[IndexShard], k: int = 10, strategy: str = "maxscore"
    ) -> None:
        self.k = k
        self.searchers = [ShardSearcher(shard, k=k, strategy=strategy) for shard in shards]

    @property
    def n_shards(self) -> int:
        return len(self.searchers)

    def search_shard(self, shard_id: int, query: Query) -> SearchResult:
        return self.searchers[shard_id].search(query)

    def search(self, query: Query, shard_ids: list[int] | None = None) -> SearchResult:
        """Search a subset of shards (default: all) and merge."""
        if shard_ids is None:
            shard_ids = list(range(self.n_shards))
        per_shard = [self.searchers[sid].search(query) for sid in shard_ids]
        return merge_results(per_shard, self.k)

    def shard_contributions(self, query: Query, k: int | None = None) -> dict[int, int]:
        """Per-shard document counts in the global top-k (quality labels).

        This is the paper's definition of an ISN's quality: "the number of
        documents it reports that will be included in the final top-K
        results".
        """
        k = k or self.k
        if k > self.k:
            raise ValueError("contribution k cannot exceed the searcher's k")
        per_shard = {
            sid: set(self.searchers[sid].search(query).doc_ids()[:k])
            for sid in range(self.n_shards)
        }
        merged = merge_results(
            [self.searchers[sid].search(query) for sid in range(self.n_shards)], k
        )
        counts = {sid: 0 for sid in range(self.n_shards)}
        for doc_id, _ in merged.hits[:k]:
            for sid, docs in per_shard.items():
                if doc_id in docs:
                    counts[sid] += 1
                    break
        return counts
