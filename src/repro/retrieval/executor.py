"""Shard fan-out execution strategies.

Every layer that touches more than one shard — ``DistributedSearcher``
broadcast, trace prewarming in the cluster engine, the benchmarks — runs
its per-shard work through a ``ShardExecutor``.  Three strategies are
provided:

* ``SerialExecutor`` — runs tasks in submission order on the calling
  thread.  The reference behaviour every other executor must reproduce
  bit for bit.
* ``ParallelExecutor`` — fans tasks out over a ``ThreadPoolExecutor``
  with a configurable worker count.
* ``BatchExecutor`` — a ``ParallelExecutor`` that additionally knows how
  to pipeline a whole query trace through the pool: it deduplicates
  (searcher, cache-key) pairs and submits every remaining retrieval task
  at once, so shards of query *i+1* overlap with stragglers of query *i*
  instead of waiting on a per-query barrier.
* ``ProcessExecutor`` — fans shard searches out over a
  ``ProcessPoolExecutor``.  Workers never receive pickled shards: they
  attach the shard's ``.store`` bytes in place, either by ``mmap`` of the
  on-disk store file or from a ``multiprocessing.shared_memory`` segment
  the parent publishes, and keep the attached searcher alive across
  tasks.  Tasks must therefore be picklable *descriptors*
  (:class:`ShardSearchTask`), not closures — ``map`` rejects lambdas and
  nested functions up front rather than letting pickle fail obscurely.

Determinism contract
--------------------
``map`` returns results in **submission order**, never completion order,
and downstream merges (`merge_results`) order hits by the total key
``(-score, doc_id)`` which is unique per document.  Retrieval itself is a
pure function of an immutable shard.  Together these make the merged
output of any executor bit-identical to ``SerialExecutor`` regardless of
worker count, scheduling, or completion order — the property
``tests/test_executor.py`` pins down.

Timing
------
Executors record per-task durations of their last ``map`` in a
``FanoutStats``.  Besides wall clock, the stats expose the *critical
path*: the makespan of the measured tasks under the executor's worker
count (FIFO list scheduling, the same order the pool serves).  On a
host with free cores wall clock tracks the critical path; on a saturated
or single-core host (CI containers) wall clock cannot improve, so the
critical path is the honest figure of merit — it is exactly the
``max`` -of-shards fan-out latency the cluster simulator's latency model
charges, versus the ``sum`` a serial scan pays.
"""

from __future__ import annotations

import functools
import heapq
import multiprocessing
import tempfile
import threading
import time
from concurrent import futures as _futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.shard import IndexShard
    from repro.retrieval.query import Query
    from repro.retrieval.result import SearchResult
    from repro.retrieval.searcher import (
        ShardSearcher,
        StrategyChoice,
        StrategySelector,
    )
    from repro.telemetry import Telemetry
    from repro.telemetry.trace import Tracer

#: How a worker process reaches a shard without unpickling it:
#: ``("mmap", <store file path>)`` or ``("shm", <shared-memory name>)``.
AttachSpec = tuple[str, str]

T = TypeVar("T")


@dataclass
class FanoutStats:
    """Timing of one fan-out: wall clock plus per-task durations."""

    task_ms: list[float] = field(default_factory=list)
    wall_ms: float = 0.0
    workers: int = 1

    @property
    def n_tasks(self) -> int:
        return len(self.task_ms)

    @property
    def serial_ms(self) -> float:
        """Total work: what a serial scan of the same tasks would pay."""
        return sum(self.task_ms)

    def makespan_ms(self, workers: int | None = None) -> float:
        """Critical path under FIFO list scheduling on ``workers`` lanes.

        Tasks are assigned in submission order to the earliest-free
        worker — the schedule a thread pool's FIFO queue produces — so
        this is the fan-out completion time the worker count buys,
        independent of how many cores the host happens to have free.
        """
        workers = workers or self.workers
        if workers < 1:
            raise ValueError("workers must be positive")
        if not self.task_ms:
            return 0.0
        lanes = [0.0] * min(workers, len(self.task_ms))
        heapq.heapify(lanes)
        for duration in self.task_ms:
            heapq.heappush(lanes, heapq.heappop(lanes) + duration)
        return max(lanes)

    @property
    def critical_path_ms(self) -> float:
        return self.makespan_ms()

    @property
    def modeled_speedup(self) -> float:
        """Serial time over critical path: the fan-out speedup."""
        critical = self.critical_path_ms
        return self.serial_ms / critical if critical > 0 else 1.0


class ShardExecutor:
    """How per-shard tasks of one logical operation are executed.

    Subclasses implement :meth:`map`; everything else (context manager,
    stats bookkeeping) is shared.  ``last_stats`` always describes the
    most recent ``map`` call.
    """

    name = "abstract"
    #: True when tasks run in another process: callers must hand ``map``
    #: picklable descriptors instead of closures over live objects.
    remote = False

    def __init__(self) -> None:
        self.last_stats: FanoutStats | None = None
        # Telemetry tracer, bound per run; None means disabled and costs
        # exactly one attribute test per map call.
        self._tracer: "Tracer | None" = None

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a run's telemetry session to subsequent ``map`` calls."""
        self._tracer = telemetry.tracer if telemetry.enabled else None

    @property
    def workers(self) -> int:
        return 1

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run ``tasks``, returning their results in submission order."""
        tracer = self._tracer
        if tracer is None:
            return self._run(tasks)
        with tracer.span(
            "executor.map", track="executor",
            strategy=self.name, n_tasks=len(tasks), workers=self.workers,
        ) as span:
            results = self._run(tasks)
            if self.last_stats is not None:
                span.attrs["wall_ms"] = self.last_stats.wall_ms
            return results

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Strategy-specific execution; ``map`` wraps it with telemetry."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(ShardExecutor):
    """Run every task inline, in order, on the calling thread."""

    name = "serial"

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        stats = FanoutStats(workers=1)
        start = time.perf_counter()
        results: list[T] = []
        for task in tasks:
            t0 = time.perf_counter()
            results.append(task())
            stats.task_ms.append((time.perf_counter() - t0) * 1000.0)
        stats.wall_ms = (time.perf_counter() - start) * 1000.0
        self.last_stats = stats
        return results


class ParallelExecutor(ShardExecutor):
    """Thread-pool fan-out with a configurable worker count.

    The pool is created lazily on first use and shared across ``map``
    calls; ``close`` (or use as a context manager) shuts it down.
    Results come back in submission order, so callers observe exactly
    the serial interface with only the schedule changed.
    """

    name = "parallel"

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be positive")
        self._workers = workers
        self._pool: _futures.ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> _futures.ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = _futures.ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="shard-exec",
                )
            return self._pool

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        pool = self._ensure_pool()
        stats = FanoutStats(workers=self._workers)
        durations = [0.0] * len(tasks)

        def timed(index: int, task: Callable[[], T]) -> T:
            t0 = time.perf_counter()
            try:
                return task()
            finally:
                # Each task owns exactly one preallocated slot, so the
                # pool threads' writes are disjoint by construction.
                durations[index] = (time.perf_counter() - t0) * 1000.0  # simlint: disable=PAR-SHARED -- index-disjoint slot writes

        start = time.perf_counter()
        pending = [pool.submit(timed, i, task) for i, task in enumerate(tasks)]
        # Gather in submission order; completion order is irrelevant.
        results = [future.result() for future in pending]
        stats.wall_ms = (time.perf_counter() - start) * 1000.0
        stats.task_ms = durations
        self.last_stats = stats
        return results

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class BatchExecutor(ParallelExecutor):
    """Pipeline a whole query trace through the pool.

    ``prewarm`` fills the shard searchers' memo caches for every
    (searcher, query) pair a trace replay can touch.  All tasks enter
    the pool at once — no barrier between queries — and duplicates
    (repeated trace queries, or keys already cached) are skipped, so
    the pool only ever sees the unique retrieval work.  Correctness
    under concurrent cache fills is the searcher's exactly-once memo
    contract (see ``ShardSearcher``).
    """

    name = "batch"

    def prewarm(
        self,
        searchers: Sequence["ShardSearcher"],
        queries: Iterable["Query"],
    ) -> int:
        """Compute every uncached (searcher, query) pair; return the count."""
        tasks = plan_prewarm(searchers, queries)
        self.map(tasks)
        return len(tasks)


# --------------------------------------------------------------- processes
# Worker-side attach registries.  Keyed by AttachSpec so that every task
# hitting the same shard inside one worker process reuses a single
# attached (mmap/shm) shard and its memoizing searcher.  With the default
# ``fork`` start method children inherit these dicts empty (the parent
# never populates them); under ``spawn`` each worker imports this module
# fresh.  Worker pools are single-threaded per process, so plain dicts
# suffice.
_ATTACHED_SHARDS: dict[AttachSpec, "IndexShard"] = {}
_ATTACHED_SEARCHERS: dict[tuple[AttachSpec, int, str], "ShardSearcher"] = {}
_ATTACHED_SEGMENTS: list[object] = []


def _attached_searcher(spec: AttachSpec, k: int, strategy: str) -> "ShardSearcher":
    """The worker-process searcher for ``spec``, attached on first use."""
    key = (spec, k, strategy)
    searcher = _ATTACHED_SEARCHERS.get(key)
    if searcher is not None:
        return searcher
    shard = _ATTACHED_SHARDS.get(spec)
    if shard is None:
        kind, ref = spec
        if kind == "mmap":
            from repro.index.store import open_store

            shard = open_store(ref)
        elif kind == "shm":
            from multiprocessing import shared_memory

            from repro.index.store import open_store_buffer

            segment = shared_memory.SharedMemory(name=ref)
            # Keep the segment object alive for the life of the worker:
            # the attached arrays are zero-copy views into its buffer.
            _ATTACHED_SEGMENTS.append(segment)
            shard = open_store_buffer(segment.buf)
        else:  # pragma: no cover - specs are built by spec_for
            raise ValueError(f"unknown attach spec kind {kind!r}")
        _ATTACHED_SHARDS[spec] = shard
    from repro.retrieval.searcher import ShardSearcher

    searcher = ShardSearcher(shard, k=k, strategy=strategy)
    _ATTACHED_SEARCHERS[key] = searcher
    return searcher


@dataclass(frozen=True)
class ShardSearchTask:
    """A picklable description of one shard search.

    This is what crosses the process boundary instead of a closure over a
    live ``ShardSearcher``: a few strings naming *where* the shard lives
    (:data:`AttachSpec`) and *what* to run on it.  Workers resolve the
    spec through their process-local attach registry, so repeated tasks
    against one shard pay the attach (and any decode) exactly once per
    worker.
    """

    spec: AttachSpec
    terms: tuple[str, ...]
    k: int
    strategy: str

    def __call__(self) -> "SearchResult":
        from repro.retrieval.query import Query

        searcher = _attached_searcher(self.spec, self.k, self.strategy)
        return searcher.search(Query(query_id=-1, terms=self.terms))


def _run_task_timed(task: Callable[[], T]) -> tuple[T, float]:
    """Worker-side entry point: run ``task``, return (result, duration_ms).

    Durations are measured inside the worker so ``FanoutStats`` reflects
    actual shard-search time, not queueing or result-pickling overhead.
    """
    t0 = time.perf_counter()
    result = task()
    return result, (time.perf_counter() - t0) * 1000.0


def _reject_unpicklable(task: object) -> None:
    """Fail fast on closures/lambdas that pickle would reject obscurely."""
    fn = task
    while isinstance(fn, functools.partial):
        fn = fn.func
    qualname = getattr(fn, "__qualname__", "")
    if (
        getattr(fn, "__closure__", None)
        or "<lambda>" in qualname
        or "<locals>" in qualname
    ):
        raise TypeError(
            "ProcessExecutor tasks must be picklable module-level callables "
            f"(got {qualname or fn!r}); pass ShardSearchTask descriptors, "
            "not lambdas or closures over live objects"
        )


class ProcessExecutor(ShardExecutor):
    """Process-pool fan-out with shared-memory shard attachment.

    Shards are never pickled to workers.  ``spec_for`` turns a shard into
    an :data:`AttachSpec`: shards opened from a ``.store`` file advertise
    their path (workers ``mmap`` it), in-memory shards are serialized
    once into a ``multiprocessing.shared_memory`` segment (workers map
    the same physical pages).  Where POSIX shared memory is unavailable
    the segment silently degrades to a temporary store file.

    The start method defaults to ``fork`` where the platform offers it —
    workers then share the parent's page cache for mmap'd stores — and
    falls back to ``spawn`` elsewhere.  ``close`` shuts the pool down and
    unlinks every published segment; like the thread executors, a closed
    instance lazily re-creates its pool on next use (the published
    segments are gone, though, so ``spec_for`` re-publishes on demand).
    """

    name = "process"
    remote = True

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be positive")
        self._workers = workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._pool: _futures.ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # How many times a worker pool was created — 1 across any number
        # of runs that reuse this executor (the pool-persistence contract
        # tests/test_serving_plane.py pins); +1 after each close().
        self.spawn_count = 0
        # id(shard) -> spec for shards this executor published itself,
        # plus the backing segments/files to unlink on close.
        self._published: dict[int, AttachSpec] = {}
        self._segments: list[object] = []
        self._spill_files: list[Path] = []

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def start_method(self) -> str:
        return self._start_method

    def spec_for(self, shard: "IndexShard") -> AttachSpec:
        """How workers should attach ``shard`` (publishing it if needed)."""
        store_path = getattr(shard, "store_path", None)
        if store_path is not None:
            return ("mmap", str(store_path))
        key = id(shard)
        spec = self._published.get(key)
        if spec is None:
            spec = self._publish(shard)
            self._published[key] = spec
        return spec

    def _publish(self, shard: "IndexShard") -> AttachSpec:
        from repro.index.store import serialize_shard

        blob = serialize_shard(shard)
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=len(blob))
        except (ImportError, OSError, FileNotFoundError):
            # No POSIX shm (exotic container): spill to a temp store file
            # and let workers mmap that instead.
            handle = tempfile.NamedTemporaryFile(
                prefix=f"repro_shard_{shard.shard_id}_",
                suffix=".store",
                delete=False,
            )
            with handle:
                handle.write(blob)
            path = Path(handle.name)
            self._spill_files.append(path)
            return ("mmap", str(path))
        segment.buf[: len(blob)] = blob
        self._segments.append(segment)
        return ("shm", segment.name)

    def _ensure_pool(self) -> _futures.ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = _futures.ProcessPoolExecutor(
                    max_workers=self._workers,
                    mp_context=multiprocessing.get_context(self._start_method),
                )
                self.spawn_count += 1
            return self._pool

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        for task in tasks:
            _reject_unpicklable(task)
        pool = self._ensure_pool()
        stats = FanoutStats(workers=self._workers)
        start = time.perf_counter()
        pending = [pool.submit(_run_task_timed, task) for task in tasks]
        results: list[T] = []
        for future in pending:  # submission order, same as the thread pools
            result, duration_ms = future.result()
            results.append(result)
            stats.task_ms.append(duration_ms)
        stats.wall_ms = (time.perf_counter() - start) * 1000.0
        self.last_stats = stats
        return results

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        segments, self._segments = self._segments, []
        for segment in segments:
            for release in ("close", "unlink"):
                try:
                    getattr(segment, release)()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        spills, self._spill_files = self._spill_files, []
        for path in spills:
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._published.clear()


def plan_prewarm(
    searchers: Sequence["ShardSearcher"],
    queries: Iterable["Query"],
    selector: "StrategySelector | None" = None,
) -> list[Callable[[], object]]:
    """Deduplicated retrieval closures covering ``queries`` on ``searchers``.

    One task per unique (searcher, cache key) not already cached.  The
    tasks only touch the searchers' memo caches through ``search``, so
    running them through any executor leaves behavior unchanged — replay
    afterwards is pure cache hits.

    ``selector`` warms the keys an adaptive dispatcher will ask for
    (consulted with no budget, the only view that exists before the
    policy runs); replay under a *budget-sensitive* selector may still
    downshift some queries, which then compute lazily at dispatch —
    retrieval is pure and memoized, so that never changes an outcome.
    """
    seen: set[tuple[int, object]] = set()
    tasks: list[Callable[[], object]] = []
    for query in queries:
        for searcher in searchers:
            choice = (
                selector.choose(query, searcher.shard.shard_id, None)
                if selector is not None
                else None
            )
            key = (id(searcher), searcher.cache_key(query, choice))
            if key in seen or searcher.is_cached(query, choice):
                continue
            seen.add(key)
            tasks.append(lambda s=searcher, q=query, c=choice: s.search(q, c))
    return tasks


def plan_prewarm_remote(
    searchers: Sequence["ShardSearcher"],
    queries: Iterable["Query"],
    executor: "ProcessExecutor",
    selector: "StrategySelector | None" = None,
) -> tuple[
    list[ShardSearchTask],
    list[tuple["ShardSearcher", "Query", "StrategyChoice | None"]],
]:
    """The remote analogue of :func:`plan_prewarm`.

    Returns parallel lists: picklable tasks for the process pool, and the
    (searcher, query, choice) triple each result must be seeded back
    into.  The dedup rule is identical to the closure planner, so the set
    of computed keys — and therefore the replayed run — matches the
    thread path exactly.
    """
    seen: set[tuple[int, object]] = set()
    tasks: list[ShardSearchTask] = []
    seeds: list[tuple["ShardSearcher", "Query", "StrategyChoice | None"]] = []
    for query in queries:
        for searcher in searchers:
            choice = (
                selector.choose(query, searcher.shard.shard_id, None)
                if selector is not None
                else None
            )
            cache_key = searcher.cache_key(query, choice)
            key = (id(searcher), cache_key)
            if key in seen or searcher.is_cached(query, choice):
                continue
            seen.add(key)
            tasks.append(
                ShardSearchTask(
                    spec=executor.spec_for(searcher.shard),
                    terms=query.terms,
                    k=cache_key[1],
                    strategy=cache_key[2],
                )
            )
            seeds.append((searcher, query, choice))
    return tasks, seeds


def prewarm_searchers(
    searchers: Sequence["ShardSearcher"],
    queries: Iterable["Query"],
    executor: ShardExecutor,
    selector: "StrategySelector | None" = None,
) -> int:
    """Run the prewarm plan on an existing executor; return the task count.

    Remote executors get descriptor tasks and have their results seeded
    back into the parent-side memo caches, so replay afterwards is pure
    cache hits either way.
    """
    if executor.remote:
        tasks, seeds = plan_prewarm_remote(searchers, queries, executor, selector)  # type: ignore[arg-type]
        results = executor.map(tasks)
        for (searcher, query, choice), result in zip(seeds, results):
            searcher.seed(query, result, choice)
        return len(tasks)
    tasks = plan_prewarm(searchers, queries, selector)
    executor.map(tasks)
    return len(tasks)


def make_executor(workers: int | None, backend: str = "thread") -> ShardExecutor:
    """Executor for a worker count and backend (``None``/``<=1`` → serial).

    ``backend`` selects the fan-out mechanism: ``"thread"`` (default,
    serial when ``workers`` is ``None`` or 1), ``"process"`` (always a
    :class:`ProcessExecutor`, even single-worker — useful for isolating
    memory), or ``"serial"``.
    """
    if backend == "thread":
        if workers is None or workers <= 1:
            return SerialExecutor()
        return ParallelExecutor(workers)
    if backend == "serial":
        return SerialExecutor()
    if backend == "process":
        return ProcessExecutor(max(workers or 1, 1))
    raise ValueError(
        f"unknown executor backend {backend!r}; options: serial, thread, process"
    )
