"""Shard fan-out execution strategies.

Every layer that touches more than one shard — ``DistributedSearcher``
broadcast, trace prewarming in the cluster engine, the benchmarks — runs
its per-shard work through a ``ShardExecutor``.  Three strategies are
provided:

* ``SerialExecutor`` — runs tasks in submission order on the calling
  thread.  The reference behaviour every other executor must reproduce
  bit for bit.
* ``ParallelExecutor`` — fans tasks out over a ``ThreadPoolExecutor``
  with a configurable worker count.
* ``BatchExecutor`` — a ``ParallelExecutor`` that additionally knows how
  to pipeline a whole query trace through the pool: it deduplicates
  (searcher, cache-key) pairs and submits every remaining retrieval task
  at once, so shards of query *i+1* overlap with stragglers of query *i*
  instead of waiting on a per-query barrier.

Determinism contract
--------------------
``map`` returns results in **submission order**, never completion order,
and downstream merges (`merge_results`) order hits by the total key
``(-score, doc_id)`` which is unique per document.  Retrieval itself is a
pure function of an immutable shard.  Together these make the merged
output of any executor bit-identical to ``SerialExecutor`` regardless of
worker count, scheduling, or completion order — the property
``tests/test_executor.py`` pins down.

Timing
------
Executors record per-task durations of their last ``map`` in a
``FanoutStats``.  Besides wall clock, the stats expose the *critical
path*: the makespan of the measured tasks under the executor's worker
count (FIFO list scheduling, the same order the pool serves).  On a
host with free cores wall clock tracks the critical path; on a saturated
or single-core host (CI containers) wall clock cannot improve, so the
critical path is the honest figure of merit — it is exactly the
``max`` -of-shards fan-out latency the cluster simulator's latency model
charges, versus the ``sum`` a serial scan pays.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent import futures as _futures
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.retrieval.query import Query
    from repro.retrieval.searcher import ShardSearcher
    from repro.telemetry import Telemetry
    from repro.telemetry.trace import Tracer

T = TypeVar("T")


@dataclass
class FanoutStats:
    """Timing of one fan-out: wall clock plus per-task durations."""

    task_ms: list[float] = field(default_factory=list)
    wall_ms: float = 0.0
    workers: int = 1

    @property
    def n_tasks(self) -> int:
        return len(self.task_ms)

    @property
    def serial_ms(self) -> float:
        """Total work: what a serial scan of the same tasks would pay."""
        return sum(self.task_ms)

    def makespan_ms(self, workers: int | None = None) -> float:
        """Critical path under FIFO list scheduling on ``workers`` lanes.

        Tasks are assigned in submission order to the earliest-free
        worker — the schedule a thread pool's FIFO queue produces — so
        this is the fan-out completion time the worker count buys,
        independent of how many cores the host happens to have free.
        """
        workers = workers or self.workers
        if workers < 1:
            raise ValueError("workers must be positive")
        if not self.task_ms:
            return 0.0
        lanes = [0.0] * min(workers, len(self.task_ms))
        heapq.heapify(lanes)
        for duration in self.task_ms:
            heapq.heappush(lanes, heapq.heappop(lanes) + duration)
        return max(lanes)

    @property
    def critical_path_ms(self) -> float:
        return self.makespan_ms()

    @property
    def modeled_speedup(self) -> float:
        """Serial time over critical path: the fan-out speedup."""
        critical = self.critical_path_ms
        return self.serial_ms / critical if critical > 0 else 1.0


class ShardExecutor:
    """How per-shard tasks of one logical operation are executed.

    Subclasses implement :meth:`map`; everything else (context manager,
    stats bookkeeping) is shared.  ``last_stats`` always describes the
    most recent ``map`` call.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.last_stats: FanoutStats | None = None
        # Telemetry tracer, bound per run; None means disabled and costs
        # exactly one attribute test per map call.
        self._tracer: "Tracer | None" = None

    def bind_telemetry(self, telemetry: "Telemetry") -> None:
        """Attach a run's telemetry session to subsequent ``map`` calls."""
        self._tracer = telemetry.tracer if telemetry.enabled else None

    @property
    def workers(self) -> int:
        return 1

    def map(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run ``tasks``, returning their results in submission order."""
        tracer = self._tracer
        if tracer is None:
            return self._run(tasks)
        with tracer.span(
            "executor.map", track="executor",
            strategy=self.name, n_tasks=len(tasks), workers=self.workers,
        ) as span:
            results = self._run(tasks)
            if self.last_stats is not None:
                span.attrs["wall_ms"] = self.last_stats.wall_ms
            return results

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Strategy-specific execution; ``map`` wraps it with telemetry."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(ShardExecutor):
    """Run every task inline, in order, on the calling thread."""

    name = "serial"

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        stats = FanoutStats(workers=1)
        start = time.perf_counter()
        results: list[T] = []
        for task in tasks:
            t0 = time.perf_counter()
            results.append(task())
            stats.task_ms.append((time.perf_counter() - t0) * 1000.0)
        stats.wall_ms = (time.perf_counter() - start) * 1000.0
        self.last_stats = stats
        return results


class ParallelExecutor(ShardExecutor):
    """Thread-pool fan-out with a configurable worker count.

    The pool is created lazily on first use and shared across ``map``
    calls; ``close`` (or use as a context manager) shuts it down.
    Results come back in submission order, so callers observe exactly
    the serial interface with only the schedule changed.
    """

    name = "parallel"

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError("workers must be positive")
        self._workers = workers
        self._pool: _futures.ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _ensure_pool(self) -> _futures.ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = _futures.ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="shard-exec",
                )
            return self._pool

    def _run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        pool = self._ensure_pool()
        stats = FanoutStats(workers=self._workers)
        durations = [0.0] * len(tasks)

        def timed(index: int, task: Callable[[], T]) -> T:
            t0 = time.perf_counter()
            try:
                return task()
            finally:
                # Each task owns exactly one preallocated slot, so the
                # pool threads' writes are disjoint by construction.
                durations[index] = (time.perf_counter() - t0) * 1000.0  # simlint: disable=PAR-SHARED -- index-disjoint slot writes

        start = time.perf_counter()
        pending = [pool.submit(timed, i, task) for i, task in enumerate(tasks)]
        # Gather in submission order; completion order is irrelevant.
        results = [future.result() for future in pending]
        stats.wall_ms = (time.perf_counter() - start) * 1000.0
        stats.task_ms = durations
        self.last_stats = stats
        return results

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class BatchExecutor(ParallelExecutor):
    """Pipeline a whole query trace through the pool.

    ``prewarm`` fills the shard searchers' memo caches for every
    (searcher, query) pair a trace replay can touch.  All tasks enter
    the pool at once — no barrier between queries — and duplicates
    (repeated trace queries, or keys already cached) are skipped, so
    the pool only ever sees the unique retrieval work.  Correctness
    under concurrent cache fills is the searcher's exactly-once memo
    contract (see ``ShardSearcher``).
    """

    name = "batch"

    def prewarm(
        self,
        searchers: Sequence["ShardSearcher"],
        queries: Iterable["Query"],
    ) -> int:
        """Compute every uncached (searcher, query) pair; return the count."""
        tasks = plan_prewarm(searchers, queries)
        self.map(tasks)
        return len(tasks)


def plan_prewarm(
    searchers: Sequence["ShardSearcher"],
    queries: Iterable["Query"],
) -> list[Callable[[], object]]:
    """Deduplicated retrieval closures covering ``queries`` on ``searchers``.

    One task per unique (searcher, cache key) not already cached.  The
    tasks only touch the searchers' memo caches through ``search``, so
    running them through any executor leaves behavior unchanged — replay
    afterwards is pure cache hits.
    """
    seen: set[tuple[int, object]] = set()
    tasks: list[Callable[[], object]] = []
    for query in queries:
        for searcher in searchers:
            key = (id(searcher), searcher.cache_key(query))
            if key in seen or searcher.is_cached(query):
                continue
            seen.add(key)
            tasks.append(lambda s=searcher, q=query: s.search(q))
    return tasks


def prewarm_searchers(
    searchers: Sequence["ShardSearcher"],
    queries: Iterable["Query"],
    executor: ShardExecutor,
) -> int:
    """Run the prewarm plan on an existing executor; return the task count."""
    tasks = plan_prewarm(searchers, queries)
    executor.map(tasks)
    return len(tasks)


def make_executor(workers: int | None) -> ShardExecutor:
    """Executor for a requested worker count (``None``/``<=1`` → serial)."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
