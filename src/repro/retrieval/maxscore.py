"""MaxScore dynamic pruning (Turtle & Flood, 1995), DAAT variant.

MaxScore splits the query's posting lists into *essential* lists — those
whose combined score upper bounds can still beat the current top-K
threshold — and *non-essential* lists that are only probed for documents
already surfaced by an essential list.  Documents whose partial score plus
the remaining upper bounds cannot reach the threshold are abandoned early.

This is the default evaluation strategy of the reproduction's ISNs, matching
the paper's observation that Solr/Lucene-style engines run MaxScore/WAND
pruning (Section III-C), which is what makes service time hard to predict
from posting length alone.
"""

from __future__ import annotations

from repro.index.postings import END_OF_LIST, PostingCursor
from repro.index.shard import IndexShard
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector


def _prepare_cursors(shard: IndexShard, terms: list[str]) -> list[PostingCursor]:
    """Cursors with scores and upper bounds attached, sorted by upper bound
    ascending (the MaxScore essential-list order)."""
    cursors = []
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            continue
        cursor = entry.postings.cursor()
        cursor.scores = entry.scores
        cursor.upper_bound = entry.upper_bound
        cursors.append(cursor)
    cursors.sort(key=lambda c: c.upper_bound)
    return cursors


def maxscore_search(shard: IndexShard, terms: list[str], k: int) -> SearchResult:
    """Top-k disjunctive evaluation with MaxScore pruning."""
    if k < 1:
        raise ValueError("k must be positive")
    cursors = _prepare_cursors(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not cursors:
        return SearchResult(hits=[], cost=cost)

    n = len(cursors)
    # prefix[i] = sum of upper bounds of cursors[0..i] (ascending order).
    prefix = [0.0] * n
    acc = 0.0
    for i, cursor in enumerate(cursors):
        acc += cursor.upper_bound
        prefix[i] = acc

    while True:
        threshold = collector.threshold()
        # Essential boundary: the smallest index whose cumulative bound can
        # still tie the threshold (ties can enter, so >= not >).
        first_essential = n
        for i in range(n):
            if prefix[i] >= threshold:
                first_essential = i
                break
        if first_essential >= n:
            break  # even all lists together cannot reach the threshold

        candidate = END_OF_LIST
        for cursor in cursors[first_essential:]:
            doc = cursor.doc()
            if doc < candidate:
                candidate = doc
        if candidate == END_OF_LIST:
            break

        score = 0.0
        for cursor in cursors[first_essential:]:
            if cursor.doc() == candidate:
                score += cursor.score()
                cost.postings_scored += 1
                cursor.next()

        # Probe non-essential lists from the largest bound down; abandon as
        # soon as the remaining bounds cannot lift the score to the bar.
        abandoned = False
        for j in range(first_essential - 1, -1, -1):
            if score + prefix[j] < threshold:
                abandoned = True
                break
            cursor = cursors[j]
            before = cursor.position
            doc = cursor.next_geq(candidate)
            cost.postings_skipped += cursor.position - before
            if doc == candidate:
                score += cursor.score()
                cost.postings_scored += 1
                cursor.next()
        cost.docs_evaluated += 1
        if not abandoned:
            collector.offer(candidate, score)

    return SearchResult(hits=collector.results(), cost=cost)
