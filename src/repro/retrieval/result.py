"""Search results and evaluation cost accounting."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostStats:
    """What a query evaluation cost on one shard.

    These counters feed two places: the service-time model of the cluster
    simulator (more work scored -> longer service time) and the paper's
    C_RES resource metric (documents searched across used ISNs, Fig. 15d).
    """

    docs_evaluated: int = 0
    postings_scored: int = 0
    postings_skipped: int = 0
    n_terms: int = 0

    def merge(self, other: "CostStats") -> None:
        self.docs_evaluated += other.docs_evaluated
        self.postings_scored += other.postings_scored
        self.postings_skipped += other.postings_skipped
        self.n_terms = max(self.n_terms, other.n_terms)


@dataclass
class SearchResult:
    """Ranked hits from one shard (or from a merge of shards).

    ``hits`` is ordered best-first: descending score, ascending doc id on
    ties — the deterministic order every evaluator in this package
    produces.
    """

    hits: list[tuple[int, float]] = field(default_factory=list)
    cost: CostStats = field(default_factory=CostStats)

    def doc_ids(self) -> list[int]:
        return [doc_id for doc_id, _ in self.hits]

    def __len__(self) -> int:
        return len(self.hits)


def merge_results(results: list[SearchResult], k: int) -> SearchResult:
    """Aggregator-side merge: global top-k over per-shard top-k lists.

    Scores are globally comparable because every shard uses the same
    similarity over its own collection statistics — the same assumption
    Solr's distributed search makes.  Costs are summed, which makes the
    merged ``docs_evaluated`` exactly C_RES.
    """
    merged: list[tuple[int, float]] = []
    total = CostStats()
    for result in results:
        merged.extend(result.hits)
        total.merge(result.cost)
    merged.sort(key=lambda hit: (-hit[1], hit[0]))
    return SearchResult(hits=merged[:k], cost=total)
