"""Search results and evaluation cost accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.retrieval.topk import TopKCollector


@dataclass
class CostStats:
    """What a query evaluation cost on one shard.

    These counters feed two places: the service-time model of the cluster
    simulator (more work scored -> longer service time) and the paper's
    C_RES resource metric (documents searched across used ISNs, Fig. 15d).
    """

    docs_evaluated: int = 0
    postings_scored: int = 0
    postings_skipped: int = 0
    n_terms: int = 0

    def merge(self, other: "CostStats") -> None:
        self.docs_evaluated += other.docs_evaluated
        self.postings_scored += other.postings_scored
        self.postings_skipped += other.postings_skipped
        self.n_terms = max(self.n_terms, other.n_terms)


@dataclass
class SearchResult:
    """Ranked hits from one shard (or from a merge of shards).

    ``hits`` is ordered best-first: descending score, ascending doc id on
    ties — the deterministic order every evaluator in this package
    produces.
    """

    hits: list[tuple[int, float]] = field(default_factory=list)
    cost: CostStats = field(default_factory=CostStats)

    def doc_ids(self) -> list[int]:
        return [doc_id for doc_id, _ in self.hits]

    def fingerprint(self) -> str:
        """Canonical byte-for-byte identity: hits (full float repr) + cost.

        Two results with the same fingerprint are interchangeable
        everywhere downstream; the executor determinism tests compare
        serial and parallel runs on exactly this.
        """
        hit_part = ";".join(f"{doc}:{score!r}" for doc, score in self.hits)
        cost = self.cost
        return (
            f"{hit_part}|{cost.docs_evaluated},{cost.postings_scored},"
            f"{cost.postings_skipped},{cost.n_terms}"
        )

    def __len__(self) -> int:
        return len(self.hits)


def merge_results(results: list[SearchResult], k: int) -> SearchResult:
    """Aggregator-side merge: global top-k over per-shard top-k lists.

    Scores are globally comparable because every shard uses the same
    similarity over its own collection statistics — the same assumption
    Solr's distributed search makes.  Costs are summed, which makes the
    merged ``docs_evaluated`` exactly C_RES.

    The merge is order-independent for the hits: the ``TopKCollector``
    orders by the total key ``(-score, doc id)``, so shuffling the input
    lists (e.g. results gathered from a thread-pool fan-out) cannot
    change the output.  Cost counters are summed — commutative in every
    field — so the merged result is bit-identical however the per-shard
    results were produced.
    """
    total = CostStats()
    collector = TopKCollector(k)
    for result in results:
        total.merge(result.cost)
        collector.offer_all(result.hits)
    return SearchResult(hits=collector.results(), cost=total)
