"""Query evaluation: exhaustive, MaxScore and WAND top-k retrieval.

All evaluators share the same deterministic tie-break (descending score,
ascending doc id), so the three strategies return identical hit lists and
differ only in cost — the property the test suite checks exhaustively.
"""

from repro.retrieval.block_max_wand import block_max_wand_search
from repro.retrieval.conjunctive import conjunctive_search
from repro.retrieval.executor import (
    BatchExecutor,
    FanoutStats,
    ParallelExecutor,
    SerialExecutor,
    ShardExecutor,
    make_executor,
    prewarm_searchers,
)
from repro.retrieval.exhaustive import exhaustive_search, exhaustive_search_daat
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.query import Query, QueryTrace
from repro.retrieval.result import CostStats, SearchResult, merge_results
from repro.retrieval.searcher import (
    STRATEGIES,
    DistributedSearcher,
    SearcherCacheStats,
    ShardSearcher,
)
from repro.retrieval.topk import TopKCollector
from repro.retrieval.wand import wand_search

__all__ = [
    "Query",
    "QueryTrace",
    "TopKCollector",
    "SearchResult",
    "CostStats",
    "merge_results",
    "exhaustive_search",
    "exhaustive_search_daat",
    "maxscore_search",
    "wand_search",
    "block_max_wand_search",
    "conjunctive_search",
    "ShardSearcher",
    "SearcherCacheStats",
    "DistributedSearcher",
    "STRATEGIES",
    "ShardExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "BatchExecutor",
    "FanoutStats",
    "make_executor",
    "prewarm_searchers",
]
