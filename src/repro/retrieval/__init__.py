"""Query evaluation: exhaustive, MaxScore and WAND top-k retrieval.

All evaluators share the same deterministic tie-break (descending score,
ascending doc id), so the strategies return identical hit lists and
differ only in cost — the property the test suite checks exhaustively.
Each pruning strategy exists twice: a cursor-based scalar reference
(``*_search``, registered as ``<name>_reference`` in ``STRATEGIES``) and
a vectorized arena kernel (``*_search_kernel``, the ``STRATEGIES``
default) that is bit-identical to it in hits, scores, tie order and
``CostStats`` counters.
"""

from repro.retrieval.block_max_wand import block_max_wand_search
from repro.retrieval.conjunctive import conjunctive_search
from repro.retrieval.executor import (
    BatchExecutor,
    FanoutStats,
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ShardSearchTask,
    make_executor,
    prewarm_searchers,
)
from repro.retrieval.exhaustive import exhaustive_search, exhaustive_search_daat
from repro.retrieval.kernels import (
    DEFAULT_CHUNK,
    KernelStats,
    block_max_wand_search_kernel,
    conjunctive_search_kernel,
    maxscore_search_kernel,
    wand_search_kernel,
)
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.query import Query, QueryTrace
from repro.retrieval.result import CostStats, SearchResult, merge_results
from repro.retrieval.searcher import (
    KERNEL_STRATEGIES,
    STRATEGIES,
    DistributedSearcher,
    FixedSelector,
    SearcherCacheStats,
    ShardSearcher,
    StrategyChoice,
    StrategySelector,
)
from repro.retrieval.topk import TopKCollector
from repro.retrieval.wand import wand_search

__all__ = [
    "Query",
    "QueryTrace",
    "TopKCollector",
    "SearchResult",
    "CostStats",
    "merge_results",
    "exhaustive_search",
    "exhaustive_search_daat",
    "maxscore_search",
    "wand_search",
    "block_max_wand_search",
    "conjunctive_search",
    "maxscore_search_kernel",
    "wand_search_kernel",
    "block_max_wand_search_kernel",
    "conjunctive_search_kernel",
    "KernelStats",
    "KERNEL_STRATEGIES",
    "DEFAULT_CHUNK",
    "ShardSearcher",
    "SearcherCacheStats",
    "DistributedSearcher",
    "StrategyChoice",
    "StrategySelector",
    "FixedSelector",
    "STRATEGIES",
    "ShardExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "BatchExecutor",
    "ShardSearchTask",
    "FanoutStats",
    "make_executor",
    "prewarm_searchers",
]
