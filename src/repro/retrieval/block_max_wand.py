"""Block-Max WAND (Ding & Suel, SIGIR'11).

WAND's pivot test uses per-term *global* score upper bounds, which are
loose: one outlier posting inflates the bound for the whole list.  BMW
refines the test with per-block maxima: after WAND's global bound selects
a pivot, the *block* bounds around the pivot document decide whether it
can really enter the top-k.  When they cannot, the evaluator jumps past
the shallowest block boundary — skipping entire blocks at a time.

The paper's Section III-C cites exactly this family of "block-max index"
pruning as the reason query service time is hard to predict from posting
length alone; this implementation lets the cost model, the latency
predictor and the benchmarks exercise that regime.
"""

from __future__ import annotations

from repro.index.postings import END_OF_LIST, PostingCursor
from repro.index.shard import BLOCK_SIZE, IndexShard
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector


def _prepare_cursors(shard: IndexShard, terms: list[str]) -> list[PostingCursor]:
    cursors = []
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            continue
        cursor = entry.postings.cursor()
        cursor.scores = entry.scores
        cursor.upper_bound = entry.upper_bound
        cursor.block_maxes = entry.block_maxes
        cursor.block_size = BLOCK_SIZE
        cursors.append(cursor)
    return cursors


def block_max_wand_search(
    shard: IndexShard, terms: list[str], k: int
) -> SearchResult:
    """Top-k disjunctive evaluation with Block-Max WAND pruning."""
    if k < 1:
        raise ValueError("k must be positive")
    cursors = _prepare_cursors(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not cursors:
        return SearchResult(hits=[], cost=cost)

    while True:
        cursors.sort(key=lambda c: c.doc())
        if cursors[0].doc() == END_OF_LIST:
            break
        threshold = collector.threshold()

        # Stage 1 — WAND pivot from global upper bounds.
        acc = 0.0
        pivot_idx = -1
        for i, cursor in enumerate(cursors):
            if cursor.doc() == END_OF_LIST:
                break
            acc += cursor.upper_bound
            if acc >= threshold:
                pivot_idx = i
                break
        if pivot_idx < 0:
            break
        pivot_doc = cursors[pivot_idx].doc()

        # Align every cursor at or before the pivot onto pivot_doc first;
        # the block test needs their blocks *at* the pivot.
        if cursors[0].doc() != pivot_doc:
            cursor = cursors[0]
            before = cursor.position
            cursor.next_geq(pivot_doc)
            cost.postings_skipped += cursor.position - before
            continue

        # Stage 2 — refine with block maxima.  The pivot set is every
        # cursor currently on pivot_doc (cursors are sorted and the first
        # one is on pivot_doc, so the set is a prefix that may extend past
        # pivot_idx on ties).
        pivot_set_end = 0
        while pivot_set_end < len(cursors) and cursors[pivot_set_end].doc() == pivot_doc:
            pivot_set_end += 1
        pivot_set = cursors[:pivot_set_end]

        block_ub = sum(cursor.block_max() for cursor in pivot_set)
        if block_ub >= threshold:
            score = 0.0
            for cursor in pivot_set:
                score += cursor.score()
                cost.postings_scored += 1
                cursor.next()
            cost.docs_evaluated += 1
            collector.offer(pivot_doc, score)
        else:
            # The pivot set's blocks cannot produce a top-k document: skip
            # to just past the shallowest block boundary — but no further
            # than the first document where a list outside the pivot set
            # joins in (its score is not covered by the failing bound).
            boundary = min(cursor.block_last_doc() for cursor in pivot_set)
            target = max(boundary, pivot_doc) + 1
            if pivot_set_end < len(cursors):
                next_doc = cursors[pivot_set_end].doc()
                if next_doc != END_OF_LIST:
                    target = min(target, next_doc)
            target = max(target, pivot_doc + 1)
            for cursor in pivot_set:
                if cursor.doc() < target:
                    before = cursor.position
                    cursor.next_geq(target)
                    cost.postings_skipped += cursor.position - before

    return SearchResult(hits=collector.results(), cost=cost)
