"""Conjunctive (AND) evaluation.

Web engines run strict intersections for quoted/advanced queries and as a
first pass before falling back to disjunction.  The evaluator zig-zags the
query's cursors: repeatedly advance the lagging cursor to the current
candidate with ``next_geq`` until all lists agree, which costs
O(shortest-list x log) rather than touching every posting.
"""

from __future__ import annotations

from repro.index.postings import END_OF_LIST
from repro.index.shard import IndexShard
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector


def conjunctive_search(shard: IndexShard, terms: list[str], k: int) -> SearchResult:
    """Top-k over documents containing *every* query term."""
    if k < 1:
        raise ValueError("k must be positive")
    cost = CostStats(n_terms=len(terms))
    if not terms:
        return SearchResult(hits=[], cost=cost)

    cursors = []
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            return SearchResult(hits=[], cost=cost)  # a missing term empties the AND
        cursor = entry.postings.cursor()
        cursor.scores = entry.scores
        cursors.append(cursor)
    # Drive the intersection from the rarest term: fewest candidates.
    cursors.sort(key=lambda c: c.remaining())

    collector = TopKCollector(k)
    candidate = cursors[0].doc()
    while candidate != END_OF_LIST:
        aligned = True
        for cursor in cursors[1:]:
            before = cursor.position
            doc = cursor.next_geq(candidate)
            cost.postings_skipped += cursor.position - before
            if doc != candidate:
                # Candidate dies; restart from the driver at doc (or past
                # the candidate when the other list overshot forever).
                aligned = False
                target = doc if doc != END_OF_LIST else candidate + 1
                before = cursors[0].position
                candidate = cursors[0].next_geq(target)
                cost.postings_skipped += cursors[0].position - before
                break
        if not aligned:
            if any(cursor.exhausted() for cursor in cursors):
                break
            continue
        score = 0.0
        for cursor in cursors:
            score += cursor.score()
            cost.postings_scored += 1
        cost.docs_evaluated += 1
        collector.offer(candidate, score)
        candidate = cursors[0].next()

    return SearchResult(hits=collector.results(), cost=cost)
