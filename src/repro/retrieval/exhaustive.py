"""Exhaustive disjunctive evaluation.

Scores every document containing at least one query term.  This is the
paper's baseline policy and also the source of all quality ground truth
(an ISN's "quality" is how many of its documents reach the exhaustive
global top-K).  Two implementations are provided: a vectorized one (fast
path, used everywhere) and a cursor-based reference used by property tests
to cross-check the DAAT machinery.
"""

from __future__ import annotations

import numpy as np

from repro.index.postings import END_OF_LIST
from repro.index.shard import IndexShard
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector


def exhaustive_search(shard: IndexShard, terms: list[str], k: int) -> SearchResult:
    """Vectorized full evaluation of a disjunctive query on one shard."""
    if k < 1:
        raise ValueError("k must be positive")
    doc_arrays = []
    score_arrays = []
    n_postings = 0
    n_terms = 0
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            continue
        n_terms += 1
        doc_arrays.append(entry.postings.doc_ids)
        score_arrays.append(entry.scores)
        n_postings += len(entry.postings)
    if not doc_arrays:
        return SearchResult(hits=[], cost=CostStats(n_terms=len(terms)))

    all_docs = np.concatenate(doc_arrays)
    all_scores = np.concatenate(score_arrays)
    unique_docs, inverse = np.unique(all_docs, return_inverse=True)
    totals = np.zeros(unique_docs.size, dtype=np.float64)
    np.add.at(totals, inverse, all_scores)

    top = min(k, unique_docs.size)
    # argsort on (-score, doc_id): lexsort keys are (secondary, primary).
    order = np.lexsort((unique_docs, -totals))[:top]
    hits = [(int(unique_docs[i]), float(totals[i])) for i in order]
    cost = CostStats(
        docs_evaluated=int(unique_docs.size),
        postings_scored=n_postings,
        postings_skipped=0,
        n_terms=len(terms),
    )
    return SearchResult(hits=hits, cost=cost)


def exhaustive_search_daat(shard: IndexShard, terms: list[str], k: int) -> SearchResult:
    """Cursor-based reference implementation (slow, for cross-checking)."""
    if k < 1:
        raise ValueError("k must be positive")
    cursors = []
    for term in terms:
        entry = shard.term(term)
        if entry is None:
            continue
        cursor = entry.postings.cursor()
        cursor.scores = entry.scores
        cursors.append(cursor)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    while True:
        current = min((c.doc() for c in cursors), default=END_OF_LIST)
        if current == END_OF_LIST:
            break
        score = 0.0
        for cursor in cursors:
            if cursor.doc() == current:
                score += cursor.score()
                cost.postings_scored += 1
                cursor.next()
        cost.docs_evaluated += 1
        collector.offer(current, score)
    return SearchResult(hits=collector.results(), cost=cost)
