"""Vectorized retrieval kernels over the columnar postings arena.

These are drop-in replacements for the cursor-based evaluators — same
hits, same scores (bit for bit, including float-summation order), same
tie-breaks, and the same ``CostStats`` counters — that replace the
per-posting Python loops with numpy work on the arena columns of
:class:`~repro.index.arena.PostingsArena`.

**MaxScore** (:func:`maxscore_search_kernel`) is chunk-scored: candidate
doc ids are pulled from the essential lists a block at a time, whole
blocks are scored with ``searchsorted`` + masked gathers, and
non-essential lists are probed level-by-level with vectorized lookups.
The only inherently sequential step is the collector offer, because each
accepted document can raise the top-k threshold that the *next*
document's pruning decisions depend on.  A batch is therefore consumed
in *segments*: between two threshold changes every pruning decision is a
pure function of the constant threshold, so each segment re-runs only
the cheap vectorized abandonment cascade over a window of remaining
candidates and replays offers until the threshold moves, at which point
the next segment restarts the cascade under the new bar.  The expensive
work — candidate-union construction and essential scoring — happens once
per batch; only an *essential-split* change (the threshold crossing an
upper-bound prefix sum, at most once per query term) invalidates the
candidate stream itself, truncating the batch and rolling list positions
back to exactly where the scalar loop would stand.  This makes the
pruning behaviour — ``postings_scored``, ``postings_skipped``,
``docs_evaluated`` — independent of chunk and window size and
byte-identical to the reference (a property the test suite checks by
sweeping chunk sizes down to 1).  Offers whose score cannot beat a full
heap's threshold are provable no-ops and are pre-filtered away; queries
whose posting lists are too short to amortize numpy-call overhead
dispatch to the scalar reference outright (bit-identical by contract).

**WAND**, **Block-Max WAND** and **conjunctive** pruning decisions are
per-document sequential (every pivot selection/zig-zag step depends on
the cursor moved by the previous one), so their kernels keep the
reference control flow but run it over raw arena columns: current doc
ids are cached as Python ints (one boxing per position change instead of
one per access), skips are a single ``searchsorted`` over the list tail,
and no per-query cursor objects or score attachments are allocated.

Float bit-identity holds because every kernel performs the exact same
sequence of float64 additions per document accumulator as its reference
— numpy element-wise adds and Python float adds are the same IEEE-754
operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.arena import TermRun
from repro.index.postings import END_OF_LIST
from repro.index.shard import IndexShard
from repro.retrieval.maxscore import maxscore_search
from repro.retrieval.result import CostStats, SearchResult
from repro.retrieval.topk import TopKCollector

__all__ = [
    "KernelStats",
    "DEFAULT_CHUNK",
    "maxscore_search_kernel",
    "wand_search_kernel",
    "block_max_wand_search_kernel",
    "conjunctive_search_kernel",
]

DEFAULT_CHUNK = 4096
"""Cap on postings pulled per essential list per scoring block (MaxScore).

The kernel adapts the live block size inside ``[_MIN_CHUNK, chunk]``: it
halves after a batch truncated by an essential-split change (the
discarded tail was wasted work) and doubles after a batch that ran to
completion.  Exactness is chunk-size independent — the equivalence suite
sweeps fixed sizes down to 1 — so adaptivity is purely a throughput
knob.
"""

_MIN_CHUNK = 32

#: Candidate-window bounds per segment of a MaxScore batch.  Between two
#: threshold changes the cascade's work on candidates past the change
#: point is discarded, so segments look at a bounded window rather than
#: the whole remaining batch, and the window adapts the same way the
#: chunk does: halve when a threshold move truncates the segment, double
#: when a window completes clean.  Exactness is window-independent.
_SEG_WINDOW_MIN = 32
_SEG_WINDOW_MAX = 512

#: Below this many total query postings the scalar reference outruns the
#: kernel (fixed numpy-call overhead dominates short lists); since both
#: are bit-identical, MaxScore dispatches on size without observable
#: effect.
_KERNEL_MIN_POSTINGS = 2048

_INT64_MAX = int(np.iinfo(np.int64).max)

_NEG_INF = float("-inf")


@dataclass
class KernelStats:
    """Optional per-call kernel instrumentation (telemetry counters).

    ``chunks`` counts vectorized scoring segments, ``offers`` the
    sequential collector offers actually performed (the scalar fallback
    the chunked kernels cannot avoid, after no-op pre-filtering), and
    ``threshold_restarts`` how many segments were cut short because an
    offer moved the top-k threshold.
    """

    chunks: int = 0
    offers: int = 0
    threshold_restarts: int = 0


def _sorted_runs(shard: IndexShard, terms: list[str]) -> list[TermRun]:
    """Term runs sorted by upper bound ascending (MaxScore/WAND order).

    Mirrors ``maxscore._prepare_cursors``: query-term order, missing
    terms skipped, then a stable sort so upper-bound ties keep query
    order — the order the reference sums scores in.
    """
    arena = shard.arena
    runs = [run for run in (arena.run(term) for term in terms) if run is not None]
    runs.sort(key=lambda run: run.upper_bound)
    return runs


def _term_order_runs(shard: IndexShard, terms: list[str]) -> list[TermRun]:
    """Term runs in query order (Block-Max WAND's cursor order)."""
    arena = shard.arena
    return [run for run in (arena.run(term) for term in terms) if run is not None]


def _advance_geq(run: TermRun, target: int) -> int:
    """``PostingCursor.next_geq`` over a run: same landing position, one
    ``searchsorted`` over the remaining tail instead of a Python gallop."""
    pos = run.pos
    if pos >= run.size:
        return END_OF_LIST
    doc = int(run.doc_ids[pos])
    if doc >= target:
        return doc
    pos += int(run.doc_ids[pos:].searchsorted(target, side="left"))
    run.pos = pos
    if pos >= run.size:
        return END_OF_LIST
    return int(run.doc_ids[pos])


# --------------------------------------------------------------- MaxScore
def maxscore_search_kernel(
    shard: IndexShard,
    terms: list[str],
    k: int,
    chunk: int = DEFAULT_CHUNK,
    stats: KernelStats | None = None,
    min_postings: int = _KERNEL_MIN_POSTINGS,
) -> SearchResult:
    """Chunk-scored MaxScore, bit-identical to :func:`~repro.retrieval.
    maxscore.maxscore_search` in hits, scores and cost counters.

    ``min_postings`` sets the scalar-dispatch floor (tests pass 0 to
    force the vectorized path on small corpora).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if chunk < 1:
        raise ValueError("chunk must be positive")
    runs = _sorted_runs(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not runs:
        return SearchResult(hits=[], cost=cost)
    if min_postings and sum(run.size for run in runs) < min_postings:  # simlint: disable=FLOAT-ORDER -- integer posting count, order-insensitive
        # Tiny workloads are dominated by per-batch numpy overhead; the
        # scalar loop is faster there and bit-identical by contract, so
        # dispatching on size cannot change any observable result.
        return maxscore_search(shard, terms, k)

    n = len(runs)
    # prefix[i] = sum of upper bounds of runs[0..i], accumulated exactly
    # like the reference (Python float adds) so boundary comparisons match.
    prefix = [0.0] * n
    acc = 0.0
    for i, run in enumerate(runs):
        acc += run.upper_bound
        prefix[i] = acc

    # Adaptive block size: an essential-split change truncates the batch
    # and throws the vectorized tail away, so start small, halve after a
    # truncated batch and double after a clean one ([lo_chunk, chunk]).
    lo_chunk = chunk if chunk < _MIN_CHUNK else _MIN_CHUNK
    cur = lo_chunk

    offer = collector.offer
    get_threshold = collector.threshold
    threshold = get_threshold()
    win = _SEG_WINDOW_MIN

    while True:
        first_essential = n
        for i in range(n):
            if prefix[i] >= threshold:
                first_essential = i
                break
        if first_essential >= n:
            break  # even all lists together cannot reach the threshold

        fe = first_essential
        essential = runs[fe:]

        # ---- candidate block: the next `cur` postings of every
        # essential list, truncated to the smallest per-list horizon so
        # no document <= bound can be missing from the union.
        bound = _INT64_MAX
        slices = []
        for run in essential:
            lo = run.pos
            hi = lo + cur
            if hi > run.size:
                hi = run.size
            sl = run.doc_ids[lo:hi]
            slices.append(sl)
            if hi < run.size and sl.size:
                last = int(sl[-1])
                if last < bound:
                    bound = last

        if len(slices) == 1:
            # Single essential list: the slice is already sorted and
            # unique, and each candidate's essential score is the aligned
            # entry of the run's score column (a zero-copy view — it is
            # never mutated, segments copy the suffix they need).
            candidates = slices[0]
            if bound != _INT64_MAX:
                candidates = candidates[
                    : int(np.searchsorted(candidates, bound, side="right"))
                ]
            m = int(candidates.size)
            if m == 0:
                break  # the only essential list is exhausted
            run0 = essential[0]
            ess_scores = run0.scores[run0.pos : run0.pos + m]
            scored_cnt = np.ones(m, dtype=np.int64) if fe else None
        else:
            merged = np.concatenate(slices)
            if merged.size == 0:
                break  # every essential list exhausted: no candidate exists
            # sort + adjacent-compare dedup (cheaper than np.unique's
            # hash path on these small blocks).
            merged.sort()
            keep = np.empty(merged.size, dtype=bool)
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            candidates = merged[keep]
            if bound != _INT64_MAX:
                candidates = candidates[
                    : int(np.searchsorted(candidates, bound, side="right"))
                ]
            m = int(candidates.size)

            ess_scores = np.zeros(m, dtype=np.float64)
            scored_cnt = np.zeros(m, dtype=np.int64)

            # ---- essential scoring: whole slices at once, run by run in
            # ascending-upper-bound order (the reference's summation order).
            for run, sl in zip(essential, slices):
                end = (
                    int(np.searchsorted(sl, bound, side="right"))
                    if bound != _INT64_MAX
                    else int(sl.size)
                )
                if end:
                    idx = np.searchsorted(candidates, sl[:end])
                    ess_scores[idx] += run.scores[run.pos : run.pos + end]
                    scored_cnt[idx] += 1

        # ---- segment loop.  One batch is consumed in segments: between
        # two threshold changes every pruning decision the scalar makes is
        # a pure function of the (constant) threshold, so each segment
        # re-runs the vectorized non-essential cascade over the remaining
        # suffix and replays offers until the threshold moves again.  The
        # expensive part — candidate union + essential scoring — happens
        # once per batch; only an *essential-split* change (threshold
        # crossing a prefix bound, at most n times per query) invalidates
        # the candidate stream itself and truncates the batch.
        ne_base = [runs[j].pos for j in range(fe)]
        ne_scored = 0
        seg_start = 0
        stop = m - 1
        truncated = False
        offers_done = 0
        segments = 0
        restarts = 0
        while seg_start < m:
            fe_now = n
            for i in range(n):
                if prefix[i] >= threshold:
                    fe_now = i
                    break
            if fe_now != fe:
                stop = seg_start - 1
                truncated = True
                break

            segments += 1
            # Windowed suffix: the threshold usually moves again within a
            # few dozen candidates, so cascading the whole remaining
            # suffix would mostly be discarded — cap the segment at
            # `win` candidates (exactness is window-independent, like
            # chunk-independence).
            seg_end = seg_start + win
            if seg_end > m:
                seg_end = m
            cand_suf = candidates[seg_start:seg_end]

            # Non-essential cascade, largest bound first: one vectorized
            # probe per level over the suffix candidates still alive.
            seg_records: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
            alive = None
            if fe:
                seg_scores = ess_scores[seg_start:seg_end].copy()
                for j in range(fe - 1, -1, -1):
                    run = runs[j]
                    cond = seg_scores + prefix[j] >= threshold
                    if alive is None:
                        alive = cond
                    else:
                        alive &= cond
                    probe_rel = alive.nonzero()[0]
                    if probe_rel.size == 0:
                        break  # alive only shrinks: deeper levels are dead
                    cand_j = cand_suf[probe_rel]
                    pj = ne_base[j]
                    lands = pj + run.doc_ids[pj:].searchsorted(cand_j, side="left")
                    match = run.doc_ids[np.minimum(lands, run.size - 1)] == cand_j
                    match &= lands < run.size
                    if match.any():
                        seg_scores[probe_rel[match]] += run.scores[lands[match]]
                    seg_records.append((j, probe_rel, lands, match))
            else:
                seg_scores = ess_scores[seg_start:seg_end]

            # Offers in doc order.  With a full heap an offer whose score
            # is below the threshold is a guaranteed no-op rejection —
            # (score, -doc) cannot beat (threshold, -top_doc) — so those
            # calls are pre-filtered, leaving the collector bit-identical.
            if threshold != _NEG_INF:
                eligible = seg_scores >= threshold
                if alive is not None:
                    eligible &= alive
                offer_rel = eligible.nonzero()[0]
            else:
                # Heap not yet full: threshold == -inf forces fe == 0 (no
                # non-essential lists) and every offer can enter.
                offer_rel = None

            seg_stop_rel = int(cand_suf.size) - 1
            changed = False
            for i in range(cand_suf.size) if offer_rel is None else offer_rel:
                offer(int(cand_suf[i]), float(seg_scores[i]))
                offers_done += 1
                new_threshold = get_threshold()
                if new_threshold != threshold:
                    threshold = new_threshold
                    i = int(i)
                    if seg_start + i < m - 1:
                        changed = True
                        seg_stop_rel = i
                    break

            # Per-segment non-essential counters and probe-base advance,
            # truncated at the segment's last processed candidate.
            for j, probe_rel, lands, match in seg_records:
                r = (
                    int(probe_rel.size)
                    if not changed
                    else int(probe_rel.searchsorted(seg_stop_rel, side="right"))
                )
                if r == 0:
                    continue  # no surviving candidate processed this level
                last = r - 1
                matched = int(np.count_nonzero(match[:r]))
                last_match = int(match[last])
                cost.postings_skipped += (
                    int(lands[last]) - ne_base[j] - (matched - last_match)
                )
                ne_base[j] = int(lands[last]) + last_match
                ne_scored += matched
            if changed:
                restarts += 1
                seg_start = seg_start + seg_stop_rel + 1
                if win > _SEG_WINDOW_MIN:
                    win >>= 1
            else:
                if win < _SEG_WINDOW_MAX:
                    win <<= 1
                if seg_end >= m:
                    break  # final window processed: the batch is complete
                seg_start = seg_end  # window done, threshold unchanged

        # ---- counters and cursor positions up to the stopping candidate.
        if stop >= 0:
            stop_doc = int(candidates[stop])
            cost.docs_evaluated += stop + 1
            cost.postings_scored += ne_scored + (
                stop + 1 if scored_cnt is None else int(scored_cnt[: stop + 1].sum())
            )
            for run in essential:
                p0 = run.pos
                run.pos = p0 + int(
                    np.searchsorted(run.doc_ids[p0:], stop_doc, side="right")
                )
            for j in range(fe):
                runs[j].pos = ne_base[j]
        if stats is not None:
            stats.chunks += segments
            stats.offers += offers_done
            stats.threshold_restarts += restarts + (1 if truncated else 0)
        cur = (cur >> 1) if truncated else (cur << 1)
        if cur < lo_chunk:
            cur = lo_chunk
        elif cur > chunk:
            cur = chunk

    return SearchResult(hits=collector.results(), cost=cost)


# ------------------------------------------------------------------- WAND
def wand_search_kernel(
    shard: IndexShard,
    terms: list[str],
    k: int,
    stats: KernelStats | None = None,
) -> SearchResult:
    """Arena-backed WAND, bit-identical to :func:`~repro.retrieval.wand.
    wand_search`.

    WAND's pivot selection is inherently per-document sequential — each
    pivot depends on the cursor the previous iteration moved — so there
    is no chunk to score.  The kernel instead strips the per-posting
    overhead: doc ids are cached as ints, the cursor re-sort runs on
    plain ints, and skips are single tail ``searchsorted`` calls.
    """
    if k < 1:
        raise ValueError("k must be positive")
    runs = _sorted_runs(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not runs:
        return SearchResult(hits=[], cost=cost)

    docs = [int(run.doc_ids[0]) if run.size else END_OF_LIST for run in runs]
    ubs = [run.upper_bound for run in runs]
    order = list(range(len(runs)))

    while True:
        order.sort(key=docs.__getitem__)  # stable: mirrors cursors.sort
        if docs[order[0]] == END_OF_LIST:
            break
        threshold = collector.threshold()

        acc = 0.0
        pivot_at = -1
        for oi in range(len(order)):
            i = order[oi]
            if docs[i] == END_OF_LIST:
                break
            acc += ubs[i]
            if acc >= threshold:
                pivot_at = oi
                break
        if pivot_at < 0:
            break
        pivot_doc = docs[order[pivot_at]]

        if docs[order[0]] == pivot_doc:
            score = 0.0
            for i in order:
                if docs[i] != pivot_doc:
                    break
                run = runs[i]
                score += float(run.scores[run.pos])
                cost.postings_scored += 1
                run.pos += 1
                docs[i] = (
                    int(run.doc_ids[run.pos])
                    if run.pos < run.size
                    else END_OF_LIST
                )
            cost.docs_evaluated += 1
            collector.offer(pivot_doc, score)
            if stats is not None:
                stats.offers += 1
        else:
            i = order[0]
            run = runs[i]
            before = run.pos
            docs[i] = _advance_geq(run, pivot_doc)
            cost.postings_skipped += run.pos - before

    return SearchResult(hits=collector.results(), cost=cost)


# --------------------------------------------------------- Block-Max WAND
def block_max_wand_search_kernel(
    shard: IndexShard,
    terms: list[str],
    k: int,
    stats: KernelStats | None = None,
) -> SearchResult:
    """Arena-backed Block-Max WAND, bit-identical to
    :func:`~repro.retrieval.block_max_wand.block_max_wand_search`."""
    if k < 1:
        raise ValueError("k must be positive")
    runs = _term_order_runs(shard, terms)
    collector = TopKCollector(k)
    cost = CostStats(n_terms=len(terms))
    if not runs:
        return SearchResult(hits=[], cost=cost)

    docs = [int(run.doc_ids[0]) if run.size else END_OF_LIST for run in runs]
    ubs = [run.upper_bound for run in runs]
    order = list(range(len(runs)))
    block_size = runs[0].block_size

    while True:
        order.sort(key=docs.__getitem__)
        if docs[order[0]] == END_OF_LIST:
            break
        threshold = collector.threshold()

        # Stage 1 — WAND pivot from global upper bounds.
        acc = 0.0
        pivot_at = -1
        for oi in range(len(order)):
            i = order[oi]
            if docs[i] == END_OF_LIST:
                break
            acc += ubs[i]
            if acc >= threshold:
                pivot_at = oi
                break
        if pivot_at < 0:
            break
        pivot_doc = docs[order[pivot_at]]

        if docs[order[0]] != pivot_doc:
            i = order[0]
            run = runs[i]
            before = run.pos
            docs[i] = _advance_geq(run, pivot_doc)
            cost.postings_skipped += run.pos - before
            continue

        # Stage 2 — refine with block maxima over the pivot set (the
        # prefix of cursors sitting on pivot_doc).
        pivot_end = 0
        while pivot_end < len(order) and docs[order[pivot_end]] == pivot_doc:
            pivot_end += 1
        pivot_set = order[:pivot_end]

        # Explicit left-to-right accumulation in pivot-set order: the
        # upper bound must add up exactly like the reference's walk.
        block_ub = 0.0
        for i in pivot_set:
            run = runs[i]
            block_ub += float(run.block_maxes[run.pos // block_size])
        if block_ub >= threshold:
            score = 0.0
            for i in pivot_set:
                run = runs[i]
                score += float(run.scores[run.pos])
                cost.postings_scored += 1
                run.pos += 1
                docs[i] = (
                    int(run.doc_ids[run.pos])
                    if run.pos < run.size
                    else END_OF_LIST
                )
            cost.docs_evaluated += 1
            collector.offer(pivot_doc, score)
            if stats is not None:
                stats.offers += 1
        else:
            boundary = _INT64_MAX
            for i in pivot_set:
                run = runs[i]
                block = run.pos // block_size
                end = min((block + 1) * block_size, run.size) - 1
                last_doc = int(run.doc_ids[end])
                if last_doc < boundary:
                    boundary = last_doc
            target = max(boundary, pivot_doc) + 1
            if pivot_end < len(order):
                next_doc = docs[order[pivot_end]]
                if next_doc != END_OF_LIST:
                    target = min(target, next_doc)
            target = max(target, pivot_doc + 1)
            for i in pivot_set:
                if docs[i] < target:
                    run = runs[i]
                    before = run.pos
                    docs[i] = _advance_geq(run, target)
                    cost.postings_skipped += run.pos - before

    return SearchResult(hits=collector.results(), cost=cost)


# ------------------------------------------------------------ conjunctive
def conjunctive_search_kernel(
    shard: IndexShard,
    terms: list[str],
    k: int,
    stats: KernelStats | None = None,
) -> SearchResult:
    """Galloping arena intersection, bit-identical to
    :func:`~repro.retrieval.conjunctive.conjunctive_search`.

    The zig-zag's cursor state is fully determined by the driver: every
    candidate the reference probes is a *driver* document, candidates
    strictly increase, and ``next_geq`` lands a non-driver cursor on the
    first posting >= the candidate — which is exactly
    ``searchsorted(column, driver_docs)``, computable for **all**
    candidates of a non-driver list in one vectorized call.  So the
    kernel precomputes, per non-driver list: the landing position, the
    landed doc, whether it matches, and where a mismatch redirects the
    driver (``searchsorted(driver_docs, landed_doc)``); per-candidate
    intersection scores come from one element-wise gather/add pass in
    cursor order (``0.0 + s_0 + s_1 + ...`` — the reference's exact
    float64 summation sequence).  What remains is a pure-int replay loop
    over plain Python lists: no numpy call, no slicing, no boxing per
    step.  Skip counters fall out as landing-position deltas, identical
    to the reference's telescoping ``pos - before`` sums.
    """
    if k < 1:
        raise ValueError("k must be positive")
    cost = CostStats(n_terms=len(terms))
    if not terms:
        return SearchResult(hits=[], cost=cost)

    arena = shard.arena
    runs = []
    for term in terms:
        run = arena.run(term)
        if run is None:
            return SearchResult(hits=[], cost=cost)  # missing term empties the AND
        runs.append(run)
    runs.sort(key=lambda run: run.size)  # drive from the rarest term

    collector = TopKCollector(k)
    driver = runs[0]
    dsize = driver.size
    if dsize == 0:
        return SearchResult(hits=[], cost=cost)
    d_docs = driver.doc_ids

    # Precompute every non-driver list's whole interaction with the
    # driver stream: landing index L, matched flag, and the driver index
    # a mismatch at that candidate redirects to.
    n_runs = len(runs)
    lands_l: list[list[int]] = []
    match_l: list[list[bool]] = []
    redirect_l: list[list[int]] = []
    sizes: list[int] = []
    totals = np.zeros(dsize, dtype=np.float64)
    np.add(totals, driver.scores, out=totals)
    for run in runs[1:]:
        col = run.doc_ids
        size = run.size
        lands = np.searchsorted(col, d_docs, side="left")
        landed_at = np.minimum(lands, max(size - 1, 0))
        landed = col[landed_at] if size else np.zeros(dsize, dtype=np.int64)
        in_range = lands < size
        matched = in_range & (landed == d_docs)
        # Where the mismatching landed doc sends the driver's next_geq.
        redirect = np.searchsorted(d_docs, landed, side="left")
        np.add(totals, run.scores[landed_at] if size else 0.0, out=totals)
        lands_l.append(lands.tolist())
        match_l.append(matched.tolist())
        redirect_l.append(redirect.tolist())
        sizes.append(size)
    d_list = d_docs.tolist()
    t_list = totals.tolist()

    offer = collector.offer
    n_others = n_runs - 1
    pos = [0] * n_others
    skipped = 0
    evaluated = 0
    offers_done = 0
    di = 0
    while di < dsize:
        matched_all = True
        for j in range(n_others):
            lj = lands_l[j][di]
            skipped += lj - pos[j]
            pos[j] = lj
            if match_l[j][di]:
                continue
            matched_all = False
            if lj >= sizes[j]:
                # List j is exhausted: the reference advances the driver
                # past the candidate (one position), then breaks on the
                # exhausted-cursor check.
                skipped += 1
                di = dsize
            else:
                redirect = redirect_l[j][di]
                skipped += redirect - di
                di = redirect
            break
        if matched_all:
            evaluated += 1
            offer(d_list[di], t_list[di])
            offers_done += 1
            di += 1
        elif di >= dsize:
            break

    cost.postings_skipped = skipped
    cost.docs_evaluated = evaluated
    cost.postings_scored = evaluated * n_runs
    if stats is not None:
        stats.offers += offers_done

    return SearchResult(hits=collector.results(), cost=cost)
