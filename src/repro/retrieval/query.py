"""Query model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class Query:
    """A search request.

    Attributes
    ----------
    query_id:
        Unique id within a trace (used to join simulation records with
        ground truth).
    terms:
        Analyzed terms, duplicates removed, original order preserved.  All
        evaluators treat a query as a disjunctive bag of terms, like the
        paper's Solr setup.
    text:
        The raw text the terms came from, kept for reporting.
    arrival_time:
        Trace arrival timestamp in seconds (0.0 for ad-hoc queries).
    """

    query_id: int
    terms: tuple[str, ...]
    text: str = ""
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if len(set(self.terms)) != len(self.terms):
            raise ValueError("query terms must be unique")

    @property
    def length(self) -> int:
        return len(self.terms)

    @classmethod
    def from_text(
        cls,
        text: str,
        analyzer: Analyzer,
        query_id: int = 0,
        arrival_time: float = 0.0,
    ) -> "Query":
        """Analyze raw text into a query, de-duplicating terms in order."""
        seen: dict[str, None] = {}
        for term in analyzer.analyze(text):
            seen.setdefault(term)
        return cls(
            query_id=query_id,
            terms=tuple(seen),
            text=text,
            arrival_time=arrival_time,
        )


@dataclass
class QueryTrace:
    """An ordered sequence of timestamped queries (a replayable trace)."""

    name: str
    queries: list[Query] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, i: int) -> Query:
        return self.queries[i]

    @property
    def duration(self) -> float:
        """Trace span in seconds (last arrival time)."""
        return self.queries[-1].arrival_time if self.queries else 0.0

    def distinct_terms(self) -> set[str]:
        terms: set[str] = set()
        for query in self.queries:
            terms.update(query.terms)
        return terms
