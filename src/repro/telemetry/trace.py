"""Span-based tracing over simulated and wall time.

The tracer records *where* each millisecond of a query goes — the
observability the paper's whole argument needs.  Spans carry two clocks:

* **sim time** — the discrete-event clock of the cluster simulator
  (milliseconds), bound per run via :meth:`Tracer.bind_clock`.  This is
  the clock the Perfetto export plots: per-ISN service intervals, query
  lifecycles and coordination rounds land exactly where the simulation
  put them.
* **wall time** — ``time.perf_counter``, which measures how long the
  *host* spent producing each span (predictor inference, retrieval,
  merging).  This is the clock the flamegraph summary reports.

Three span kinds:

* **sync** spans (:meth:`Tracer.span`) follow call-stack discipline per
  track — they open and close in LIFO order, either as context managers
  or via manual ``finish()`` for intervals that cross event callbacks on
  a strictly sequential track (an ISN's single core).  Per track the
  begin/end event log is therefore balanced and monotonic by
  construction, which is what makes the Chrome B/E export valid.
* **async** spans (:meth:`Tracer.async_span`) may overlap freely — one
  per in-flight query lifecycle.  They export as Chrome nestable async
  events (``ph: b/e`` with an id) and never enter a track's sync stack.
* **instant** events (:meth:`Tracer.instant`) — zero-duration markers
  (queue aborts, wakeups).

Disabled mode
-------------
A disabled tracer never allocates: :meth:`span`, :meth:`async_span` and
:meth:`instant` all return the module-level :data:`NULL_SPAN` singleton
without touching their arguments.  Hot callers (the ISN service loop,
the aggregator intake) go one step further and keep a ``None`` tracer
reference so the disabled path is a single attribute test — the
telemetry overhead benchmark gates this at <2% of ``run_trace``.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Span", "Tracer", "NULL_SPAN", "NullSpan"]


class Span:
    """One traced interval on one track.

    ``sim_*`` are simulator milliseconds, ``wall_*`` host seconds.
    ``path`` is the tuple of enclosing sync span names (flamegraph key);
    ``depth`` its length.  ``attrs`` are free-form key/values attached at
    creation (shard id, query id, frequency, ...).
    """

    __slots__ = (
        "tracer", "name", "track", "kind", "attrs", "span_id",
        "sim_begin_ms", "sim_end_ms", "wall_begin_s", "wall_end_s",
        "path", "depth",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str,
        kind: str,
        attrs: dict,
        span_id: int,
        sim_begin_ms: float,
        wall_begin_s: float,
        path: tuple[str, ...],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.track = track
        self.kind = kind
        self.attrs = attrs
        self.span_id = span_id
        self.sim_begin_ms = sim_begin_ms
        self.sim_end_ms: float | None = None
        self.wall_begin_s = wall_begin_s
        self.wall_end_s: float | None = None
        self.path = path
        self.depth = len(path) - 1

    # ------------------------------------------------------------- lifecycle
    def finish(self) -> None:
        """Close the span at the current sim/wall instant (idempotent)."""
        if self.sim_end_ms is None:
            self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    # ------------------------------------------------------------- accessors
    @property
    def finished(self) -> bool:
        return self.sim_end_ms is not None

    @property
    def sim_ms(self) -> float:
        """Simulated duration (0.0 while open or for instants)."""
        if self.sim_end_ms is None:
            return 0.0
        return self.sim_end_ms - self.sim_begin_ms

    @property
    def wall_ms(self) -> float:
        """Host wall-clock duration in milliseconds (0.0 while open)."""
        if self.wall_end_s is None:
            return 0.0
        return (self.wall_end_s - self.wall_begin_s) * 1000.0

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} track={self.track!r} "
            f"sim={self.sim_begin_ms:.3f}+{self.sim_ms:.3f}ms>"
        )


class NullSpan:
    """The do-nothing span every disabled-tracer call returns.

    A single shared instance (:data:`NULL_SPAN`): entering, exiting and
    finishing are no-ops, so ``with tracer.span(...)`` costs nothing but
    the call itself when telemetry is off.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def finish(self) -> None:
        return None

    @property
    def finished(self) -> bool:
        return True

    sim_ms = 0.0
    wall_ms = 0.0


NULL_SPAN = NullSpan()


class Tracer:
    """Collects spans across tracks; one instance per telemetry session.

    Tracks are created on first use and keep their creation order (the
    Chrome exporter assigns thread ids in that order, after pinning the
    aggregator first).  The per-track event log records begin/end marks
    in emission order, which — because sync spans follow stack
    discipline — is balanced and sim-time monotonic by construction.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._clock: Callable[[], float] = _zero_clock
        self._next_id = 0
        # Finished spans in finish order (sync + async + instant).
        self.spans: list[Span] = []
        # Per-track open-span stacks (sync discipline).
        self._stacks: dict[str, list[Span]] = {}
        # Per-track ("B"|"E"|"I", span) event logs, emission order.
        self._track_logs: dict[str, list[tuple[str, Span]]] = {}
        # Async lifecycle events: ("b"|"e", span) in emission order.
        self._async_log: list[tuple[str, Span]] = []

    # ------------------------------------------------------------------ clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the sim-time source (e.g. ``lambda: sim.now``)."""
        self._clock = clock

    def unbind_clock(self) -> None:
        self._clock = _zero_clock

    @property
    def now_ms(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------ spans
    def span(self, name: str, track: str = "main", **attrs: object):
        """Open a sync span on ``track`` (context manager or ``finish()``).

        Sync spans on one track must close in LIFO order — guaranteed by
        ``with`` blocks, and by construction for cross-event intervals on
        strictly sequential tracks (one ISN core runs one job at a time).
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stacks.get(track)
        if stack is None:
            stack = self._stacks[track] = []
            self._track_logs[track] = []
        parent_path = stack[-1].path if stack else ()
        span = Span(
            tracer=self,
            name=name,
            track=track,
            kind="sync",
            attrs=attrs,
            span_id=self._take_id(),
            sim_begin_ms=self._clock(),
            wall_begin_s=time.perf_counter(),
            path=parent_path + (name,),
        )
        stack.append(span)
        self._track_logs[track].append(("B", span))
        return span

    def async_span(self, name: str, track: str = "main", **attrs: object):
        """Open an async span — lifecycles that overlap on one track."""
        if not self.enabled:
            return NULL_SPAN
        self._ensure_track(track)
        span = Span(
            tracer=self,
            name=name,
            track=track,
            kind="async",
            attrs=attrs,
            span_id=self._take_id(),
            sim_begin_ms=self._clock(),
            wall_begin_s=time.perf_counter(),
            path=(name,),
        )
        self._async_log.append(("b", span))
        return span

    def instant(self, name: str, track: str = "main", **attrs: object):
        """Record a zero-duration marker on ``track``."""
        if not self.enabled:
            return NULL_SPAN
        self._ensure_track(track)
        now_sim = self._clock()
        now_wall = time.perf_counter()
        stack = self._stacks[track]
        parent_path = stack[-1].path if stack else ()
        span = Span(
            tracer=self,
            name=name,
            track=track,
            kind="instant",
            attrs=attrs,
            span_id=self._take_id(),
            sim_begin_ms=now_sim,
            wall_begin_s=now_wall,
            path=parent_path + (name,),
        )
        span.sim_end_ms = now_sim
        span.wall_end_s = now_wall
        self._track_logs[track].append(("I", span))
        self.spans.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.sim_end_ms = self._clock()
        span.wall_end_s = time.perf_counter()
        if span.kind == "sync":
            stack = self._stacks[span.track]
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # defensive: out-of-order finish
                stack.remove(span)
            self._track_logs[span.track].append(("E", span))
        elif span.kind == "async":
            self._async_log.append(("e", span))
        self.spans.append(span)

    # ------------------------------------------------------------------ state
    def _ensure_track(self, track: str) -> None:
        if track not in self._stacks:
            self._stacks[track] = []
            self._track_logs[track] = []

    def _take_id(self) -> int:
        self._next_id += 1
        return self._next_id

    @property
    def tracks(self) -> list[str]:
        """Track names in creation order."""
        return list(self._track_logs)

    def track_log(self, track: str) -> list[tuple[str, Span]]:
        return self._track_logs.get(track, [])

    @property
    def async_log(self) -> list[tuple[str, Span]]:
        return self._async_log

    def open_spans(self) -> list[Span]:
        """Sync spans still open (should be empty after a run)."""
        return [span for stack in self._stacks.values() for span in stack]

    def clear(self) -> None:
        """Drop all recorded spans (the session stays enabled/bound)."""
        self.spans.clear()
        self._stacks.clear()
        self._track_logs.clear()
        self._async_log.clear()
        self._next_id = 0


def _zero_clock() -> float:
    """Default sim clock before a run binds one: everything at t=0."""
    return 0.0
