"""Streaming metrics: counters, gauges, log-bucket histograms, P² quantiles.

Everything here is **O(1) memory per instrument** — no sample retention.
A histogram keeps fixed logarithmic buckets (coarse distribution shape,
exact counts) plus three P² percentile estimators (Jain & Chlamtac 1985)
for p50/p95/p99, which converge on the true quantiles with five markers
each.  That combination covers what the cluster telemetry needs: queue
depths, budget slack, per-frequency residency, cache hit rates, and
Algorithm-1 pruning statistics, all streamed during a trace replay.

Disabled mode: a :class:`MetricsRegistry` built with ``enabled=False``
hands out shared null instruments whose mutators are no-ops, so
instrumentation sites can resolve instruments once at construction time
and call them unconditionally without retaining anything.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "P2Quantile",
    "StreamingHistogram",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing sum (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def add(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins value with running min/max."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        out = {"type": "gauge", "value": self.value}
        if self.updates:
            out["min"] = self.min
            out["max"] = self.max
        return out


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Tracks one quantile ``p`` with five markers (heights + positions),
    adjusting marker heights by the piecewise-parabolic (P²) formula as
    observations stream in.  Exact for the first five observations, then
    O(1) per update with no retention — the classic choice for tail
    latency estimation without reservoirs.
    """

    __slots__ = ("p", "count", "_q", "_n", "_np", "_dn")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = p
        self.count = 0
        self._q: list[float] = []  # marker heights
        self._n: list[float] = []  # marker positions (1-based)
        self._np: list[float] = []  # desired positions
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]  # position increments

    def observe(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            self._q.append(x)
            if self.count == 5:
                self._q.sort()
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                p = self.p
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return
        q, n = self._q, self._n
        # Locate the cell containing x, clamping the extremes.
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = 0
            while x >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 0 else -1.0
                candidate = _parabolic(q, n, i, sign)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = _linear(q, n, i, sign)
                n[i] += sign

    @property
    def value(self) -> float:
        """Current quantile estimate (exact below five observations)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            ordered = sorted(self._q)
            # Nearest-rank on the exact retained values.
            rank = max(int(math.ceil(self.p * self.count)) - 1, 0)
            return ordered[rank]
        return self._q[2]


def _parabolic(q: list[float], n: list[float], i: int, sign: float) -> float:
    return q[i] + sign / (n[i + 1] - n[i - 1]) * (
        (n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
        + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
    )


def _linear(q: list[float], n: list[float], i: int, sign: float) -> float:
    j = i + int(sign)
    return q[i] + sign * (q[j] - q[i]) / (n[j] - n[i])


class StreamingHistogram:
    """Fixed log-bucket histogram plus P² p50/p95/p99 — no samples kept.

    Buckets span ``[lo, hi)`` with ``per_decade`` logarithmic buckets per
    factor of 10; observations below ``lo`` (including zero and
    negatives) land in an underflow bucket, above ``hi`` in an overflow
    bucket.  Count, sum, min and max are exact; ``percentile`` comes from
    the embedded P² estimators (p50/p95/p99) or log-linear bucket
    interpolation for other quantiles.
    """

    __slots__ = (
        "name", "lo", "hi", "per_decade", "counts", "count", "sum",
        "min", "max", "_log_lo", "_scale", "_p2",
    )

    P2_QUANTILES = (0.5, 0.95, 0.99)

    def __init__(
        self,
        name: str,
        lo: float = 1e-3,
        hi: float = 1e5,
        per_decade: int = 8,
    ) -> None:
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if per_decade < 1:
            raise ValueError("per_decade must be positive")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.per_decade = per_decade
        self._log_lo = math.log10(lo)
        self._scale = per_decade
        n_buckets = int(math.ceil((math.log10(hi) - self._log_lo) * per_decade))
        # +2: underflow (index 0) and overflow (index -1).
        self.counts = [0] * (n_buckets + 2)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._p2 = {p: P2Quantile(p) for p in self.P2_QUANTILES}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket(value)] += 1
        for estimator in self._p2.values():
            estimator.observe(value)

    def _bucket(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return len(self.counts) - 1
        return 1 + int((math.log10(value) - self._log_lo) * self._scale)

    # -------------------------------------------------------------- queries
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """(low, high) value bounds of bucket ``index``."""
        if index == 0:
            return (0.0, self.lo)
        if index == len(self.counts) - 1:
            return (self.hi, math.inf)
        exp = self._log_lo + (index - 1) / self._scale
        return (10.0 ** exp, 10.0 ** (exp + 1.0 / self._scale))

    def percentile(self, p: float) -> float:
        """Quantile estimate: P² for p50/p95/p99, buckets otherwise."""
        fraction = p / 100.0 if p > 1.0 else p
        estimator = self._p2.get(fraction)
        if estimator is not None:
            return estimator.value
        return self._bucket_percentile(fraction)

    def _bucket_percentile(self, fraction: float) -> float:
        if self.count == 0:
            return math.nan
        target = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                low, high = self.bucket_bounds(index)
                low = max(low, self.min)
                high = min(high, self.max) if math.isfinite(high) else self.max
                within = (target - seen) / bucket_count
                return low + (high - low) * within
            seen += bucket_count
        return self.max

    def snapshot(self) -> dict:
        out = {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
        }
        if self.count:
            out.update(
                mean=self.mean,
                min=self.min,
                max=self.max,
                p50=self.percentile(50),
                p95=self.percentile(95),
                p99=self.percentile(99),
            )
        return out


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def add(self, amount: float = 1) -> None:
        return None

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        return None

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": 0.0}


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        return None

    def percentile(self, p: float) -> float:
        return math.nan

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": 0, "sum": 0.0}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Name → instrument store with get-or-create accessors.

    Disabled registries hand back shared null instruments, so callers
    may resolve instruments eagerly (constructor time) and use them
    unconditionally — the disabled path allocates nothing per call.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, _NULL_COUNTER)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, _NULL_GAUGE)

    def histogram(self, name: str, **kwargs: float) -> StreamingHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = StreamingHistogram(name, **kwargs)
        elif not isinstance(instrument, StreamingHistogram):
            raise TypeError(f"{name!r} already registered as {type(instrument).__name__}")
        return instrument

    def _get(self, name: str, cls: type, null: object):
        if not self.enabled:
            return null
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name)
        elif not isinstance(instrument, cls):
            raise TypeError(f"{name!r} already registered as {type(instrument).__name__}")
        return instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __iter__(self):
        return iter(self._instruments.items())

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name``, or None."""
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict]:
        """All instruments' states, sorted by name (JSON-ready)."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def clear(self) -> None:
        self._instruments.clear()
