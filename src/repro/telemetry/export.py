"""Telemetry exporters: JSONL spans, Chrome trace events, flamegraph text.

Three consumers, three formats:

* :func:`write_spans_jsonl` — one JSON object per finished span, the
  greppable archive format.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON that Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing`` load directly.  One thread ("track") per ISN plus
  the aggregator; sync spans become duration events (``ph: B/E``),
  query lifecycles become nestable async events (``ph: b/e``), markers
  become instants.  Timestamps are **sim time** in microseconds, so the
  visual timeline is the simulated cluster, not the host.
* :func:`flamegraph_summary` — a terminal flamegraph-style rollup of
  sync spans by call path (count, wall time, sim time), what the
  ``repro trace`` CLI prints.

:func:`validate_chrome_trace` checks the invariants the exporter
guarantees by construction — per-track B/E nesting balance and sim-time
monotonicity — and is what the round-trip test runs against a re-parsed
export.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.session import Telemetry
    from repro.telemetry.trace import Span, Tracer

__all__ = [
    "span_record",
    "write_spans_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "flamegraph_summary",
]

_PID = 1  # one simulated cluster == one "process" in the trace


def span_record(span: "Span") -> dict:
    """One span as a JSON-ready dict (the JSONL line format)."""
    return {
        "name": span.name,
        "track": span.track,
        "kind": span.kind,
        "path": "/".join(span.path),
        "sim_begin_ms": span.sim_begin_ms,
        "sim_ms": span.sim_ms,
        "wall_ms": span.wall_ms,
        "attrs": _jsonable(span.attrs),
    }


def write_spans_jsonl(telemetry: "Telemetry", path: str | Path) -> int:
    """Write every finished span as one JSON line; return the count."""
    spans = telemetry.tracer.spans
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span_record(span), sort_keys=True))
            fh.write("\n")
    return len(spans)


# ---------------------------------------------------------------- chrome trace
def chrome_trace_events(telemetry: "Telemetry") -> list[dict]:
    """The run as Chrome trace events (load in Perfetto).

    Track → thread id assignment is deterministic: the aggregator (if
    present) gets tid 0, every other track follows in first-use order.
    Only finished spans are exported, so the per-track B/E stream stays
    balanced even if a run was cut short with spans open.
    """
    tracer = telemetry.tracer
    tids = _track_tids(tracer)
    meta: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in tids.items()
    ]
    data: list[dict] = []
    for track, tid in tids.items():
        for kind, span in tracer.track_log(track):
            if not span.finished:
                continue  # never emit an unbalanced B
            if kind == "B":
                data.append(_event(span, "B", tid, span.sim_begin_ms))
            elif kind == "E":
                data.append(
                    {"ph": "E", "pid": _PID, "tid": tid, "ts": _us(span.sim_end_ms)}
                )
            else:  # instant
                event = _event(span, "i", tid, span.sim_begin_ms)
                event["s"] = "t"  # thread-scoped marker
                data.append(event)
    for phase, span in tracer.async_log:
        if not span.finished:
            continue
        ts = span.sim_begin_ms if phase == "b" else span.sim_end_ms
        event = _event(span, phase, tids[span.track], ts)
        event["cat"] = "query"
        event["id"] = span.span_id
        if phase == "e":
            event.pop("args", None)
        data.append(event)
    # One global timeline: stable sort by timestamp.  Per-track emission
    # order is already monotonic, and stability preserves it on ties, so
    # B/E nesting survives the sort — only cross-stream interleaving (the
    # async lifecycle events recorded after the sync logs) changes.
    data.sort(key=lambda event: event["ts"])
    return meta + data


def write_chrome_trace(telemetry: "Telemetry", path: str | Path) -> int:
    """Write the Perfetto-loadable JSON; return the event count."""
    events = chrome_trace_events(telemetry)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return len(events)


def validate_chrome_trace(events: Iterable[dict]) -> None:
    """Raise ValueError unless the B/E/async invariants hold.

    Checks, per (pid, tid) track: duration events nest (every E matches
    the innermost open B, nothing left open), timestamps never decrease;
    and per async id: b/e strictly alternate and close.  These are the
    guarantees :func:`chrome_trace_events` makes by construction.
    """
    stacks: dict[tuple, list[dict]] = {}
    last_ts: dict[tuple, float] = {}
    async_open: dict[tuple, dict] = {}
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            continue
        key = (event.get("pid"), event.get("tid"))
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event missing numeric ts: {event!r}")
        if ts < last_ts.get(key, float("-inf")):
            raise ValueError(
                f"timestamps go backwards on track {key}: {ts} after {last_ts[key]}"
            )
        last_ts[key] = ts
        if phase == "B":
            stacks.setdefault(key, []).append(event)
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"E without open B on track {key} at ts={ts}")
            begin = stack.pop()
            if ts < begin["ts"]:
                raise ValueError("span ends before it begins")
        elif phase == "b":
            akey = (event.get("cat"), event.get("id"))
            if akey in async_open:
                raise ValueError(f"async span {akey} opened twice")
            async_open[akey] = event
        elif phase == "e":
            akey = (event.get("cat"), event.get("id"))
            if akey not in async_open:
                raise ValueError(f"async end without begin: {akey}")
            del async_open[akey]
        elif phase not in ("i", "I"):
            raise ValueError(f"unexpected phase {phase!r}")
    unbalanced = {key: stack for key, stack in stacks.items() if stack}
    if unbalanced:
        raise ValueError(f"unclosed B events on tracks: {sorted(unbalanced)}")
    if async_open:
        raise ValueError(f"unclosed async spans: {sorted(async_open)}")


def _track_tids(tracer: "Tracer") -> dict[str, int]:
    tracks = tracer.tracks
    ordered = [t for t in ("aggregator",) if t in tracks]
    ordered += [t for t in tracks if t not in ordered]
    return {track: tid for tid, track in enumerate(ordered)}


def _event(span: "Span", phase: str, tid: int, ts_ms: float) -> dict:
    event = {
        "name": span.name,
        "ph": phase,
        "pid": _PID,
        "tid": tid,
        "ts": _us(ts_ms),
    }
    if span.attrs:
        event["args"] = _jsonable(span.attrs)
    return event


def _us(ms: float) -> float:
    return round(ms * 1000.0, 3)


def _jsonable(attrs: dict) -> dict:
    return {key: _scalar(value) for key, value in attrs.items()}


def _scalar(value: object):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# ------------------------------------------------------------------ flamegraph
def flamegraph_summary(telemetry: "Telemetry", max_rows: int = 60) -> str:
    """Terminal flamegraph: sync spans rolled up by call path.

    Rows are indented by stack depth and ordered depth-first by wall
    time, with per-path call counts and both clocks.  Async lifecycle
    spans are summarized on one closing line (they overlap, so a stack
    rollup would double-count).
    """
    sync = [s for s in telemetry.tracer.spans if s.kind == "sync"]
    rollup: dict[tuple[str, ...], list[float]] = {}
    for span in sync:
        key = (span.track,) + span.path
        entry = rollup.setdefault(key, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.wall_ms
        entry[2] += span.sim_ms
    if not rollup:
        return "(no spans recorded)"

    # Depth-first order: children follow their parent, heaviest first.
    children: dict[tuple[str, ...], list[tuple[str, ...]]] = {}
    for key in rollup:
        children.setdefault(key[:-1], []).append(key)
    for sibling in children.values():
        sibling.sort(key=lambda key: -rollup[key][1])

    lines = [
        f"{'span':<44} {'calls':>8} {'wall ms':>12} {'sim ms':>12}",
        "-" * 80,
    ]

    def emit(key: tuple[str, ...]) -> None:
        if len(lines) - 2 >= max_rows:
            return
        count, wall, sim = rollup[key]
        depth = len(key) - 2  # track + first name sit at depth 0
        label = ("  " * depth + key[-1]) if len(key) > 1 else key[0]
        lines.append(f"{label:<44} {count:>8d} {wall:>12.2f} {sim:>12.3f}")
        for child in children.get(key, []):
            emit(child)

    roots = sorted(
        {key[:2] for key in rollup},
        key=lambda key: (-rollup.get(key, [0, 0.0, 0.0])[1], key),
    )
    current_track = None
    for root in roots:
        if root not in rollup:
            continue
        if len(lines) - 2 >= max_rows:
            break
        if root[0] != current_track:
            current_track = root[0]
            lines.append(f"[track {current_track}]")
        emit(root)

    lifecycles = [s for s in telemetry.tracer.spans if s.kind == "async"]
    if lifecycles:
        total_sim = sum(s.sim_ms for s in lifecycles)
        lines.append("-" * 80)
        lines.append(
            f"{len(lifecycles)} query lifecycles, "
            f"mean {total_sim / len(lifecycles):.3f} sim ms"
        )
    return "\n".join(lines)
