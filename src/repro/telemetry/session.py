"""The telemetry session: one tracer + one metrics registry.

A :class:`Telemetry` object is what flows through the cluster — pass one
to :meth:`SearchCluster.run_trace` and every layer it touches (event
loop, aggregator, ISNs, policies, predictor bank, executor) records into
it.  ``None`` (the default everywhere) resolves to :data:`NO_TELEMETRY`,
a shared disabled session whose tracer and registry are permanent
no-ops: instrumentation sites test one ``enabled`` flag (or a cached
``None`` tracer reference) and allocate nothing, which is what keeps the
disabled-mode overhead under the 2% CI gate
(``benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import Callable

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer

__all__ = ["Telemetry", "NO_TELEMETRY"]


class Telemetry:
    """Bundles a :class:`Tracer` and a :class:`MetricsRegistry`."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry(enabled=enabled)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer's sim clock at a simulator (``lambda: sim.now``)."""
        self.tracer.bind_clock(clock)

    def unbind_clock(self) -> None:
        self.tracer.unbind_clock()

    def clear(self) -> None:
        """Drop all spans and metrics, keeping the session reusable."""
        self.tracer.clear()
        self.metrics.clear()

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"<Telemetry {state}: {len(self.tracer.spans)} spans, "
            f"{len(self.metrics)} instruments>"
        )


#: The shared disabled session every un-instrumented call site resolves to.
NO_TELEMETRY = Telemetry(enabled=False)
