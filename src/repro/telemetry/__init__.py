"""Telemetry plane: span tracing, streaming metrics, Perfetto export.

Layer 7 of the reproduction (see ``docs/architecture.md``): a
cross-cutting observability subsystem every performance-facing layer
reports through.  Build a :class:`Telemetry`, hand it to
``SearchCluster.run_trace(trace, policy, telemetry=...)``, then export::

    from repro.telemetry import Telemetry, write_chrome_trace

    telemetry = Telemetry()
    cluster.run_trace(trace, policy, telemetry=telemetry)
    write_chrome_trace(telemetry, "trace.json")   # open in Perfetto

or from the CLI: ``repro trace --policy cottage --export perfetto``.

Telemetry never changes a simulation outcome — spans and metrics are
recorded *about* the event loop, not scheduled on it — and the disabled
path (the default) is a no-op gated at <2% overhead in CI.
"""

from repro.telemetry.export import (
    chrome_trace_events,
    flamegraph_summary,
    span_record,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
)
from repro.telemetry.session import NO_TELEMETRY, Telemetry
from repro.telemetry.trace import NULL_SPAN, NullSpan, Span, Tracer

__all__ = [
    "Telemetry",
    "NO_TELEMETRY",
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "P2Quantile",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_spans_jsonl",
    "span_record",
    "validate_chrome_trace",
    "flamegraph_summary",
]
