"""Gradient-descent optimizers.

The paper trains with Adam (Kingma & Ba); SGD-with-momentum is provided for
the optimizer ablation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Optimizer(ABC):
    """Updates parameters in place from gradients stored by the layers."""

    @abstractmethod
    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Apply one update; ``params`` is [(parameter, gradient), ...]."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        for param, grad in params:
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(id(param), np.zeros_like(param))
                vel *= self.momentum
                vel -= self.learning_rate * grad
                param += vel
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam with bias correction (the paper's training algorithm).

    ``weight_decay`` applies decoupled (AdamW-style) L2 regularization:
    the decay multiplies the parameter directly rather than entering the
    adaptive moments.
    """

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad in params:
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param *= 1.0 - self.learning_rate * self.weight_decay
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class StepDecay:
    """Learning-rate schedule: multiply the rate by ``factor`` every
    ``every`` optimizer steps.  Wraps any optimizer."""

    def __init__(self, optimizer: Optimizer, every: int, factor: float = 0.5) -> None:
        if every < 1:
            raise ValueError("every must be positive")
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        if not hasattr(optimizer, "learning_rate"):
            raise ValueError("wrapped optimizer must expose learning_rate")
        self.optimizer = optimizer
        self.every = every
        self.factor = factor
        self._steps = 0

    @property
    def learning_rate(self) -> float:
        return self.optimizer.learning_rate

    def step(self, params: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self.optimizer.step(params)
        self._steps += 1
        if self._steps % self.every == 0:
            self.optimizer.learning_rate *= self.factor
