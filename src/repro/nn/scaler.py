"""Feature standardization."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance feature scaling.

    Fitted on the training set only, then applied at inference time.  The
    Table I/II features span wildly different ranges (scores ~10, posting
    lengths ~10^4), so scaling is required for the MLPs to train at all.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features carry no signal; mapping them to exactly zero
        # (rather than dividing by ~0) keeps training numerically sane.
        self.std_ = np.where(std < 1e-12, 1.0, std)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(x, dtype=np.float64) - self.mean_) / self.std_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    def state(self) -> dict[str, np.ndarray]:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler is not fitted")
        return {"mean": self.mean_, "std": self.std_}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StandardScaler":
        scaler = cls()
        scaler.mean_ = np.asarray(state["mean"], dtype=np.float64)
        scaler.std_ = np.asarray(state["std"], dtype=np.float64)
        return scaler
