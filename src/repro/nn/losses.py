"""Loss functions.

The paper trains both predictors with sparse categorical cross-entropy
(Section III-B); the softmax is fused into the loss for numerical stability,
so models output raw logits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Stable softmax over the last axis.

    Accepts both 2-D ``(batch, classes)`` logits and the stacked 3-D
    ``(stack, batch, classes)`` tensors the fused cross-shard forward pass
    produces; for 2-D input the result is bit-identical to the historical
    axis-1 formulation.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Loss(ABC):
    """Loss interface: value plus gradient w.r.t. the model output."""

    @abstractmethod
    def compute(self, outputs: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        """Return (mean loss, dL/d(outputs))."""


class SparseCategoricalCrossentropy(Loss):
    """Cross-entropy over integer class targets, with fused softmax."""

    def compute(self, outputs: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=np.int64)
        n, n_classes = outputs.shape
        if targets.shape != (n,):
            raise ValueError("targets must be a vector of batch-size class ids")
        if targets.min(initial=0) < 0 or targets.max(initial=0) >= n_classes:
            raise ValueError("target class out of range")
        probs = softmax(outputs)
        picked = probs[np.arange(n), targets]
        loss = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
        grad = probs
        grad[np.arange(n), targets] -= 1.0
        return loss, grad / n

    def predict_classes(self, outputs: np.ndarray) -> np.ndarray:
        return np.argmax(outputs, axis=1)


class MeanSquaredError(Loss):
    """Plain MSE, used by regression-flavoured ablations."""

    def compute(self, outputs: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        if outputs.shape != targets.shape:
            raise ValueError("outputs and targets must have the same shape")
        diff = outputs - targets
        loss = float(np.mean(diff**2))
        return loss, 2.0 * diff / diff.size
