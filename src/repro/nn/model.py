"""Sequential model container with a Keras-like training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.layers import Dense, Dropout, Layer, ReLU, StackedDense
from repro.nn.losses import Loss, SparseCategoricalCrossentropy, softmax
from repro.nn.optimizers import Adam, Optimizer


@dataclass
class TrainingHistory:
    """Per-iteration training record (one iteration = one mini-batch step).

    ``eval_iterations``/``eval_accuracy`` record periodic held-out
    evaluations — the data behind the paper's accuracy-vs-iterations curves
    (Fig. 7a / Fig. 8a).
    """

    loss: list[float] = field(default_factory=list)
    eval_iterations: list[int] = field(default_factory=list)
    eval_accuracy: list[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.loss)


class Sequential:
    """A stack of layers trained with mini-batch gradient descent.

    Mirrors the slice of the Keras API the paper uses: construct, ``fit``
    with a loss and optimizer, ``predict_classes``, save/load.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("model needs at least one layer")
        self.layers = layers

    # ---------------------------------------------------------------- fwd/bwd
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        if out.ndim == 1:
            out = out[None, :]
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> None:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        params: list[tuple[np.ndarray, np.ndarray]] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    # ---------------------------------------------------------------- training
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        iterations: int = 200,
        batch_size: int = 64,
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
        seed: int = 0,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
        eval_every: int = 0,
    ) -> TrainingHistory:
        """Train for a fixed number of mini-batch iterations.

        The paper reports training in "iterations" (600 for the quality
        model, 60 for latency), so the loop is iteration-based rather than
        epoch-based; batches are sampled with reshuffling each pass.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        loss = loss or SparseCategoricalCrossentropy()
        optimizer = optimizer or Adam()
        rng = np.random.default_rng(seed)
        history = TrainingHistory()

        n = x.shape[0]
        order = rng.permutation(n)
        cursor = 0
        for it in range(iterations):
            if cursor + batch_size > n:
                order = rng.permutation(n)
                cursor = 0
            batch = order[cursor : cursor + batch_size]
            cursor += batch_size
            outputs = self.forward(x[batch], training=True)
            value, grad = loss.compute(outputs, y[batch])
            self.backward(grad)
            optimizer.step(self.parameters())
            history.loss.append(value)
            if eval_every and eval_set is not None and (it + 1) % eval_every == 0:
                history.eval_iterations.append(it + 1)
                history.eval_accuracy.append(self.accuracy(*eval_set))
        return history

    # ---------------------------------------------------------------- inference
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Raw logits."""
        return self.forward(x, training=False)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(self.predict(x))

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict_classes(x) == np.asarray(y)))

    # ---------------------------------------------------------------- persistence
    def state(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for key, value in layer.state().items():
                state[f"layer{i}.{key}"] = value
        return state

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        for i, layer in enumerate(self.layers):
            prefix = f"layer{i}."
            layer_state = {
                key[len(prefix):]: value
                for key, value in state.items()
                if key.startswith(prefix)
            }
            if layer_state:
                layer.load_state(layer_state)

    def save(self, path: str | Path) -> None:
        np.savez(path, **self.state())

    def load(self, path: str | Path) -> None:
        with np.load(path) as data:
            self.load_state({key: data[key] for key in data.files})


class StackedSequential:
    """S same-architecture :class:`Sequential` models fused for inference.

    The per-shard predictors all share one topology (the paper's 5x128
    ReLU MLP), so their Dense weights stack into ``[S, in, out]`` tensors
    and one batched matmul per layer evaluates every model at once —
    replacing S full forward passes with a handful of numpy calls.

    **Equivalence guarantee.**  ``forward_batched(x)[s]`` is bit-identical
    to ``models[s].forward(x[s])`` for any row batch: ``np.matmul`` applies
    the same 2-D product per stack slice, and ReLU/softmax are elementwise.
    ``tests/test_batched_inference.py`` pins this down with Hypothesis.

    Dropout layers are skipped (identity at inference time, matching
    ``Sequential.forward(training=False)``).  The stack snapshots weights
    at construction time — rebuild after retraining the source models.
    """

    def __init__(self, stacked: list[StackedDense | None]) -> None:
        """``stacked``: one entry per source layer — a :class:`StackedDense`
        for Dense layers, ``None`` for ReLU activations."""
        if not stacked:
            raise ValueError("stacked model needs at least one layer")
        self.ops = stacked
        dense = [op for op in stacked if op is not None]
        if not dense:
            raise ValueError("stacked model needs at least one Dense layer")
        self.n_stacked = dense[0].n_stacked

    @classmethod
    def from_models(cls, models: list["Sequential"]) -> "StackedSequential":
        """Fuse same-architecture models; validates matching topologies."""
        if not models:
            raise ValueError("need at least one model to stack")
        signature = [
            (type(layer), getattr(layer, "W", np.empty(0)).shape)
            for layer in models[0].layers
        ]
        for model in models[1:]:
            other = [
                (type(layer), getattr(layer, "W", np.empty(0)).shape)
                for layer in model.layers
            ]
            if other != signature:
                raise ValueError("stacked models must share one architecture")
        ops: list[StackedDense | None] = []
        for i, layer in enumerate(models[0].layers):
            if isinstance(layer, Dense):
                ops.append(
                    StackedDense.from_layers([m.layers[i] for m in models])
                )
            elif isinstance(layer, ReLU):
                ops.append(None)
            elif isinstance(layer, Dropout):
                continue  # identity at inference time
            else:
                raise ValueError(
                    f"cannot stack layer type {type(layer).__name__}"
                )
        return cls(ops)

    def forward_batched(self, x: np.ndarray) -> np.ndarray:
        """Fused forward: ``x[S, B, features] -> logits[S, B, classes]``.

        An extra query axis after the stack axis evaluates a whole query
        batch with one matmul per layer: ``x[S, NQ, B, features] ->
        logits[S, NQ, B, classes]``.  Because ``np.matmul`` runs the
        identical 2-D product per stack slice, every ``[s, q]`` slice is
        bit-identical to evaluating it alone.
        """
        # A C-contiguous input keeps every intermediate C-contiguous
        # (ufuncs allocate output in K-order, so a transposed-view input
        # would propagate its slow layout through all six layers); the
        # copy is exact, so bit-identity is unaffected.
        out = np.ascontiguousarray(x, dtype=np.float64)
        if out.ndim not in (3, 4) or out.shape[0] != self.n_stacked:
            raise ValueError(
                f"expected x[{self.n_stacked}, (queries,) batch, features], "
                f"got {out.shape}"
            )
        for i, op in enumerate(self.ops):
            if op is None:
                # In-place ReLU: the buffer is always this pass's own
                # intermediate (op 0 is Dense), so nothing aliases it.
                out = np.maximum(out, 0.0, out=out) if i else np.maximum(out, 0.0)
            else:
                out = op.forward(out)
        return out

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Per-model softmax probabilities, shape ``[S, B, classes]``."""
        return softmax(self.forward_batched(x))

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Per-model argmax classes over logits, shape ``[S, B]``."""
        return np.argmax(self.forward_batched(x), axis=-1)


def mlp_classifier(
    n_features: int,
    n_classes: int,
    hidden_layers: int = 5,
    hidden_units: int = 128,
    seed: int = 0,
) -> Sequential:
    """The paper's predictor architecture.

    "a NN model with 5-hidden layers ... each hidden layer has 128 neurons
    and uses the ReLU activation function" (Section III-B).  The output
    layer emits logits; softmax lives in the loss.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = []
    width_in = n_features
    for _ in range(hidden_layers):
        layers.append(Dense(width_in, hidden_units, rng=rng))
        layers.append(ReLU())
        width_in = hidden_units
    layers.append(Dense(width_in, n_classes, rng=rng))
    return Sequential(layers)
