"""From-scratch numpy neural network framework.

Stands in for the TensorFlow/Keras stack the paper trained its predictors
with: dense layers, ReLU, dropout, sparse categorical cross-entropy, Adam,
a Sequential container with a mini-batch training loop, and standard feature
scaling.  ``mlp_classifier`` builds the paper's exact 5x128 ReLU topology.
"""

from repro.nn.layers import Dense, Dropout, Layer, ReLU, StackedDense
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    SparseCategoricalCrossentropy,
    softmax,
)
from repro.nn.model import (
    Sequential,
    StackedSequential,
    TrainingHistory,
    mlp_classifier,
)
from repro.nn.optimizers import SGD, Adam, Optimizer, StepDecay
from repro.nn.scaler import StandardScaler

__all__ = [
    "Layer",
    "Dense",
    "StackedDense",
    "ReLU",
    "Dropout",
    "Loss",
    "SparseCategoricalCrossentropy",
    "MeanSquaredError",
    "softmax",
    "Sequential",
    "StackedSequential",
    "TrainingHistory",
    "mlp_classifier",
    "Optimizer",
    "Adam",
    "SGD",
    "StepDecay",
    "StandardScaler",
]
