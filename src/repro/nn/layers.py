"""Neural network layers (numpy, CPU).

A minimal Keras-like layer API: ``forward`` caches whatever ``backward``
needs; ``backward`` receives dL/d(output) and returns dL/d(input), storing
parameter gradients on the layer.  This is all the paper's predictors need —
5 hidden Dense+ReLU layers and a softmax classification head.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Layer(ABC):
    """Base layer."""

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute outputs for a batch ``x`` of shape (batch, features)."""

    @abstractmethod
    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate; return dL/d(input), store parameter grads."""

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs; empty for stateless layers."""
        return []

    def state(self) -> dict[str, np.ndarray]:
        """Serializable parameter arrays."""
        return {}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`state` output."""


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``.

    Weights use He initialization (appropriate for the ReLU stacks the
    paper's models are built from); the RNG is injected for reproducible
    training runs.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator | None = None
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("feature dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.W = rng.normal(0.0, scale, size=(in_features, out_features))
        self.b = np.zeros(out_features)
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
        return x @ self.W + self.b

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward before forward(training=True)"
        self.dW[...] = self._x.T @ grad_out
        self.db[...] = grad_out.sum(axis=0)
        return grad_out @ self.W.T

    def parameters(self) -> list[tuple[np.ndarray, np.ndarray]]:
        return [(self.W, self.dW), (self.b, self.db)]

    def state(self) -> dict[str, np.ndarray]:
        return {"W": self.W, "b": self.b}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        if state["W"].shape != self.W.shape or state["b"].shape != self.b.shape:
            raise ValueError("state shapes do not match layer shapes")
        self.W[...] = state["W"]
        self.b[...] = state["b"]


class StackedDense:
    """S same-shape :class:`Dense` layers fused into one batched matmul.

    Weights are stacked into ``W[S, in, out]`` / ``b[S, 1, out]`` so one
    ``np.matmul`` evaluates every model in the stack.  ``np.matmul`` on a
    3-D operand applies the identical 2-D product to each stack slice, so
    ``forward(x)[s]`` is bit-identical to ``x[s] @ W_s + b_s`` — the
    per-model loop this layer replaces.  Inference-only: no gradients.
    """

    def __init__(self, W: np.ndarray, b: np.ndarray) -> None:
        if W.ndim != 3 or b.shape != (W.shape[0], W.shape[2]):
            raise ValueError("expected W[S, in, out] and b[S, out]")
        self.W = W
        self.b = b[:, None, :]

    @classmethod
    def from_layers(cls, layers: "list[Dense]") -> "StackedDense":
        """Stack S Dense layers; all must share (in, out) dimensions."""
        if not layers:
            raise ValueError("need at least one Dense layer to stack")
        shape = layers[0].W.shape
        if any(layer.W.shape != shape for layer in layers):
            raise ValueError("stacked Dense layers must share weight shapes")
        return cls(
            np.stack([layer.W for layer in layers]),
            np.stack([layer.b for layer in layers]),
        )

    @property
    def n_stacked(self) -> int:
        return self.W.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """One fused matmul over the whole stack.

        ``x[S, B, in] -> y[S, B, out]``, or with a query axis
        ``x[S, NQ, B, in] -> y[S, NQ, B, out]``.  The shard-major layout
        is deliberate: consecutive gemm slices reuse the same weight
        block, so it stays in cache across the query batch.
        """
        if x.ndim == 4:
            y = np.matmul(x, self.W[:, None])
            y += self.b[:, None]
        else:
            y = np.matmul(x, self.W)
            y += self.b
        return y


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward before forward(training=True)"
        return grad_out * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
