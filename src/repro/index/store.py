"""Versioned raw-column shard store: mmap-backed, O(1) to open.

One shard serializes to a single ``.store`` file::

    MAGIC (8 bytes) | header length (uint64 LE) | header JSON | pad
    | raw array sections, each 64-byte aligned |

The header JSON carries the format version, the shard metadata (ids,
collection statistics, similarity config) and a table of contents: one
``{name, dtype, count, offset}`` entry per array.  The arrays are the
*packed* columns of :class:`~repro.index.arena.CompressedPostingsArena`
written verbatim — delta/bit-packed doc ids, bit-packed tfs, codebook
scores — plus per-term upper bounds, block-max metadata, global document
frequencies and bit-packed document lengths.

Opening a store (:func:`open_store`) builds a :class:`LazyIndexShard`
whose columns are ``np.memmap`` views at the TOC offsets: no postings
are materialized, no pages are read beyond the header, and a term's
postings are only decoded (through the arena's LRU) when a query first
touches the term.  The identical byte layout can instead live in a
``multiprocessing.shared_memory`` segment — :func:`serialize_shard`
produces the bytes, :func:`open_store_buffer` attaches to them with
zero-copy ``np.frombuffer`` views — which is how :class:`~repro.
retrieval.executor.ProcessExecutor` workers attach in-memory shards
without pickling arenas.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.index.arena import (
    DEFAULT_DECODE_CACHE_BYTES,
    CompressedPostingsArena,
    bits_for,
    pack_bits,
    unpack_bits,
)
from repro.index.postings import PostingList
from repro.index.shard import IndexShard, ShardTerm
from repro.index.storage import _similarity_config, _similarity_from_config

MAGIC = b"RPROSTOR"
FORMAT_VERSION = 1
_ALIGN = 64

#: TOC name -> numpy dtype of every array section, in file order.
_ARRAY_DTYPES: dict[str, str] = {
    "terms_blob": "u1",
    "offsets": "i8",
    "first_docs": "i8",
    "doc_widths": "u1",
    "doc_words": "u8",
    "doc_word_offsets": "i8",
    "tf_widths": "u1",
    "tf_words": "u8",
    "tf_word_offsets": "i8",
    "score_kinds": "u1",
    "score_widths": "u1",
    "score_raw": "f8",
    "score_raw_offsets": "i8",
    "score_books": "f8",
    "score_book_offsets": "i8",
    "score_words": "u8",
    "score_word_offsets": "i8",
    "upper_bounds": "f8",
    "global_dfs": "i8",
    "block_maxes": "f8",
    "block_offsets": "i8",
    "doc_len_id_words": "u8",
    "doc_len_val_words": "u8",
}


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _compressed_arena(shard: IndexShard) -> CompressedPostingsArena:
    arena = shard.arena
    if isinstance(arena, CompressedPostingsArena):
        return arena
    return CompressedPostingsArena.from_arena(arena)


def _global_dfs(shard: IndexShard, terms: list[str]) -> np.ndarray:
    stored = getattr(shard, "global_dfs", None)
    if stored is not None:
        return np.ascontiguousarray(stored, dtype=np.int64)
    dfs = np.zeros(len(terms), dtype=np.int64)
    for i, term in enumerate(terms):
        entry = shard.term(term)
        dfs[i] = entry.global_doc_freq if entry is not None else 0
    return dfs


def serialize_shard(shard: IndexShard) -> bytes:
    """The complete ``.store`` byte image of ``shard`` (file == buffer)."""
    carena = _compressed_arena(shard)
    terms = carena.terms
    for term in terms:
        if "\n" in term:
            raise ValueError(f"term {term!r} contains a newline")
    terms_blob = np.frombuffer(
        "\n".join(terms).encode("utf-8"), dtype=np.uint8
    )
    # Document lengths: sorted ids delta-packed (gap - 1, strictly
    # increasing), values bit-packed raw.
    ids = np.asarray(sorted(shard.doc_lengths), dtype=np.int64)
    values = np.asarray(
        [shard.doc_lengths[int(d)] for d in ids], dtype=np.int64
    )
    if ids.size and int(values.min()) < 0:
        raise ValueError("negative document length")
    doc_len_first = int(ids[0]) if ids.size else 0
    if ids.size > 1:
        gaps = np.diff(ids)
        if int(gaps.min()) <= 0:
            raise ValueError("doc_lengths ids must be unique")
        gaps -= 1
        id_width = bits_for(int(gaps.max()))
        id_words = pack_bits(gaps, id_width)
    else:
        id_width = 1
        id_words = pack_bits(np.zeros(0, dtype=np.int64), 1)
    val_width = bits_for(int(values.max())) if ids.size else 1
    val_words = pack_bits(values, val_width)

    arrays: dict[str, np.ndarray] = {
        "terms_blob": terms_blob,
        "offsets": carena.offsets,
        "first_docs": carena.first_docs,
        "doc_widths": carena.doc_widths,
        "doc_words": carena.doc_words,
        "doc_word_offsets": carena.doc_word_offsets,
        "tf_widths": carena.tf_widths,
        "tf_words": carena.tf_words,
        "tf_word_offsets": carena.tf_word_offsets,
        "score_kinds": carena.score_kinds,
        "score_widths": carena.score_widths,
        "score_raw": carena.score_raw,
        "score_raw_offsets": carena.score_raw_offsets,
        "score_books": carena.score_books,
        "score_book_offsets": carena.score_book_offsets,
        "score_words": carena.score_words,
        "score_word_offsets": carena.score_word_offsets,
        "upper_bounds": carena.upper_bounds,
        "global_dfs": _global_dfs(shard, terms),
        "block_maxes": carena.block_maxes,
        "block_offsets": carena.block_offsets,
        "doc_len_id_words": id_words,
        "doc_len_val_words": val_words,
    }
    meta = {
        "shard_id": shard.shard_id,
        "n_docs": shard.n_docs,
        "avg_doc_length": shard.avg_doc_length,
        "total_tokens": shard.total_tokens,
        "n_docs_global": shard.n_docs_global,
        "similarity": _similarity_config(shard.similarity),
        "block_size": carena.block_size,
        "n_terms": carena.n_terms,
        "n_postings": carena.n_postings,
        "n_doc_lengths": int(ids.size),
        "doc_len_first": doc_len_first,
        "doc_len_id_width": id_width,
        "doc_len_val_width": val_width,
    }
    # Lay out the sections first (offsets depend on the header length,
    # which depends on the offsets) by iterating to a fixed point on the
    # header size — two passes suffice because only the digits change.
    toc = [
        {"name": name, "dtype": _ARRAY_DTYPES[name], "count": int(arr.size)}
        for name, arr in arrays.items()
    ]
    header_len = 0
    for _ in range(8):
        offset = _align(len(MAGIC) + 8 + header_len)
        for entry in toc:
            entry["offset"] = offset
            nbytes = entry["count"] * np.dtype(entry["dtype"]).itemsize
            offset = _align(offset + nbytes)
        header_json = json.dumps(
            {"format_version": FORMAT_VERSION, "meta": meta, "arrays": toc},
            separators=(",", ":"),
        ).encode("utf-8")
        if len(header_json) == header_len:
            break
        header_len = len(header_json)
    total = offset
    buf = bytearray(total)
    buf[: len(MAGIC)] = MAGIC
    struct.pack_into("<Q", buf, len(MAGIC), header_len)
    buf[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len] = header_json
    for entry in toc:
        arr = np.ascontiguousarray(
            arrays[entry["name"]], dtype=np.dtype(entry["dtype"])
        )
        start = entry["offset"]
        buf[start : start + arr.nbytes] = arr.tobytes()
    return bytes(buf)


def write_store(shard: IndexShard, path: str | Path) -> Path:
    """Write one shard as a single ``.store`` file; returns the path."""
    path = Path(path)
    path.write_bytes(serialize_shard(shard))
    return path


def _parse_header(head: bytes, origin: str) -> tuple[dict, list[dict]]:
    if head[: len(MAGIC)] != MAGIC:
        raise ValueError(f"{origin}: not a shard store (bad magic)")
    (header_len,) = struct.unpack_from("<Q", head, len(MAGIC))
    start = len(MAGIC) + 8
    if start + header_len > len(head):
        raise ValueError(f"{origin}: truncated store header")
    header = json.loads(head[start : start + header_len].decode("utf-8"))
    if header.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"{origin}: unsupported store format "
            f"{header.get('format_version')!r}"
        )
    return header["meta"], header["arrays"]


def _build_shard(
    meta: dict,
    arrays: dict[str, np.ndarray],
    cache_bytes: int,
    store_path: Path | None,
) -> "LazyIndexShard":
    terms_blob = bytes(np.asarray(arrays["terms_blob"], dtype=np.uint8))
    terms = terms_blob.decode("utf-8").split("\n") if terms_blob else []
    arena = CompressedPostingsArena(
        terms=terms,
        offsets=arrays["offsets"],
        first_docs=arrays["first_docs"],
        doc_widths=arrays["doc_widths"],
        doc_words=arrays["doc_words"],
        doc_word_offsets=arrays["doc_word_offsets"],
        tf_widths=arrays["tf_widths"],
        tf_words=arrays["tf_words"],
        tf_word_offsets=arrays["tf_word_offsets"],
        score_kinds=arrays["score_kinds"],
        score_widths=arrays["score_widths"],
        score_raw=arrays["score_raw"],
        score_raw_offsets=arrays["score_raw_offsets"],
        score_books=arrays["score_books"],
        score_book_offsets=arrays["score_book_offsets"],
        score_words=arrays["score_words"],
        score_word_offsets=arrays["score_word_offsets"],
        upper_bounds=arrays["upper_bounds"],
        block_maxes=arrays["block_maxes"],
        block_offsets=arrays["block_offsets"],
        block_size=int(meta["block_size"]),
        cache_bytes=cache_bytes,
    )
    return LazyIndexShard(
        shard_id=int(meta["shard_id"]),
        n_docs=int(meta["n_docs"]),
        avg_doc_length=float(meta["avg_doc_length"]),
        total_tokens=int(meta["total_tokens"]),
        n_docs_global=int(meta["n_docs_global"]),
        similarity=_similarity_from_config(meta["similarity"]),
        arena=arena,
        global_dfs=arrays["global_dfs"],
        doc_len_spec=(
            int(meta["n_doc_lengths"]),
            int(meta["doc_len_first"]),
            int(meta["doc_len_id_width"]),
            int(meta["doc_len_val_width"]),
            arrays["doc_len_id_words"],
            arrays["doc_len_val_words"],
        ),
        store_path=store_path,
    )


def open_store(
    path: str | Path,
    cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
) -> "LazyIndexShard":
    """Open a ``.store`` file as a :class:`LazyIndexShard` in O(1).

    Every column is an ``np.memmap`` view at its TOC offset: nothing is
    read beyond the header until a query decodes a term.
    """
    path = Path(path)
    with path.open("rb") as fh:
        head = fh.read(len(MAGIC) + 8)
        if len(head) < len(MAGIC) + 8:
            raise ValueError(f"{path}: truncated store header")
        (header_len,) = struct.unpack_from("<Q", head, len(MAGIC))
        fh.seek(0)
        head = fh.read(len(MAGIC) + 8 + header_len)
    meta, toc = _parse_header(head, str(path))
    arrays = {
        entry["name"]: np.memmap(
            path,
            dtype=np.dtype(entry["dtype"]),
            mode="r",
            offset=int(entry["offset"]),
            shape=(int(entry["count"]),),
        )
        for entry in toc
    }
    return _build_shard(meta, arrays, cache_bytes, path)


def open_store_buffer(
    buf: "bytes | bytearray | memoryview",
    cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
) -> "LazyIndexShard":
    """Attach to a serialized store living in a buffer (zero-copy views).

    The buffer is typically a ``multiprocessing.shared_memory`` segment:
    the producing process writes :func:`serialize_shard` bytes once, and
    every worker attaches ``np.frombuffer`` views over the same pages.
    """
    head = bytes(memoryview(buf)[: len(MAGIC) + 8])
    if len(head) < len(MAGIC) + 8:
        raise ValueError("buffer: truncated store header")
    (header_len,) = struct.unpack_from("<Q", head, len(MAGIC))
    meta, toc = _parse_header(
        bytes(memoryview(buf)[: len(MAGIC) + 8 + header_len]), "buffer"
    )
    arrays = {
        entry["name"]: np.frombuffer(
            buf,
            dtype=np.dtype(entry["dtype"]),
            count=int(entry["count"]),
            offset=int(entry["offset"]),
        )
        for entry in toc
    }
    return _build_shard(meta, arrays, cache_bytes, None)


def store_info(path: str | Path) -> dict:
    """Header metadata plus file/compression accounting for one store."""
    path = Path(path)
    with path.open("rb") as fh:
        head = fh.read(len(MAGIC) + 8)
        (header_len,) = struct.unpack_from("<Q", head, len(MAGIC))
        fh.seek(0)
        head = fh.read(len(MAGIC) + 8 + header_len)
    meta, toc = _parse_header(head, str(path))
    file_bytes = path.stat().st_size
    raw_bytes = int(meta["n_postings"]) * 20
    return {
        "path": str(path),
        "meta": meta,
        "file_bytes": file_bytes,
        "raw_column_bytes": raw_bytes,
        "compression_ratio": raw_bytes / file_bytes if file_bytes else 0.0,
        "arrays": toc,
    }


def pack_shards(shards: list[IndexShard], directory: str | Path) -> list[Path]:
    """Write every shard as ``shard_<id>.store`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        write_store(shard, directory / f"shard_{shard.shard_id}.store")
        for shard in shards
    ]


def open_stores(
    directory: str | Path,
    cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
) -> list["LazyIndexShard"]:
    """Open every ``shard_*.store`` in ``directory``, ordered by shard id."""
    directory = Path(directory)
    paths = sorted(
        directory.glob("shard_*.store"), key=lambda p: int(p.stem.split("_")[1])
    )
    if not paths:
        raise FileNotFoundError(f"no shard stores in {directory}")
    return [open_store(path, cache_bytes=cache_bytes) for path in paths]


class LazyIndexShard(IndexShard):
    """An :class:`IndexShard` whose postings live in a compressed store.

    Construction is O(1): the arena columns are memmap/buffer views and
    nothing is decoded up front.  ``term()`` materializes a
    :class:`ShardTerm` on first touch (the scalar evaluators and the
    MaxScore kernel's small-query dispatch floor both need one), reusing
    the arena's decoded columns; materialized terms are kept in
    ``_terms`` like any hand-built shard.  Concurrent first touches of
    one term may build the entry twice — both copies are identical views
    of the same decoded arrays, so the benign race never changes a
    result.

    ``store_path`` is the backing file (None for shared-memory buffers);
    ``ProcessExecutor`` uses it to hand workers an attach spec instead of
    pickling the shard.
    """

    def __init__(
        self,
        *,
        shard_id: int,
        n_docs: int,
        avg_doc_length: float,
        total_tokens: int,
        n_docs_global: int,
        similarity: object,
        arena: CompressedPostingsArena,
        global_dfs: np.ndarray,
        doc_len_spec: tuple[int, int, int, int, np.ndarray, np.ndarray],
        store_path: Path | None = None,
    ) -> None:
        # Deliberately not calling the dataclass __init__: doc_lengths is
        # a lazily-decoded property here, not a field.
        self.shard_id = shard_id
        self.n_docs = n_docs
        self.avg_doc_length = avg_doc_length
        self.total_tokens = total_tokens
        self.similarity = similarity
        self.n_docs_global = max(n_docs_global, n_docs)
        self._terms: dict[str, ShardTerm] = {}
        self._arena = arena
        self.global_dfs = global_dfs
        self._doc_len_spec = doc_len_spec
        self._doc_len_ids: np.ndarray | None = None
        self._doc_len_values: np.ndarray | None = None
        self._doc_lengths_dict: dict[int, int] | None = None
        self.store_path = store_path

    # ------------------------------------------------------ term access
    @property
    def arena(self) -> CompressedPostingsArena:  # type: ignore[override]
        return self._arena

    def has_term(self, term: str) -> bool:
        return self._arena.has_term(term)

    def term(self, term: str) -> ShardTerm | None:
        entry = self._terms.get(term)
        if entry is not None:
            return entry
        tid = self._arena._term_ids.get(term)
        if tid is None:
            return None
        run = self._arena.run(term)
        assert run is not None
        entry = ShardTerm(
            term=term,
            postings=PostingList(doc_ids=run.doc_ids, tfs=run.tfs),
            scores=run.scores,
            upper_bound=run.upper_bound,
            global_doc_freq=int(self.global_dfs[tid]),
            block_maxes=np.asarray(run.block_maxes),
        )
        self._terms[term] = entry
        return entry

    def doc_freq(self, term: str) -> int:
        tid = self._arena._term_ids.get(term)
        if tid is None:
            return 0
        return int(self._arena.offsets[tid + 1] - self._arena.offsets[tid])

    def idf(self, term: str) -> float:
        tid = self._arena._term_ids.get(term)
        df = int(self.global_dfs[tid]) if tid is not None else 0
        return self.similarity.idf(df, max(self.n_docs_global, 1))

    def postings(self, term: str) -> PostingList | None:
        entry = self.term(term)
        return entry.postings if entry is not None else None

    def scores(self, term: str) -> np.ndarray | None:
        entry = self.term(term)
        return entry.scores if entry is not None else None

    def upper_bound(self, term: str) -> float:
        tid = self._arena._term_ids.get(term)
        return float(self._arena.upper_bounds[tid]) if tid is not None else 0.0

    def vocabulary_size(self) -> int:
        return self._arena.n_terms

    def terms(self) -> list[str]:
        return list(self._arena.terms)

    # ---------------------------------------------------- doc lengths
    def _decode_doc_lens(self) -> tuple[np.ndarray, np.ndarray]:
        if self._doc_len_ids is None:
            n, first, id_width, val_width, id_words, val_words = (
                self._doc_len_spec
            )
            ids = np.empty(n, dtype=np.int64)
            if n:
                ids[0] = first
                if n > 1:
                    gaps = unpack_bits(id_words, n - 1, id_width)
                    np.add(gaps, 1, out=gaps)
                    ids[1:] = gaps
                    np.cumsum(ids, out=ids)
            self._doc_len_ids = ids
            self._doc_len_values = unpack_bits(val_words, n, val_width)
        assert self._doc_len_values is not None
        return self._doc_len_ids, self._doc_len_values

    @property
    def doc_lengths(self) -> dict[int, int]:  # type: ignore[override]
        if self._doc_lengths_dict is None:
            ids, values = self._decode_doc_lens()
            self._doc_lengths_dict = dict(
                zip(ids.tolist(), values.tolist())
            )
        return self._doc_lengths_dict

    def contains_doc(self, doc_id: int) -> bool:
        ids, _ = self._decode_doc_lens()
        pos = int(np.searchsorted(ids, doc_id))
        return pos < ids.size and int(ids[pos]) == doc_id

    def __repr__(self) -> str:
        return (
            f"LazyIndexShard(shard_id={self.shard_id}, n_docs={self.n_docs}, "
            f"store={str(self.store_path) if self.store_path else '<buffer>'})"
        )
