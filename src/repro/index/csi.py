"""Central Sample Index (CSI).

The CSI (Si & Callan, SIGIR'03) is a small aggregator-side index over a
uniform sample of every shard's documents.  Rank-S — one of the paper's two
state-of-the-art baselines — searches the CSI first and converts the ranked
sample hits into shard votes.  The paper samples each ISN's index at 1%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.index.builder import IndexBuilder
from repro.index.documents import Document
from repro.index.shard import IndexShard
from repro.scoring.similarity import Similarity
from repro.text.analyzer import Analyzer


@dataclass(frozen=True)
class SampledHit:
    """One CSI result: a sampled document, its score, and its home shard."""

    doc_id: int
    score: float
    shard_id: int


class CentralSampleIndex:
    """A single small shard built from samples of all cluster shards.

    The index itself reuses :class:`IndexBuilder`/:class:`IndexShard`; the
    CSI only adds the doc -> home-shard mapping needed to turn sample hits
    into shard rankings.
    """

    def __init__(
        self,
        index: IndexShard,
        doc_to_shard: dict[int, int],
        sample_rate: float,
        n_shards: int,
    ) -> None:
        self.index = index
        self.doc_to_shard = doc_to_shard
        self.sample_rate = sample_rate
        self.n_shards = n_shards

    @classmethod
    def build(
        cls,
        shard_docs: list[list[Document]],
        sample_rate: float = 0.01,
        min_per_shard: int = 5,
        seed: int = 0,
        analyzer: Analyzer | None = None,
        similarity: Similarity | None = None,
    ) -> "CentralSampleIndex":
        """Sample ``sample_rate`` of each shard's documents and index them.

        ``min_per_shard`` guards small test corpora: a 1% sample of a
        200-document shard would be 2 documents, too few for the vote
        machinery to say anything, so each shard contributes at least this
        many (capped at the shard size).
        """
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        rng = random.Random(seed)
        builder = IndexBuilder(shard_id=-1, analyzer=analyzer, similarity=similarity)
        doc_to_shard: dict[int, int] = {}
        for shard_id, docs in enumerate(shard_docs):
            if not docs:
                continue
            n_sample = min(len(docs), max(min_per_shard, round(sample_rate * len(docs))))
            for doc in rng.sample(docs, n_sample):
                builder.add(doc)
                doc_to_shard[doc.doc_id] = shard_id
        return cls(
            index=builder.build(),
            doc_to_shard=doc_to_shard,
            sample_rate=sample_rate,
            n_shards=len(shard_docs),
        )

    def search(self, terms: list[str], k: int) -> list[SampledHit]:
        """Rank the sampled documents for ``terms``; top-k by score.

        Import is deferred to avoid a package cycle (retrieval depends on
        the index package).
        """
        from repro.retrieval.exhaustive import exhaustive_search

        result = exhaustive_search(self.index, terms, k)
        return [
            SampledHit(doc_id=doc_id, score=score, shard_id=self.doc_to_shard[doc_id])
            for doc_id, score in result.hits
        ]

    def __len__(self) -> int:
        return self.index.n_docs
