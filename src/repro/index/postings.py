"""Posting lists and DAAT cursors.

Posting lists are stored as parallel numpy arrays sorted by document id.
The cursor API (``doc()``, ``next()``, ``next_geq()``) is the contract the
document-at-a-time evaluators in :mod:`repro.retrieval` are written against;
``next_geq`` uses galloping search so WAND/MaxScore skipping is sub-linear.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Sentinel document id signalling an exhausted cursor; larger than any real id.
END_OF_LIST: int = 2**62


@dataclass(frozen=True)
class PostingList:
    """Immutable posting list for one term on one shard.

    Attributes
    ----------
    doc_ids:
        Document ids in strictly increasing order.
    tfs:
        Term frequencies aligned with ``doc_ids``.
    """

    doc_ids: np.ndarray
    tfs: np.ndarray

    def __post_init__(self) -> None:
        if self.doc_ids.shape != self.tfs.shape:
            raise ValueError("doc_ids and tfs must be the same length")
        if self.doc_ids.size > 1 and not np.all(np.diff(self.doc_ids) > 0):
            raise ValueError("doc_ids must be strictly increasing")

    def __len__(self) -> int:
        return int(self.doc_ids.size)

    @property
    def max_tf(self) -> int:
        return int(self.tfs.max()) if self.tfs.size else 0

    def cursor(self) -> "PostingCursor":
        return PostingCursor(self)


class PostingCursor:
    """Forward-only cursor over one posting list.

    A fresh cursor is positioned on the first posting (or at end for an
    empty list).  ``weight`` and ``scores`` are attached by the evaluator
    before traversal begins.
    """

    __slots__ = (
        "_doc_ids", "_tfs", "_pos", "_size",
        "scores", "upper_bound", "block_maxes", "block_size",
    )

    def __init__(self, postings: PostingList) -> None:
        self._doc_ids = postings.doc_ids
        self._tfs = postings.tfs
        self._size = int(postings.doc_ids.size)
        self._pos = 0
        self.scores: np.ndarray | None = None
        self.upper_bound: float = 0.0
        self.block_maxes: np.ndarray | None = None
        self.block_size: int = 0

    def doc(self) -> int:
        """Current document id, or END_OF_LIST when exhausted."""
        if self._pos >= self._size:
            return END_OF_LIST
        return int(self._doc_ids[self._pos])

    def tf(self) -> int:
        return int(self._tfs[self._pos])

    def score(self) -> float:
        """Score of the current posting (requires ``scores`` attached)."""
        assert self.scores is not None, "scores not attached to cursor"
        return float(self.scores[self._pos])

    def next(self) -> int:
        """Advance one posting; return the new current doc id."""
        self._pos += 1
        return self.doc()

    def next_geq(self, target: int) -> int:
        """Advance to the first posting with doc id >= ``target``.

        Galloping (exponential) search from the current position followed by
        a bisect keeps total skipping cost O(log gap), which is what gives
        MaxScore/WAND their edge over exhaustive traversal.
        """
        if self._pos >= self._size:
            return END_OF_LIST
        if int(self._doc_ids[self._pos]) >= target:
            return int(self._doc_ids[self._pos])
        # Gallop: find a bracket [lo, hi) with doc_ids[lo] < target and
        # either doc_ids[hi] >= target or hi == size.  Clamping the exit
        # bracket to the array tail keeps the invariant airtight: the
        # bisect below always lands on the answer (or one past the end),
        # so no fallback over the whole array is ever needed.
        lo = self._pos
        step = 1
        hi = lo + step
        while hi < self._size and int(self._doc_ids[hi]) < target:
            lo = hi
            step <<= 1
            hi = lo + step
        if hi > self._size:
            hi = self._size
        self._pos = lo + int(np.searchsorted(self._doc_ids[lo:hi], target, side="left"))
        return self.doc()

    def exhausted(self) -> bool:
        return self._pos >= self._size

    @property
    def position(self) -> int:
        """Index of the current posting (== list length when exhausted)."""
        return min(self._pos, self._size)

    # ------------------------------------------------------- block metadata
    def block_max(self) -> float:
        """Max score within the block containing the current posting.

        Requires ``block_maxes``/``block_size`` attached (the evaluator
        copies them from the shard).  Exhausted cursors contribute nothing.
        """
        assert self.block_maxes is not None and self.block_size > 0
        if self._pos >= self._size:
            return 0.0
        return float(self.block_maxes[self._pos // self.block_size])

    def block_last_doc(self) -> int:
        """Doc id of the last posting in the current block."""
        assert self.block_size > 0
        if self._pos >= self._size:
            return END_OF_LIST
        block = self._pos // self.block_size
        end = min((block + 1) * self.block_size, self._size) - 1
        return int(self._doc_ids[end])

    def remaining(self) -> int:
        return max(self._size - self._pos, 0)


class PostingListBuilder:
    """Accumulates (doc_id, tf) pairs during indexing, emits a PostingList.

    Documents must be added in increasing doc-id order — the index builder
    guarantees this by iterating its accepted documents in sorted order.
    """

    __slots__ = ("_doc_ids", "_tfs", "_last_doc")

    def __init__(self) -> None:
        self._doc_ids: list[int] = []
        self._tfs: list[int] = []
        self._last_doc = -1

    def add(self, doc_id: int, tf: int) -> None:
        if doc_id <= self._last_doc:
            raise ValueError(
                f"postings must be added in increasing doc order "
                f"(got {doc_id} after {self._last_doc})"
            )
        if tf <= 0:
            raise ValueError("tf must be positive")
        self._doc_ids.append(doc_id)
        self._tfs.append(tf)
        self._last_doc = doc_id

    def build(self) -> PostingList:
        return PostingList(
            doc_ids=np.asarray(self._doc_ids, dtype=np.int64),
            tfs=np.asarray(self._tfs, dtype=np.int32),
        )
