"""Index-time term statistics — the raw material of Cottage's predictors.

The paper's Tables I and II define the per-term features feeding the quality
and latency NNs; every one of them derives from statistics "calculated during
the indexing phase" (Section I).  This module computes those statistics from
a term's per-posting score array (doc-id order, as traversal sees it) and
caches them on the shard, so query-time feature extraction is a dict lookup.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.index.shard import IndexShard


@dataclass(frozen=True)
class TermStats:
    """All index-time statistics for one term on one shard.

    Score aggregates (Table I) describe the score distribution; traversal
    statistics (Table II) describe how a dynamic-pruning evaluator will move
    through the posting list, which is what drives service time.
    """

    term: str
    posting_length: int
    # --- score aggregates (Table I) ---
    first_quartile: float
    mean: float
    median: float
    geometric_mean: float
    harmonic_mean: float
    third_quartile: float
    kth_score: float
    max_score: float
    variance: float
    # --- traversal statistics (Table II) ---
    docs_ever_in_topk: int
    n_local_maxima: int
    n_local_maxima_above_mean: int
    n_max_score: int
    docs_within_5pct_of_max: int
    docs_within_5pct_of_kth: int
    estimated_max_score: float
    idf: float


def _docs_ever_in_topk(scores: np.ndarray, k: int) -> int:
    """Count documents that enter the running top-k during DAAT traversal.

    Dynamic pruning must fully score every document that improves the
    current top-k heap; the count of such documents is a strong service-time
    signal (Table II row 2).
    """
    heap: list[float] = []
    entered = 0
    for s in scores:
        s = float(s)
        if len(heap) < k:
            heapq.heappush(heap, s)
            entered += 1
        elif s > heap[0]:
            heapq.heapreplace(heap, s)
            entered += 1
    return entered


def _local_maxima_mask(scores: np.ndarray) -> np.ndarray:
    """Boolean mask of local score maxima along the posting list.

    A posting is a local maximum when it scores strictly above its
    predecessor and at least as high as its successor (endpoints compare
    only against their single neighbour).  Local peaks are documents the
    pruning strategies cannot skip (paper Section III-C).
    """
    n = scores.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n == 1:
        return np.ones(1, dtype=bool)
    left_ok = np.empty(n, dtype=bool)
    left_ok[0] = True
    left_ok[1:] = scores[1:] > scores[:-1]
    right_ok = np.empty(n, dtype=bool)
    right_ok[-1] = True
    right_ok[:-1] = scores[:-1] >= scores[1:]
    return left_ok & right_ok


def compute_term_stats(
    term: str,
    scores: np.ndarray,
    k: int,
    idf: float,
    upper_bound: float,
) -> TermStats:
    """Compute the full statistics bundle for one term.

    Parameters
    ----------
    scores:
        Per-posting scores in doc-id (traversal) order.
    k:
        The engine's top-K (the paper uses K=10 throughout).
    idf:
        Inverse document frequency of the term on this shard.
    upper_bound:
        The similarity's analytic upper bound, reported as the "Estimated
        max score" feature (the Macdonald et al. upper-bound approximation
        in the paper's Table II).
    """
    scores = np.asarray(scores, dtype=np.float64)
    n = int(scores.size)
    if n == 0:
        return TermStats(
            term=term, posting_length=0, first_quartile=0.0, mean=0.0, median=0.0,
            geometric_mean=0.0, harmonic_mean=0.0, third_quartile=0.0, kth_score=0.0,
            max_score=0.0, variance=0.0, docs_ever_in_topk=0, n_local_maxima=0,
            n_local_maxima_above_mean=0, n_max_score=0, docs_within_5pct_of_max=0,
            docs_within_5pct_of_kth=0, estimated_max_score=0.0, idf=idf,
        )

    q1, median, q3 = (float(v) for v in np.percentile(scores, [25, 50, 75]))
    mean = float(scores.mean())
    max_score = float(scores.max())
    variance = float(scores.var())
    positive = scores[scores > 0]
    if positive.size:
        geometric = float(np.exp(np.mean(np.log(positive))))
        harmonic = float(positive.size / np.sum(1.0 / positive))
    else:
        geometric = 0.0
        harmonic = 0.0
    if n >= k:
        kth = float(np.partition(scores, n - k)[n - k])
    else:
        kth = float(scores.min())

    maxima = _local_maxima_mask(scores)
    n_local = int(maxima.sum())
    n_local_above_mean = int(np.count_nonzero(maxima & (scores > mean)))
    n_max = int(np.count_nonzero(scores >= max_score - 1e-12))
    within_max = int(np.count_nonzero(scores >= 0.95 * max_score))
    within_kth = int(np.count_nonzero(scores >= 0.95 * kth))

    return TermStats(
        term=term,
        posting_length=n,
        first_quartile=q1,
        mean=mean,
        median=median,
        geometric_mean=geometric,
        harmonic_mean=harmonic,
        third_quartile=q3,
        kth_score=kth,
        max_score=max_score,
        variance=variance,
        docs_ever_in_topk=_docs_ever_in_topk(scores, k),
        n_local_maxima=n_local,
        n_local_maxima_above_mean=n_local_above_mean,
        n_max_score=n_max,
        docs_within_5pct_of_max=within_max,
        docs_within_5pct_of_kth=within_kth,
        estimated_max_score=upper_bound * math.log1p(n),
        idf=idf,
    )


class TermStatsIndex:
    """Per-shard cache of :class:`TermStats`.

    Statistics are computed lazily on first access and memoized — building
    them for the entire vocabulary up front would waste indexing time on
    terms no query ever touches.
    """

    def __init__(self, shard: IndexShard, k: int = 10) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.shard = shard
        self.k = k
        self._cache: dict[str, TermStats] = {}

    def get(self, term: str) -> TermStats:
        cached = self._cache.get(term)
        if cached is not None:
            return cached
        entry = self.shard.term(term)
        if entry is None:
            stats = compute_term_stats(
                term, np.zeros(0), self.k, idf=self.shard.idf(term), upper_bound=0.0
            )
        else:
            stats = compute_term_stats(
                term,
                entry.scores,
                self.k,
                idf=self.shard.idf(term),
                upper_bound=entry.upper_bound,
            )
        self._cache[term] = stats
        return stats

    def warm(self, terms: list[str]) -> None:
        """Precompute statistics for a known query vocabulary."""
        for term in terms:
            self.get(term)

    def __len__(self) -> int:
        return len(self._cache)
