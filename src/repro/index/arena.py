"""Columnar postings arena: one shard's index as flat numpy columns.

The cursor-based evaluators in :mod:`repro.retrieval` attach per-term
``scores``/``block_maxes`` arrays to a fresh :class:`PostingCursor` on
every query, and then advance posting by posting with an ``int()``/
``float()`` boxing per access.  The arena removes both costs: every
posting list of the shard is concatenated once — at index build time —
into contiguous ``doc_ids``/``tfs``/``scores`` columns with per-term
offset slices, and the block-max metadata is packed the same way.  The
vectorized kernels in :mod:`repro.retrieval.kernels` operate directly on
these columns with ``searchsorted`` + masked gathers; a query only pays
for building a handful of :class:`TermRun` slice views.

Terms are laid out in sorted order, which matches the on-disk ``.npz``
layout of :mod:`repro.index.storage` — a loaded shard and a freshly
built one produce byte-identical arenas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.shard import IndexShard


@dataclass
class TermRun:
    """One query term's live traversal state over the arena columns.

    ``doc_ids``/``scores``/``tfs`` are zero-copy views of the arena
    columns; ``pos`` is the cursor position within the views (the kernels
    mutate it in place).  ``block_maxes`` holds the per-block maxima for
    this term and ``block_size`` the block length, mirroring what the
    scalar evaluators attach to a :class:`~repro.index.postings.
    PostingCursor`.
    """

    term: str
    doc_ids: np.ndarray
    tfs: np.ndarray
    scores: np.ndarray
    upper_bound: float
    block_maxes: np.ndarray
    block_size: int
    size: int
    pos: int = 0

    def remaining(self) -> int:
        return max(self.size - self.pos, 0)

    def exhausted(self) -> bool:
        return self.pos >= self.size


class PostingsArena:
    """Immutable columnar view of one shard's complete inverted index.

    Attributes
    ----------
    doc_ids, tfs, scores:
        All posting lists concatenated in sorted-term order.
    offsets:
        ``offsets[i]:offsets[i+1]`` slices term *i*'s postings out of the
        columns.
    upper_bounds:
        Per-term global score upper bounds, aligned with ``terms``.
    block_maxes, block_offsets:
        Per-block score maxima for every term, concatenated, with
        ``block_offsets`` slicing them per term (Block-Max WAND
        metadata).
    """

    __slots__ = (
        "terms", "offsets", "doc_ids", "tfs", "scores",
        "upper_bounds", "block_maxes", "block_offsets", "block_size",
        "_term_ids",
    )

    def __init__(
        self,
        terms: list[str],
        offsets: np.ndarray,
        doc_ids: np.ndarray,
        tfs: np.ndarray,
        scores: np.ndarray,
        upper_bounds: np.ndarray,
        block_maxes: np.ndarray,
        block_offsets: np.ndarray,
        block_size: int,
    ) -> None:
        self.terms = terms
        self.offsets = offsets
        self.doc_ids = doc_ids
        self.tfs = tfs
        self.scores = scores
        self.upper_bounds = upper_bounds
        self.block_maxes = block_maxes
        self.block_offsets = block_offsets
        self.block_size = block_size
        self._term_ids = {term: i for i, term in enumerate(terms)}

    @classmethod
    def from_shard(cls, shard: "IndexShard") -> "PostingsArena":
        """Pack a shard's term dictionary into arena columns (build once)."""
        from repro.index.shard import BLOCK_SIZE

        terms = sorted(shard.terms())
        n = len(terms)
        offsets = np.zeros(n + 1, dtype=np.int64)
        block_offsets = np.zeros(n + 1, dtype=np.int64)
        doc_chunks, tf_chunks, score_chunks, block_chunks = [], [], [], []
        upper_bounds = np.zeros(n, dtype=np.float64)
        for i, term in enumerate(terms):
            entry = shard.term(term)
            postings = entry.postings
            offsets[i + 1] = offsets[i] + len(postings)
            doc_chunks.append(postings.doc_ids)
            tf_chunks.append(postings.tfs)
            score_chunks.append(entry.scores)
            upper_bounds[i] = entry.upper_bound
            maxes = (
                entry.block_maxes
                if entry.block_maxes is not None
                else np.zeros(0, dtype=np.float64)
            )
            block_chunks.append(maxes)
            block_offsets[i + 1] = block_offsets[i] + maxes.size
        return cls(
            terms=terms,
            offsets=offsets,
            doc_ids=(
                np.concatenate(doc_chunks)
                if doc_chunks else np.zeros(0, dtype=np.int64)
            ),
            tfs=(
                np.concatenate(tf_chunks)
                if tf_chunks else np.zeros(0, dtype=np.int32)
            ),
            scores=(
                np.concatenate(score_chunks)
                if score_chunks else np.zeros(0, dtype=np.float64)
            ),
            upper_bounds=upper_bounds,
            block_maxes=(
                np.concatenate(block_chunks)
                if block_chunks else np.zeros(0, dtype=np.float64)
            ),
            block_offsets=block_offsets,
            block_size=BLOCK_SIZE,
        )

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    @property
    def n_postings(self) -> int:
        return int(self.offsets[-1])

    def has_term(self, term: str) -> bool:
        return term in self._term_ids

    def run(self, term: str) -> TermRun | None:
        """A fresh traversal state for ``term`` (None when absent).

        Each call returns an independent :class:`TermRun` — duplicated
        query terms traverse separately, exactly like independent
        cursors.
        """
        tid = self._term_ids.get(term)
        if tid is None:
            return None
        lo, hi = int(self.offsets[tid]), int(self.offsets[tid + 1])
        blo, bhi = int(self.block_offsets[tid]), int(self.block_offsets[tid + 1])
        return TermRun(
            term=term,
            doc_ids=self.doc_ids[lo:hi],
            tfs=self.tfs[lo:hi],
            scores=self.scores[lo:hi],
            upper_bound=float(self.upper_bounds[tid]),
            block_maxes=self.block_maxes[blo:bhi],
            block_size=self.block_size,
            size=hi - lo,
        )

    def __repr__(self) -> str:
        return (
            f"PostingsArena({self.n_terms} terms, {self.n_postings} postings, "
            f"block_size={self.block_size})"
        )
