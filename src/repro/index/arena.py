"""Columnar postings arena: one shard's index as flat numpy columns.

The cursor-based evaluators in :mod:`repro.retrieval` attach per-term
``scores``/``block_maxes`` arrays to a fresh :class:`PostingCursor` on
every query, and then advance posting by posting with an ``int()``/
``float()`` boxing per access.  The arena removes both costs: every
posting list of the shard is concatenated once — at index build time —
into contiguous ``doc_ids``/``tfs``/``scores`` columns with per-term
offset slices, and the block-max metadata is packed the same way.  The
vectorized kernels in :mod:`repro.retrieval.kernels` operate directly on
these columns with ``searchsorted`` + masked gathers; a query only pays
for building a handful of :class:`TermRun` slice views.

Terms are laid out in sorted order, which matches the on-disk ``.npz``
layout of :mod:`repro.index.storage` — a loaded shard and a freshly
built one produce byte-identical arenas.

:class:`CompressedPostingsArena` is the same columnar index behind a
compressed encoding: doc ids are delta + bit-packed per term, tfs are
bit-packed, and scores are dictionary-encoded against a per-term float64
codebook (with a verified raw fallback).  ``run`` decodes one term's
columns with vectorized shifts/masks into the exact ``int64``/``int32``/
``float64`` arrays the raw arena holds, so every kernel runs unchanged
and bit-identical; a size-bounded LRU keeps hot terms decoded.  The
packed streams are plain flat arrays, which is what lets
:mod:`repro.index.store` memory-map them straight off disk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.index.shard import IndexShard


@dataclass
class TermRun:
    """One query term's live traversal state over the arena columns.

    ``doc_ids``/``scores``/``tfs`` are zero-copy views of the arena
    columns; ``pos`` is the cursor position within the views (the kernels
    mutate it in place).  ``block_maxes`` holds the per-block maxima for
    this term and ``block_size`` the block length, mirroring what the
    scalar evaluators attach to a :class:`~repro.index.postings.
    PostingCursor`.
    """

    term: str
    doc_ids: np.ndarray
    tfs: np.ndarray
    scores: np.ndarray
    upper_bound: float
    block_maxes: np.ndarray
    block_size: int
    size: int
    pos: int = 0

    def remaining(self) -> int:
        return max(self.size - self.pos, 0)

    def exhausted(self) -> bool:
        return self.pos >= self.size


class PostingsArena:
    """Immutable columnar view of one shard's complete inverted index.

    Attributes
    ----------
    doc_ids, tfs, scores:
        All posting lists concatenated in sorted-term order.
    offsets:
        ``offsets[i]:offsets[i+1]`` slices term *i*'s postings out of the
        columns.
    upper_bounds:
        Per-term global score upper bounds, aligned with ``terms``.
    block_maxes, block_offsets:
        Per-block score maxima for every term, concatenated, with
        ``block_offsets`` slicing them per term (Block-Max WAND
        metadata).
    """

    __slots__ = (
        "terms", "offsets", "doc_ids", "tfs", "scores",
        "upper_bounds", "block_maxes", "block_offsets", "block_size",
        "_term_ids",
    )

    def __init__(
        self,
        terms: list[str],
        offsets: np.ndarray,
        doc_ids: np.ndarray,
        tfs: np.ndarray,
        scores: np.ndarray,
        upper_bounds: np.ndarray,
        block_maxes: np.ndarray,
        block_offsets: np.ndarray,
        block_size: int,
    ) -> None:
        self.terms = terms
        self.offsets = offsets
        self.doc_ids = doc_ids
        self.tfs = tfs
        self.scores = scores
        self.upper_bounds = upper_bounds
        self.block_maxes = block_maxes
        self.block_offsets = block_offsets
        self.block_size = block_size
        self._term_ids = {term: i for i, term in enumerate(terms)}

    @classmethod
    def from_shard(cls, shard: "IndexShard") -> "PostingsArena":
        """Pack a shard's term dictionary into arena columns (build once)."""
        from repro.index.shard import BLOCK_SIZE

        terms = sorted(shard.terms())
        n = len(terms)
        offsets = np.zeros(n + 1, dtype=np.int64)
        block_offsets = np.zeros(n + 1, dtype=np.int64)
        doc_chunks, tf_chunks, score_chunks, block_chunks = [], [], [], []
        upper_bounds = np.zeros(n, dtype=np.float64)
        for i, term in enumerate(terms):
            entry = shard.term(term)
            postings = entry.postings
            offsets[i + 1] = offsets[i] + len(postings)
            doc_chunks.append(postings.doc_ids)
            tf_chunks.append(postings.tfs)
            score_chunks.append(entry.scores)
            upper_bounds[i] = entry.upper_bound
            maxes = (
                entry.block_maxes
                if entry.block_maxes is not None
                else np.zeros(0, dtype=np.float64)
            )
            block_chunks.append(maxes)
            block_offsets[i + 1] = block_offsets[i] + maxes.size
        return cls(
            terms=terms,
            offsets=offsets,
            doc_ids=(
                np.concatenate(doc_chunks)
                if doc_chunks else np.zeros(0, dtype=np.int64)
            ),
            tfs=(
                np.concatenate(tf_chunks)
                if tf_chunks else np.zeros(0, dtype=np.int32)
            ),
            scores=(
                np.concatenate(score_chunks)
                if score_chunks else np.zeros(0, dtype=np.float64)
            ),
            upper_bounds=upper_bounds,
            block_maxes=(
                np.concatenate(block_chunks)
                if block_chunks else np.zeros(0, dtype=np.float64)
            ),
            block_offsets=block_offsets,
            block_size=BLOCK_SIZE,
        )

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    @property
    def n_postings(self) -> int:
        return int(self.offsets[-1])

    def has_term(self, term: str) -> bool:
        return term in self._term_ids

    def run(self, term: str) -> TermRun | None:
        """A fresh traversal state for ``term`` (None when absent).

        Each call returns an independent :class:`TermRun` — duplicated
        query terms traverse separately, exactly like independent
        cursors.
        """
        tid = self._term_ids.get(term)
        if tid is None:
            return None
        lo, hi = int(self.offsets[tid]), int(self.offsets[tid + 1])
        blo, bhi = int(self.block_offsets[tid]), int(self.block_offsets[tid + 1])
        return TermRun(
            term=term,
            doc_ids=self.doc_ids[lo:hi],
            tfs=self.tfs[lo:hi],
            scores=self.scores[lo:hi],
            upper_bound=float(self.upper_bounds[tid]),
            block_maxes=self.block_maxes[blo:bhi],
            block_size=self.block_size,
            size=hi - lo,
        )

    def __repr__(self) -> str:
        return (
            f"PostingsArena({self.n_terms} terms, {self.n_postings} postings, "
            f"block_size={self.block_size})"
        )


# ----------------------------------------------------------- bit packing
#
# Fixed-width little-endian packing into uint64 words.  Every packed
# segment carries one trailing zero pad word so the decoder can always
# gather word ``wi + 1`` unconditionally; widths are capped at 63 bits so
# every shift stays in [0, 63] (numpy shifts by >= 64 are undefined).

_MAX_BITS = 63


def bits_for(max_value: int) -> int:
    """Smallest usable bit width for values in ``[0, max_value]`` (>= 1)."""
    if max_value < 0:
        raise ValueError("bit-packed values must be non-negative")
    width = int(max_value).bit_length()
    if width > _MAX_BITS:
        raise ValueError(f"value {max_value} needs {width} bits (max {_MAX_BITS})")
    return max(width, 1)


def packed_words(n_values: int, width: int) -> int:
    """Word count of a packed segment, including the trailing pad word."""
    return (n_values * width + 63) // 64 + 1


def pack_bits(values: np.ndarray, width: int) -> np.ndarray:
    """Pack non-negative ints into ``width``-bit fields of uint64 words."""
    if not 1 <= width <= _MAX_BITS:
        raise ValueError(f"width must be in [1, {_MAX_BITS}], got {width}")
    n = int(values.size)
    words = np.zeros(packed_words(n, width), dtype=np.uint64)
    if n == 0:
        return words
    v = np.ascontiguousarray(values, dtype=np.int64)
    if int(v.min()) < 0 or int(v.max()) >> width:
        raise ValueError(f"values do not fit in {width} bits")
    u = v.astype(np.uint64)
    pos = np.arange(n, dtype=np.uint64) * np.uint64(width)
    wi = (pos >> np.uint64(6)).astype(np.int64)
    bo = pos & np.uint64(63)
    np.bitwise_or.at(words, wi, u << bo)
    # Fields straddling a word boundary spill their high bits into the
    # next word (the pad word absorbs the final spill).
    spill = bo != 0
    if spill.any():
        np.bitwise_or.at(
            words, wi[spill] + 1, u[spill] >> (np.uint64(64) - bo[spill])
        )
    return words


def unpack_bits(words: np.ndarray, n: int, width: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``n`` values as an int64 array."""
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pos = np.arange(n, dtype=np.uint64) * np.uint64(width)
    wi = (pos >> np.uint64(6)).astype(np.int64)
    bo = pos & np.uint64(63)
    lo = words[wi] >> bo
    # Shift counts must stay < 64: when bo == 0 the high word contributes
    # nothing, so mask its (would-be shift-by-64) lanes away instead.
    hi = np.where(bo != 0, words[wi + 1] << ((np.uint64(64) - bo) & np.uint64(63)), 0)
    mask = np.uint64((1 << width) - 1)
    return ((lo | hi) & mask).astype(np.int64)


@dataclass(frozen=True)
class DecodeStats:
    """LRU decode-cache counters for one :class:`CompressedPostingsArena`."""

    hits: int
    misses: int
    entries: int
    bytes: int
    evictions: int = 0


_SCORE_RAW = 0
_SCORE_CODEBOOK = 1

DEFAULT_DECODE_CACHE_BYTES = 256 << 20
"""Default decode-LRU budget: decoded columns kept per arena (bytes)."""


class CompressedPostingsArena:
    """Delta/bit-packed :class:`PostingsArena` with per-term lazy decode.

    Same query-facing surface as the raw arena (``run``/``has_term``/
    ``terms``), but the columns live packed: ``run`` decodes one term on
    demand through a byte-bounded LRU and returns a :class:`TermRun`
    whose arrays are *exactly* the raw arena's — same dtypes, same bits —
    so the kernels are bit-identical on either arena.

    Encoding, per term with ``n`` postings:

    * **doc_ids** — ``first_docs[t]`` plus ``n - 1`` gaps, each stored as
      ``delta - 1`` (doc ids are strictly increasing) in
      ``doc_widths[t]``-bit fields; decoded with a cumulative sum.
    * **tfs** — raw values in ``tf_widths[t]``-bit fields.
    * **scores** — a sorted float64 codebook of the distinct values plus
      bit-packed codebook indices, *verified bitwise* against the source
      at build time; terms where the codebook does not pay for itself (or
      fails the bitwise check, e.g. ``-0.0``) store raw float64.

    All packed streams are flat arrays sliced by per-term offsets, so the
    whole structure maps 1:1 onto the on-disk TOC of
    :mod:`repro.index.store` and can be backed by ``np.memmap`` columns.
    """

    __slots__ = (
        "terms", "offsets", "first_docs",
        "doc_widths", "doc_words", "doc_word_offsets",
        "tf_widths", "tf_words", "tf_word_offsets",
        "score_kinds", "score_widths",
        "score_raw", "score_raw_offsets",
        "score_books", "score_book_offsets",
        "score_words", "score_word_offsets",
        "upper_bounds", "block_maxes", "block_offsets", "block_size",
        "_term_ids", "_cache", "_cache_bytes", "_cache_budget",
        "_lock", "_hits", "_misses", "_evictions",
    )

    def __init__(
        self,
        terms: list[str],
        offsets: np.ndarray,
        first_docs: np.ndarray,
        doc_widths: np.ndarray,
        doc_words: np.ndarray,
        doc_word_offsets: np.ndarray,
        tf_widths: np.ndarray,
        tf_words: np.ndarray,
        tf_word_offsets: np.ndarray,
        score_kinds: np.ndarray,
        score_widths: np.ndarray,
        score_raw: np.ndarray,
        score_raw_offsets: np.ndarray,
        score_books: np.ndarray,
        score_book_offsets: np.ndarray,
        score_words: np.ndarray,
        score_word_offsets: np.ndarray,
        upper_bounds: np.ndarray,
        block_maxes: np.ndarray,
        block_offsets: np.ndarray,
        block_size: int,
        cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
    ) -> None:
        self.terms = terms
        self.offsets = offsets
        self.first_docs = first_docs
        self.doc_widths = doc_widths
        self.doc_words = doc_words
        self.doc_word_offsets = doc_word_offsets
        self.tf_widths = tf_widths
        self.tf_words = tf_words
        self.tf_word_offsets = tf_word_offsets
        self.score_kinds = score_kinds
        self.score_widths = score_widths
        self.score_raw = score_raw
        self.score_raw_offsets = score_raw_offsets
        self.score_books = score_books
        self.score_book_offsets = score_book_offsets
        self.score_words = score_words
        self.score_word_offsets = score_word_offsets
        self.upper_bounds = upper_bounds
        self.block_maxes = block_maxes
        self.block_offsets = block_offsets
        self.block_size = block_size
        self._term_ids = {term: i for i, term in enumerate(terms)}
        # Decoded-column LRU: tid -> (doc_ids, tfs, scores, nbytes).
        self._cache: OrderedDict[int, tuple[np.ndarray, np.ndarray, np.ndarray, int]]
        self._cache = OrderedDict()
        self._cache_bytes = 0
        self._cache_budget = max(int(cache_bytes), 0)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------ build
    @classmethod
    def from_arena(
        cls,
        arena: PostingsArena,
        cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
    ) -> "CompressedPostingsArena":
        """Compress a raw arena (bit-exact: ``run`` round-trips verbatim)."""
        n = arena.n_terms
        first_docs = np.zeros(n, dtype=np.int64)
        doc_widths = np.ones(n, dtype=np.uint8)
        tf_widths = np.ones(n, dtype=np.uint8)
        score_kinds = np.zeros(n, dtype=np.uint8)
        score_widths = np.ones(n, dtype=np.uint8)
        doc_word_offsets = np.zeros(n + 1, dtype=np.int64)
        tf_word_offsets = np.zeros(n + 1, dtype=np.int64)
        score_raw_offsets = np.zeros(n + 1, dtype=np.int64)
        score_book_offsets = np.zeros(n + 1, dtype=np.int64)
        score_word_offsets = np.zeros(n + 1, dtype=np.int64)
        doc_chunks: list[np.ndarray] = []
        tf_chunks: list[np.ndarray] = []
        raw_chunks: list[np.ndarray] = []
        book_chunks: list[np.ndarray] = []
        idx_chunks: list[np.ndarray] = []
        for tid in range(n):
            lo, hi = int(arena.offsets[tid]), int(arena.offsets[tid + 1])
            count = hi - lo
            docs = np.ascontiguousarray(arena.doc_ids[lo:hi], dtype=np.int64)
            tfs = np.ascontiguousarray(arena.tfs[lo:hi], dtype=np.int64)
            scores = np.ascontiguousarray(arena.scores[lo:hi], dtype=np.float64)
            # -- doc ids: first + (delta - 1) gaps
            if count:
                if int(docs[0]) < 0:
                    raise ValueError(
                        f"term {arena.terms[tid]!r}: negative doc id {int(docs[0])}"
                    )
                first_docs[tid] = docs[0]
            if count > 1:
                gaps = np.diff(docs)
                if int(gaps.min()) <= 0:
                    raise ValueError(
                        f"term {arena.terms[tid]!r}: doc_ids must be strictly "
                        "increasing"
                    )
                gaps -= 1
                doc_widths[tid] = bits_for(int(gaps.max()))
                doc_chunks.append(pack_bits(gaps, int(doc_widths[tid])))
            else:
                doc_chunks.append(np.zeros(packed_words(0, 1), dtype=np.uint64))
            doc_word_offsets[tid + 1] = doc_word_offsets[tid] + doc_chunks[-1].size
            # -- tfs: raw values
            if count:
                if int(tfs.min()) < 0:
                    raise ValueError(
                        f"term {arena.terms[tid]!r}: negative tf"
                    )
                tf_widths[tid] = bits_for(int(tfs.max()))
            tf_chunks.append(pack_bits(tfs, int(tf_widths[tid])))
            tf_word_offsets[tid + 1] = tf_word_offsets[tid] + tf_chunks[-1].size
            # -- scores: codebook when it pays AND round-trips bitwise
            encoded = False
            if count:
                book, idx = np.unique(scores, return_inverse=True)
                width = bits_for(max(int(book.size) - 1, 0))
                cost = book.size * 64 + packed_words(count, width) * 64
                if cost < count * 64 and np.array_equal(
                    book[idx].view(np.int64), scores.view(np.int64)
                ):
                    encoded = True
                    score_kinds[tid] = _SCORE_CODEBOOK
                    score_widths[tid] = width
                    book_chunks.append(book)
                    idx_chunks.append(pack_bits(idx.astype(np.int64), width))
                    score_book_offsets[tid + 1] = (
                        score_book_offsets[tid] + book.size
                    )
                    score_word_offsets[tid + 1] = (
                        score_word_offsets[tid] + idx_chunks[-1].size
                    )
                    score_raw_offsets[tid + 1] = score_raw_offsets[tid]
            if not encoded:
                raw_chunks.append(scores)
                score_raw_offsets[tid + 1] = score_raw_offsets[tid] + count
                score_book_offsets[tid + 1] = score_book_offsets[tid]
                score_word_offsets[tid + 1] = score_word_offsets[tid]

        def _cat(chunks: list[np.ndarray], dtype: type) -> np.ndarray:
            return (
                np.concatenate(chunks) if chunks else np.zeros(0, dtype=dtype)
            )

        return cls(
            terms=list(arena.terms),
            offsets=np.asarray(arena.offsets, dtype=np.int64).copy(),
            first_docs=first_docs,
            doc_widths=doc_widths,
            doc_words=_cat(doc_chunks, np.uint64),
            doc_word_offsets=doc_word_offsets,
            tf_widths=tf_widths,
            tf_words=_cat(tf_chunks, np.uint64),
            tf_word_offsets=tf_word_offsets,
            score_kinds=score_kinds,
            score_widths=score_widths,
            score_raw=_cat(raw_chunks, np.float64),
            score_raw_offsets=score_raw_offsets,
            score_books=_cat(book_chunks, np.float64),
            score_book_offsets=score_book_offsets,
            score_words=_cat(idx_chunks, np.uint64),
            score_word_offsets=score_word_offsets,
            upper_bounds=np.asarray(arena.upper_bounds, dtype=np.float64).copy(),
            block_maxes=np.asarray(arena.block_maxes, dtype=np.float64).copy(),
            block_offsets=np.asarray(arena.block_offsets, dtype=np.int64).copy(),
            block_size=arena.block_size,
            cache_bytes=cache_bytes,
        )

    # ----------------------------------------------------------- decode
    def _decode(self, tid: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        lo, hi = int(self.offsets[tid]), int(self.offsets[tid + 1])
        count = hi - lo
        if count == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int32),
                np.zeros(0, dtype=np.float64),
            )
        wlo, whi = int(self.doc_word_offsets[tid]), int(self.doc_word_offsets[tid + 1])
        doc_ids = np.empty(count, dtype=np.int64)
        doc_ids[0] = self.first_docs[tid]
        if count > 1:
            gaps = unpack_bits(
                self.doc_words[wlo:whi], count - 1, int(self.doc_widths[tid])
            )
            np.add(gaps, 1, out=gaps)
            doc_ids[1:] = gaps
            np.cumsum(doc_ids, out=doc_ids)
        wlo, whi = int(self.tf_word_offsets[tid]), int(self.tf_word_offsets[tid + 1])
        tfs = unpack_bits(
            self.tf_words[wlo:whi], count, int(self.tf_widths[tid])
        ).astype(np.int32)
        if self.score_kinds[tid] == _SCORE_CODEBOOK:
            blo, bhi = (
                int(self.score_book_offsets[tid]),
                int(self.score_book_offsets[tid + 1]),
            )
            wlo, whi = (
                int(self.score_word_offsets[tid]),
                int(self.score_word_offsets[tid + 1]),
            )
            idx = unpack_bits(
                self.score_words[wlo:whi], count, int(self.score_widths[tid])
            )
            scores = np.asarray(self.score_books[blo:bhi])[idx]
        else:
            rlo, rhi = (
                int(self.score_raw_offsets[tid]),
                int(self.score_raw_offsets[tid + 1]),
            )
            scores = np.asarray(self.score_raw[rlo:rhi])
        return doc_ids, tfs, scores

    def columns(self, tid: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decoded (doc_ids, tfs, scores) for term ``tid``, LRU-cached."""
        with self._lock:
            entry = self._cache.get(tid)
            if entry is not None:
                self._hits += 1
                self._cache.move_to_end(tid)
                return entry[0], entry[1], entry[2]
            self._misses += 1
        doc_ids, tfs, scores = self._decode(tid)
        nbytes = doc_ids.nbytes + tfs.nbytes + scores.nbytes
        with self._lock:
            if tid not in self._cache:
                self._cache[tid] = (doc_ids, tfs, scores, nbytes)
                self._cache_bytes += nbytes
                while self._cache_bytes > self._cache_budget and len(self._cache) > 1:
                    _, evicted = self._cache.popitem(last=False)
                    self._cache_bytes -= evicted[3]
                    self._evictions += 1
        return doc_ids, tfs, scores

    def set_cache_budget(self, cache_bytes: int) -> None:
        """Re-size the decode LRU in place (evicting down if shrunk).

        At least one entry always survives — the same floor the insert
        path keeps, so a budget smaller than any single column degrades
        to "cache exactly the last decoded term", never to thrashing on
        the entry being returned.
        """
        with self._lock:
            self._cache_budget = max(int(cache_bytes), 0)
            while self._cache_bytes > self._cache_budget and len(self._cache) > 1:
                _, evicted = self._cache.popitem(last=False)
                self._cache_bytes -= evicted[3]
                self._evictions += 1

    @property
    def decode_stats(self) -> DecodeStats:
        with self._lock:
            return DecodeStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._cache),
                bytes=self._cache_bytes,
                evictions=self._evictions,
            )

    # ------------------------------------------------------------ query
    @property
    def n_terms(self) -> int:
        return len(self.terms)

    @property
    def n_postings(self) -> int:
        return int(self.offsets[-1])

    def has_term(self, term: str) -> bool:
        return term in self._term_ids

    def run(self, term: str) -> TermRun | None:
        """A fresh :class:`TermRun` over the decoded columns (or None)."""
        tid = self._term_ids.get(term)
        if tid is None:
            return None
        doc_ids, tfs, scores = self.columns(tid)
        blo, bhi = int(self.block_offsets[tid]), int(self.block_offsets[tid + 1])
        return TermRun(
            term=term,
            doc_ids=doc_ids,
            tfs=tfs,
            scores=scores,
            upper_bound=float(self.upper_bounds[tid]),
            block_maxes=self.block_maxes[blo:bhi],
            block_size=self.block_size,
            size=doc_ids.size,
        )

    # ------------------------------------------------------- accounting
    @property
    def packed_nbytes(self) -> int:
        """Bytes of the packed posting columns plus per-term metadata."""
        return sum(  # simlint: disable=FLOAT-ORDER -- integer byte counts, order-insensitive
            int(getattr(self, name).nbytes)
            for name in (
                "offsets", "first_docs",
                "doc_widths", "doc_words", "doc_word_offsets",
                "tf_widths", "tf_words", "tf_word_offsets",
                "score_kinds", "score_widths",
                "score_raw", "score_raw_offsets",
                "score_books", "score_book_offsets",
                "score_words", "score_word_offsets",
            )
        )

    @property
    def raw_nbytes(self) -> int:
        """What the same postings cost as raw arena columns (i8/i4/f8)."""
        return self.n_postings * 20

    @property
    def compression_ratio(self) -> float:
        packed = self.packed_nbytes
        return self.raw_nbytes / packed if packed else 1.0

    def __repr__(self) -> str:
        return (
            f"CompressedPostingsArena({self.n_terms} terms, "
            f"{self.n_postings} postings, {self.compression_ratio:.2f}x)"
        )
