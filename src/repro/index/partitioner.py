"""Document-allocation policies: splitting a corpus into shards.

How documents are allocated to ISNs determines how much per-shard quality
variance exists for selective search to exploit (Kulkarni & Callan, CIKM'10).
Random allocation spreads every topic over every shard (little to cut);
topical allocation concentrates topics, reproducing the paper's Fig. 2(b)
where many ISNs contribute nothing to a given query.
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.index.documents import Document


def _validate(n_shards: int) -> None:
    if n_shards < 1:
        raise ValueError("n_shards must be positive")


def partition_round_robin(docs: list[Document], n_shards: int) -> list[list[Document]]:
    """Deal documents to shards in arrival order (source-based allocation)."""
    _validate(n_shards)
    groups: list[list[Document]] = [[] for _ in range(n_shards)]
    for i, doc in enumerate(docs):
        groups[i % n_shards].append(doc)
    return groups


def partition_random(
    docs: list[Document], n_shards: int, seed: int = 0
) -> list[list[Document]]:
    """Uniform random allocation."""
    _validate(n_shards)
    rng = random.Random(seed)
    groups: list[list[Document]] = [[] for _ in range(n_shards)]
    for doc in docs:
        groups[rng.randrange(n_shards)].append(doc)
    return groups


def partition_hash(docs: list[Document], n_shards: int) -> list[list[Document]]:
    """Deterministic allocation by doc id (a multiplicative hash, so that
    consecutive ids do not land on consecutive shards)."""
    _validate(n_shards)
    groups: list[list[Document]] = [[] for _ in range(n_shards)]
    for doc in docs:
        groups[(doc.doc_id * 2654435761) % n_shards].append(doc)
    return groups


def partition_topical(
    docs: list[Document], n_shards: int, seed: int = 0, spread: int = 3
) -> list[list[Document]]:
    """Topic-concentrating allocation.

    Each topic's documents are spread round-robin over ``spread`` shards
    (anchored greedily at the currently smallest shard), so a topical
    query's top-K documents live on a handful of shards rather than one or
    all — the regime of the paper's Fig. 2(b), where most queries draw
    their top-10 from roughly half the ISNs.  Documents without a topic
    label fall back to hash allocation.
    """
    _validate(n_shards)
    if spread < 1:
        raise ValueError("spread must be positive")
    spread = min(spread, n_shards)
    by_topic: dict[int, list[Document]] = defaultdict(list)
    unlabelled: list[Document] = []
    for doc in docs:
        if doc.topic is None:
            unlabelled.append(doc)
        else:
            by_topic[doc.topic].append(doc)

    groups: list[list[Document]] = [[] for _ in range(n_shards)]
    sizes = [0] * n_shards
    # Largest topics first; ties broken by topic id for determinism.
    for topic in sorted(by_topic, key=lambda t: (-len(by_topic[t]), t)):
        anchor = min(range(n_shards), key=lambda s: (sizes[s], s))
        homes = [(anchor + i) % n_shards for i in range(spread)]
        for i, doc in enumerate(by_topic[topic]):
            target = homes[i % spread]
            groups[target].append(doc)
            sizes[target] += 1

    for doc in unlabelled:
        target = (doc.doc_id * 2654435761) % n_shards
        groups[target].append(doc)
    return groups


PARTITIONERS = {
    "round_robin": partition_round_robin,
    "random": partition_random,
    "hash": partition_hash,
    "topical": partition_topical,
}


def partition(
    docs: list[Document], n_shards: int, policy: str = "topical", seed: int = 0
) -> list[list[Document]]:
    """Dispatch to a named allocation policy."""
    try:
        fn = PARTITIONERS[policy]
    except KeyError:
        raise ValueError(
            f"unknown partition policy {policy!r}; options: {sorted(PARTITIONERS)}"
        ) from None
    if fn in (partition_random, partition_topical):
        return fn(docs, n_shards, seed=seed)
    return fn(docs, n_shards)
