"""Index construction: documents in, immutable IndexShard out."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.index.documents import Document
from repro.index.postings import PostingListBuilder
from repro.index.shard import IndexShard, ShardTerm
from repro.scoring.similarity import BM25Similarity, Similarity
from repro.text.analyzer import Analyzer, StandardAnalyzer


@dataclass
class CollectionStats:
    """Collection-wide statistics for distributed (global-IDF) scoring.

    Solr/Lucene distributed search can score each shard against global
    term statistics so scores are comparable across shards; that mode is
    the default here because the aggregator merges shard results by raw
    score.  Built by :func:`gather_collection_stats` over all shards'
    buffered documents before any shard is finalized.
    """

    n_docs: int = 0
    total_tokens: int = 0
    doc_freq: dict[str, int] = field(default_factory=dict)

    @property
    def avg_doc_length(self) -> float:
        return self.total_tokens / self.n_docs if self.n_docs else 0.0


class IndexBuilder:
    """Single-pass in-memory indexer for one shard.

    Usage::

        builder = IndexBuilder(shard_id=0)
        for doc in docs:
            builder.add(doc)
        shard = builder.build()

    Documents may be added in any order; the builder sorts by doc id before
    constructing posting lists (posting lists must be doc-id ordered for the
    DAAT evaluators).  Pass ``stats`` from :func:`gather_collection_stats`
    to score with global statistics (the default in :func:`build_shards`).
    """

    def __init__(
        self,
        shard_id: int,
        analyzer: Analyzer | None = None,
        similarity: Similarity | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.analyzer = analyzer or StandardAnalyzer()
        self.similarity = similarity or BM25Similarity()
        self._docs: dict[int, list[str]] = {}

    def add(self, doc: Document) -> None:
        """Analyze and buffer one document."""
        if doc.doc_id in self._docs:
            raise ValueError(f"duplicate doc_id {doc.doc_id} in shard {self.shard_id}")
        self._docs[doc.doc_id] = self.analyzer.analyze(doc.full_text())

    def add_all(self, docs: Iterable[Document]) -> None:
        for doc in docs:
            self.add(doc)

    def __len__(self) -> int:
        return len(self._docs)

    def local_stats(self) -> CollectionStats:
        """This builder's contribution to the collection statistics."""
        stats = CollectionStats()
        stats.n_docs = len(self._docs)
        for tokens in self._docs.values():
            stats.total_tokens += len(tokens)
            for term in set(tokens):
                stats.doc_freq[term] = stats.doc_freq.get(term, 0) + 1
        return stats

    def build(self, stats: CollectionStats | None = None) -> IndexShard:
        """Construct the immutable shard from everything added so far.

        With ``stats`` the shard scores against global document frequency
        and average length; without, against its local statistics only.
        """
        doc_ids = sorted(self._docs)
        doc_lengths = {doc_id: len(self._docs[doc_id]) for doc_id in doc_ids}
        total_tokens = sum(doc_lengths.values())
        n_docs = len(doc_ids)
        avg_dl_local = total_tokens / n_docs if n_docs else 0.0

        score_n_docs = stats.n_docs if stats is not None else n_docs
        score_avg_dl = stats.avg_doc_length if stats is not None else avg_dl_local

        posting_builders: dict[str, PostingListBuilder] = {}
        for doc_id in doc_ids:
            for term, tf in sorted(Counter(self._docs[doc_id]).items()):
                posting_builders.setdefault(term, PostingListBuilder()).add(doc_id, tf)

        shard = IndexShard(
            shard_id=self.shard_id,
            n_docs=n_docs,
            avg_doc_length=avg_dl_local,
            total_tokens=total_tokens,
            doc_lengths=doc_lengths,
            similarity=self.similarity,
            n_docs_global=score_n_docs,
        )
        for term, pb in posting_builders.items():
            postings = pb.build()
            df = (
                stats.doc_freq.get(term, len(postings))
                if stats is not None
                else len(postings)
            )
            lengths = np.asarray(
                [doc_lengths[int(d)] for d in postings.doc_ids], dtype=np.float64
            )
            scores = self.similarity.scores(
                postings.tfs, lengths, df, score_n_docs, score_avg_dl
            )
            upper = self.similarity.upper_bound(
                postings.max_tf, df, score_n_docs, score_avg_dl
            )
            # Precomputed scores can exceed the analytic bound only through
            # floating error; clamp the bound so pruning stays admissible.
            upper = max(upper, float(scores.max()) if scores.size else 0.0)
            shard._terms[term] = ShardTerm(
                term=term,
                postings=postings,
                scores=scores,
                upper_bound=upper,
                global_doc_freq=df,
            )
        # Pack the columnar postings arena now, at index time: the shard is
        # immutable from here on, so the vectorized kernels never pay the
        # concatenation cost on the query path.
        shard.arena
        return shard


def gather_collection_stats(builders: list[IndexBuilder]) -> CollectionStats:
    """Merge every builder's local statistics into global collection stats."""
    merged = CollectionStats()
    for builder in builders:
        local = builder.local_stats()
        merged.n_docs += local.n_docs
        merged.total_tokens += local.total_tokens
        for term, df in local.doc_freq.items():
            merged.doc_freq[term] = merged.doc_freq.get(term, 0) + df
    return merged


def build_shards(
    doc_groups: list[list[Document]],
    analyzer: Analyzer | None = None,
    similarity: Similarity | None = None,
    global_stats: bool = True,
) -> list[IndexShard]:
    """Build one shard per document group (the output of a partitioner).

    ``global_stats=True`` (default) scores every shard against collection-
    wide statistics — Solr's distributed-IDF mode — so the aggregator's
    score-based merge is exact.  Disable to reproduce per-shard (local-IDF)
    scoring.
    """
    builders = []
    for shard_id, group in enumerate(doc_groups):
        builder = IndexBuilder(shard_id, analyzer=analyzer, similarity=similarity)
        builder.add_all(group)
        builders.append(builder)
    stats = gather_collection_stats(builders) if global_stats else None
    return [builder.build(stats) for builder in builders]
