"""The per-ISN index shard.

A shard is the complete, immutable index an Index Serving Node searches:
term dictionary, posting lists, precomputed per-posting scores, per-term
upper bounds, and the collection statistics every similarity needs.  Scores
are precomputed at build time (they depend only on shard-static quantities),
which is both faster and exactly what impact-ordered production indexes do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.index.arena import PostingsArena
from repro.index.postings import PostingList
from repro.scoring.similarity import Similarity


BLOCK_SIZE = 64
"""Postings per block for block-max metadata (Ding & Suel, SIGIR'11)."""


@dataclass
class ShardTerm:
    """Everything the shard stores for one term.

    ``global_doc_freq`` is the term's document frequency across the whole
    collection when the index was built with distributed statistics
    (Solr's global-IDF mode); it equals the local ``doc_freq`` otherwise.
    ``block_maxes`` holds the maximum score within each ``BLOCK_SIZE``-
    posting block — the metadata Block-Max WAND skips with.
    """

    term: str
    postings: PostingList
    scores: np.ndarray
    upper_bound: float
    global_doc_freq: int = 0
    block_maxes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.global_doc_freq < len(self.postings):
            self.global_doc_freq = len(self.postings)
        if self.block_maxes is None and self.scores.size:
            n_blocks = (self.scores.size + BLOCK_SIZE - 1) // BLOCK_SIZE
            padded = np.full(n_blocks * BLOCK_SIZE, -np.inf)
            padded[: self.scores.size] = self.scores
            self.block_maxes = padded.reshape(n_blocks, BLOCK_SIZE).max(axis=1)

    @property
    def doc_freq(self) -> int:
        return len(self.postings)


@dataclass
class IndexShard:
    """Immutable searchable index for one ISN.

    Attributes
    ----------
    shard_id:
        Position of this shard in the cluster (the paper's "ISN-j").
    n_docs, avg_doc_length, total_tokens:
        Collection statistics, fixed at build time.
    doc_lengths:
        Global doc id -> analyzed token count, for documents on this shard.
    similarity:
        The ranking function the stored scores were computed with.
    """

    shard_id: int
    n_docs: int
    avg_doc_length: float
    total_tokens: int
    doc_lengths: dict[int, int]
    similarity: Similarity
    n_docs_global: int = 0
    _terms: dict[str, ShardTerm] = field(default_factory=dict)
    _arena: PostingsArena | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_docs_global < self.n_docs:
            self.n_docs_global = self.n_docs

    @property
    def arena(self) -> PostingsArena:
        """The columnar postings arena the vectorized kernels search.

        Built once (the index is immutable) and cached; the index builder
        and the shard loader touch this eagerly so no query pays the
        packing cost.  Shards assembled by hand (tests) build it lazily on
        first search.
        """
        if self._arena is None:
            self._arena = PostingsArena.from_shard(self)
        return self._arena

    def has_term(self, term: str) -> bool:
        return term in self._terms

    def term(self, term: str) -> ShardTerm | None:
        return self._terms.get(term)

    def doc_freq(self, term: str) -> int:
        entry = self._terms.get(term)
        return entry.doc_freq if entry is not None else 0

    def idf(self, term: str) -> float:
        """IDF under the statistics the index was built with (global when
        distributed stats were used, local otherwise)."""
        entry = self._terms.get(term)
        df = entry.global_doc_freq if entry is not None else 0
        return self.similarity.idf(df, max(self.n_docs_global, 1))

    def postings(self, term: str) -> PostingList | None:
        entry = self._terms.get(term)
        return entry.postings if entry is not None else None

    def scores(self, term: str) -> np.ndarray | None:
        entry = self._terms.get(term)
        return entry.scores if entry is not None else None

    def upper_bound(self, term: str) -> float:
        entry = self._terms.get(term)
        return entry.upper_bound if entry is not None else 0.0

    def vocabulary_size(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        return list(self._terms.keys())

    def contains_doc(self, doc_id: int) -> bool:
        return doc_id in self.doc_lengths

    def __len__(self) -> int:
        return self.n_docs
