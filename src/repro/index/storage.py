"""Index persistence.

Shards serialize to single ``.npz`` files: posting data is packed into
flat arrays with per-term offsets (the on-disk layout real engines use),
plus the collection statistics and the similarity configuration needed to
reconstruct an identical, searchable :class:`IndexShard`.  Block-max
metadata is derived, so it is rebuilt on load rather than stored.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.index.shard import IndexShard, ShardTerm
from repro.index.postings import PostingList
from repro.scoring.similarity import (
    BM25Similarity,
    LMDirichletSimilarity,
    Similarity,
    TFIDFSimilarity,
)

_SIMILARITIES = {
    "BM25Similarity": BM25Similarity,
    "TFIDFSimilarity": TFIDFSimilarity,
    "LMDirichletSimilarity": LMDirichletSimilarity,
}


def _similarity_config(similarity: Similarity) -> dict:
    name = type(similarity).__name__
    if name not in _SIMILARITIES:
        raise ValueError(f"cannot serialize similarity {name!r}")
    params = {
        key: value
        for key, value in vars(similarity).items()
        if isinstance(value, (int, float))
    }
    return {"name": name, "params": params}


def _similarity_from_config(config: dict) -> Similarity:
    try:
        cls = _SIMILARITIES[config["name"]]
    except KeyError:
        raise ValueError(f"unknown similarity {config['name']!r}") from None
    return cls(**config["params"])


def save_shard(shard: IndexShard, path: str | Path) -> None:
    """Write one shard to ``path`` (a ``.npz`` file)."""
    terms = sorted(shard.terms())
    offsets = np.zeros(len(terms) + 1, dtype=np.int64)
    doc_chunks, tf_chunks, score_chunks = [], [], []
    upper_bounds = np.zeros(len(terms))
    global_dfs = np.zeros(len(terms), dtype=np.int64)
    for i, term in enumerate(terms):
        entry = shard.term(term)
        offsets[i + 1] = offsets[i] + len(entry.postings)
        doc_chunks.append(entry.postings.doc_ids)
        tf_chunks.append(entry.postings.tfs)
        score_chunks.append(entry.scores)
        upper_bounds[i] = entry.upper_bound
        global_dfs[i] = entry.global_doc_freq

    doc_length_ids = np.asarray(sorted(shard.doc_lengths), dtype=np.int64)
    doc_length_values = np.asarray(
        [shard.doc_lengths[int(d)] for d in doc_length_ids], dtype=np.int64
    )
    meta = {
        "shard_id": shard.shard_id,
        "n_docs": shard.n_docs,
        "avg_doc_length": shard.avg_doc_length,
        "total_tokens": shard.total_tokens,
        "n_docs_global": shard.n_docs_global,
        "similarity": _similarity_config(shard.similarity),
        "format_version": 1,
    }
    np.savez_compressed(
        path,
        terms=np.asarray(terms, dtype="U"),
        offsets=offsets,
        doc_ids=(
            np.concatenate(doc_chunks) if doc_chunks else np.zeros(0, dtype=np.int64)
        ),
        tfs=np.concatenate(tf_chunks) if tf_chunks else np.zeros(0, dtype=np.int32),
        scores=(
            np.concatenate(score_chunks) if score_chunks else np.zeros(0)
        ),
        upper_bounds=upper_bounds,
        global_dfs=global_dfs,
        doc_length_ids=doc_length_ids,
        doc_length_values=doc_length_values,
        meta=np.asarray(json.dumps(meta)),
    )


def load_shard(path: str | Path) -> IndexShard:
    """Reconstruct a shard saved by :func:`save_shard`."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        if meta.get("format_version") != 1:
            raise ValueError(f"unsupported shard format in {path}")
        shard = IndexShard(
            shard_id=int(meta["shard_id"]),
            n_docs=int(meta["n_docs"]),
            avg_doc_length=float(meta["avg_doc_length"]),
            total_tokens=int(meta["total_tokens"]),
            doc_lengths={
                int(doc): int(length)
                for doc, length in zip(
                    data["doc_length_ids"], data["doc_length_values"]
                )
            },
            similarity=_similarity_from_config(meta["similarity"]),
            n_docs_global=int(meta["n_docs_global"]),
        )
        offsets = data["offsets"]
        doc_ids = data["doc_ids"]
        tfs = data["tfs"]
        scores = data["scores"]
        for i, term in enumerate(data["terms"]):
            lo, hi = int(offsets[i]), int(offsets[i + 1])
            shard._terms[str(term)] = ShardTerm(
                term=str(term),
                postings=PostingList(
                    doc_ids=doc_ids[lo:hi].copy(), tfs=tfs[lo:hi].copy()
                ),
                scores=scores[lo:hi].copy(),
                upper_bound=float(data["upper_bounds"][i]),
                global_doc_freq=int(data["global_dfs"][i]),
            )
    # Arena and block-max metadata are derived, not stored: pack them once
    # here so a loaded shard is query-ready like a freshly built one.
    shard.arena
    return shard


def save_shards(shards: list[IndexShard], directory: str | Path) -> None:
    """Write a whole cluster's shards as ``shard_<id>.npz`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for shard in shards:
        save_shard(shard, directory / f"shard_{shard.shard_id}.npz")


def load_shards(directory: str | Path) -> list[IndexShard]:
    """Load every ``shard_*.npz`` in ``directory``, ordered by shard id."""
    directory = Path(directory)
    paths = sorted(
        directory.glob("shard_*.npz"), key=lambda p: int(p.stem.split("_")[1])
    )
    if not paths:
        raise FileNotFoundError(f"no shard files in {directory}")
    return [load_shard(path) for path in paths]
