"""Document model and in-memory document store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class Document:
    """A document entering the indexing pipeline.

    Attributes
    ----------
    doc_id:
        Globally unique integer id.  Global ids let the aggregator merge
        per-shard results and compare against exhaustive ground truth without
        a translation table.
    text:
        Raw body text (analyzed by the shard's analyzer at index time).
    title:
        Optional title, concatenated ahead of the body during analysis.
    topic:
        Optional topic label attached by the synthetic corpus generator;
        the topical document-allocation policy groups on it.
    """

    doc_id: int
    text: str
    title: str = ""
    topic: int | None = None

    def full_text(self) -> str:
        """Title + body as a single analyzable string."""
        if self.title:
            return f"{self.title} {self.text}"
        return self.text


@dataclass
class DocumentStore:
    """Append-only collection of documents with id lookup.

    The store is shared infrastructure: the corpus generator fills it, the
    partitioner splits it into shard-sized slices, and the Central Sample
    Index samples from it.
    """

    _docs: dict[int, Document] = field(default_factory=dict)

    def add(self, doc: Document) -> None:
        if doc.doc_id in self._docs:
            raise ValueError(f"duplicate doc_id {doc.doc_id}")
        self._docs[doc.doc_id] = doc

    def add_all(self, docs: Iterator[Document] | list[Document]) -> None:
        for doc in docs:
            self.add(doc)

    def get(self, doc_id: int) -> Document:
        return self._docs[doc_id]

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._docs.values())

    def doc_ids(self) -> list[int]:
        return list(self._docs.keys())
