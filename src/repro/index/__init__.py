"""Inverted-index substrate.

Everything an ISN needs to hold and search its partition of the collection:
document model, posting lists with DAAT cursors, the index builder, the
immutable shard, index-time term statistics (the feature source for the
Cottage predictors), document-allocation policies, and the Central Sample
Index used by the Rank-S baseline.
"""

from repro.index.arena import (
    CompressedPostingsArena,
    DecodeStats,
    PostingsArena,
    TermRun,
    bits_for,
    pack_bits,
    unpack_bits,
)
from repro.index.builder import (
    CollectionStats,
    IndexBuilder,
    build_shards,
    gather_collection_stats,
)
from repro.index.csi import CentralSampleIndex, SampledHit
from repro.index.documents import Document, DocumentStore
from repro.index.partitioner import (
    PARTITIONERS,
    partition,
    partition_hash,
    partition_random,
    partition_round_robin,
    partition_topical,
)
from repro.index.postings import END_OF_LIST, PostingCursor, PostingList, PostingListBuilder
from repro.index.shard import BLOCK_SIZE, IndexShard, ShardTerm
from repro.index.storage import load_shard, load_shards, save_shard, save_shards
from repro.index.store import (
    LazyIndexShard,
    open_store,
    open_store_buffer,
    open_stores,
    pack_shards,
    serialize_shard,
    store_info,
    write_store,
)
from repro.index.term_stats import TermStats, TermStatsIndex, compute_term_stats

__all__ = [
    "Document",
    "DocumentStore",
    "PostingList",
    "PostingCursor",
    "PostingListBuilder",
    "END_OF_LIST",
    "IndexBuilder",
    "build_shards",
    "CollectionStats",
    "gather_collection_stats",
    "IndexShard",
    "ShardTerm",
    "BLOCK_SIZE",
    "PostingsArena",
    "CompressedPostingsArena",
    "DecodeStats",
    "TermRun",
    "bits_for",
    "pack_bits",
    "unpack_bits",
    "save_shard",
    "load_shard",
    "save_shards",
    "load_shards",
    "LazyIndexShard",
    "write_store",
    "serialize_shard",
    "open_store",
    "open_store_buffer",
    "open_stores",
    "pack_shards",
    "store_info",
    "TermStats",
    "TermStatsIndex",
    "compute_term_stats",
    "partition",
    "partition_round_robin",
    "partition_random",
    "partition_hash",
    "partition_topical",
    "PARTITIONERS",
    "CentralSampleIndex",
    "SampledHit",
]
