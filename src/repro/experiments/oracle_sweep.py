"""Oracle traversal sweep: every strategy on every (query, shard).

The ground-truth harness behind the learned strategy selector
(:mod:`repro.predictors.selector`).  For a seeded zipf workload it runs
**every** combination of traversal strategy, k-clamp and MaxScore kernel
``min_postings`` floor on every (query, shard) pair, recording the
modeled :class:`~repro.cluster.cpu.CostModel` service time and the host
wall-clock of each run.  From that table it derives:

* a **labeled dataset** — the per-(query, shard) cheapest *rank-safe*
  strategy at the base k, the selector's training target;
* the **oracle upper bound** — per-query fan-out latency if every shard
  always ran its cheapest rank-safe traversal, the ceiling any learned
  selector is graded against;
* the **static baselines** — the fan-out latency of running each single
  strategy everywhere, whose best member is the bar a selector must beat.

Rank-safety is verified, not assumed: the sweep checks the safe
strategies return the same top-k per (query, shard) under the repo's
equivalence contract (same documents in the same order, scores equal up
to float-summation order, ties permutable — what
``tests/test_strategy_equivalence.py`` asserts).  Query terms are
deduplicated first, matching :class:`~repro.retrieval.query.Query`'s own
normalization.  Strict *bit*-identity holds within one strategy — the
property the selector's dispatch path is graded on — not across
strategies, whose differing accumulation order moves last-ulp score
bits.  ``min_postings`` never changes modeled cost — both sides of the
floor are bit-identical by contract — so the floor dimension exists to
expose its host wall-clock effect, not to create labels.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.cpu import CostModel, FrequencyScale
from repro.experiments.bench_retrieval import build_corpus, sample_queries
from repro.index.shard import IndexShard
from repro.predictors.selector import SAFE_STRATEGIES
from repro.retrieval.searcher import STRATEGIES

#: Score tolerance of the cross-strategy equivalence check — the same
#: bound ``tests/test_strategy_equivalence.py`` uses for summation-order
#: float drift.
SCORE_ATOL = 1e-9

N_SHARDS = 8
DOCS_PER_SHARD = 400
VOCAB_SIZE = 150
N_QUERIES = 240
K = 10
SEED = 7

#: The full sweep grid includes the unsafe conjunctive arm: it is never a
#: label (not rank-safe) but its measured cost is what justifies the
#: budget-downshift knob.
SWEEP_STRATEGIES: tuple[str, ...] = SAFE_STRATEGIES + ("conjunctive",)

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SweepCombo:
    """One grid point: a traversal, a k-clamp, a kernel dispatch floor.

    ``min_postings`` is ``None`` for every strategy except ``maxscore`` —
    it is a MaxScore-kernel-only knob, so other strategies contribute a
    single floor level to the grid.
    """

    strategy: str
    k: int
    min_postings: int | None = None


@dataclass
class SweepDataset:
    """The full measurement table plus everything derived from it."""

    term_tuples: list[tuple[str, ...]]
    n_shards: int
    k: int
    combos: tuple[SweepCombo, ...]
    service_ms: np.ndarray  # [NQ, S, C] modeled default-frequency service
    wall_us: np.ndarray  # [NQ, S, C] host wall-clock per run
    docs_evaluated: np.ndarray  # [NQ, S, C]
    postings_scored: np.ndarray  # [NQ, S, C]
    postings_skipped: np.ndarray  # [NQ, S, C]
    rank_safe: bool = True

    @property
    def n_queries(self) -> int:
        return len(self.term_tuples)

    def combo_index(
        self, strategy: str, k: int | None = None, min_postings: int | None = None
    ) -> int:
        k = k if k is not None else self.k
        for idx, combo in enumerate(self.combos):
            if (
                combo.strategy == strategy
                and combo.k == k
                and combo.min_postings == min_postings
            ):
                return idx
        raise KeyError(f"no combo ({strategy!r}, k={k}, floor={min_postings})")

    def _safe_indices(self) -> list[int]:
        """Combo columns of the rank-safe strategies at the base k."""
        return [self.combo_index(name) for name in SAFE_STRATEGIES]

    def safe_service_ms(self) -> np.ndarray:
        """``[NQ, S, len(SAFE_STRATEGIES)]`` service of the label space."""
        return self.service_ms[:, :, self._safe_indices()]

    def labels(self) -> np.ndarray:
        """Selector training target: ``[NQ, S]`` winner indices.

        ``labels[q, s]`` indexes :data:`SAFE_STRATEGIES` — the cheapest
        rank-safe traversal for query ``q`` on shard ``s``; ties break
        toward the earlier strategy (argmin order), deterministically.
        """
        return np.argmin(self.safe_service_ms(), axis=2)

    # ----------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Write the labeled dataset to one ``.npz`` file."""
        meta = {
            "n_shards": self.n_shards,
            "k": self.k,
            "combos": [
                [c.strategy, c.k, c.min_postings] for c in self.combos
            ],
            "term_tuples": [list(t) for t in self.term_tuples],
            "rank_safe": self.rank_safe,
            "format_version": _FORMAT_VERSION,
        }
        np.savez_compressed(
            path,
            service_ms=self.service_ms,
            wall_us=self.wall_us,
            docs_evaluated=self.docs_evaluated,
            postings_scored=self.postings_scored,
            postings_skipped=self.postings_skipped,
            meta=np.asarray(json.dumps(meta)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SweepDataset":
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("format_version") != _FORMAT_VERSION:
                raise ValueError(f"unsupported sweep dataset format in {path}")
            return cls(
                term_tuples=[tuple(t) for t in meta["term_tuples"]],
                n_shards=int(meta["n_shards"]),
                k=int(meta["k"]),
                combos=tuple(
                    SweepCombo(
                        strategy=str(s),
                        k=int(k),
                        min_postings=None if floor is None else int(floor),
                    )
                    for s, k, floor in meta["combos"]
                ),
                service_ms=data["service_ms"],
                wall_us=data["wall_us"],
                docs_evaluated=data["docs_evaluated"],
                postings_scored=data["postings_scored"],
                postings_skipped=data["postings_skipped"],
                rank_safe=bool(meta["rank_safe"]),
            )


@dataclass
class SweepSummary:
    """Fan-out latency of every static arm vs the per-shard oracle."""

    n_queries: int
    n_shards: int
    k: int
    static_mean_ms: dict[str, float] = field(default_factory=dict)
    static_p99_ms: dict[str, float] = field(default_factory=dict)
    oracle_mean_ms: float = 0.0
    oracle_p99_ms: float = 0.0
    best_static: str = ""
    win_counts: dict[str, int] = field(default_factory=dict)
    rank_safe: bool = True

    @property
    def best_static_mean_ms(self) -> float:
        return self.static_mean_ms[self.best_static]

    @property
    def oracle_gap_ms(self) -> float:
        """Mean fan-out latency the best static arm leaves on the table."""
        return self.best_static_mean_ms - self.oracle_mean_ms

    @property
    def oracle_gap_pct(self) -> float:
        if self.best_static_mean_ms <= 0:
            return 0.0
        return 100.0 * self.oracle_gap_ms / self.best_static_mean_ms


def same_topk(
    reference: list[tuple[int, float]], challenger: list[tuple[int, float]]
) -> bool:
    """The cross-strategy equivalence contract, as a predicate.

    Same documents in the same order with scores equal up to
    float-summation drift (``SCORE_ATOL``); documents may permute only
    within a score tie.  Mirrors ``assert_same_topk`` in
    ``tests/test_strategy_equivalence.py``.
    """
    if len(reference) != len(challenger):
        return False
    for (doc_c, score_c), (doc_r, score_r) in zip(challenger, reference):
        if abs(score_c - score_r) > SCORE_ATOL:
            return False
        if doc_c != doc_r:
            tied = {
                doc
                for doc, score in reference
                if abs(score - score_r) <= SCORE_ATOL
            }
            if doc_c not in tied:
                return False
    return True


def grid(
    k: int = K,
    k_clamps: tuple[int, ...] = (),
    min_postings_floors: tuple[int, ...] = (0,),
) -> tuple[SweepCombo, ...]:
    """The sweep grid: strategies x {base k + clamps} x dispatch floors.

    Every strategy gets a ``min_postings=None`` (kernel default) column;
    ``maxscore`` additionally gets one column per explicit floor.
    """
    combos: list[SweepCombo] = []
    ks = [k] + [clamp for clamp in k_clamps if clamp != k]
    for strategy in SWEEP_STRATEGIES:
        for k_value in ks:
            combos.append(SweepCombo(strategy, k_value, None))
            if strategy == "maxscore":
                combos.extend(
                    SweepCombo(strategy, k_value, floor)
                    for floor in min_postings_floors
                )
    return tuple(combos)


def sweep(
    shards: list[IndexShard],
    queries: list[list[str]] | list[tuple[str, ...]],
    k: int = K,
    k_clamps: tuple[int, ...] = (),
    min_postings_floors: tuple[int, ...] = (0,),
    cost_model: CostModel | None = None,
    freq_ghz: float | None = None,
) -> SweepDataset:
    """Measure every grid combination on every (query, shard) pair.

    Query terms are deduplicated (preserving first-occurrence order, the
    same normalization :class:`~repro.retrieval.query.Query` applies) so
    the rank-safety assertion compares what the cluster would actually
    run.  Strategy callables are invoked directly — no
    :class:`~repro.retrieval.searcher.ShardSearcher` memo cache — so
    every wall-clock sample reflects a real evaluation.
    """
    cost_model = cost_model or CostModel()
    freq = freq_ghz if freq_ghz is not None else FrequencyScale().default_ghz
    term_tuples = [tuple(dict.fromkeys(terms)) for terms in queries]
    combos = grid(k, k_clamps, min_postings_floors)
    shape = (len(term_tuples), len(shards), len(combos))
    service = np.zeros(shape)
    wall = np.zeros(shape)
    docs = np.zeros(shape, dtype=np.int64)
    scored = np.zeros(shape, dtype=np.int64)
    skipped = np.zeros(shape, dtype=np.int64)
    rank_safe = True
    safe_at_base = {
        c_idx: combo.strategy
        for c_idx, combo in enumerate(combos)
        if combo.k == k and combo.strategy in SAFE_STRATEGIES
    }
    for q_idx, terms in enumerate(term_tuples):
        term_list = list(terms)
        for s_idx, shard in enumerate(shards):
            reference_hits = None
            for c_idx, combo in enumerate(combos):
                fn = STRATEGIES[combo.strategy]
                kwargs = {}
                if combo.min_postings is not None:
                    kwargs["min_postings"] = combo.min_postings
                t0 = time.perf_counter()  # simlint: disable=DET-CLOCK -- host wall-clock measurement, never feeds the sim
                result = fn(shard, term_list, combo.k, **kwargs)
                wall[q_idx, s_idx, c_idx] = (
                    time.perf_counter() - t0  # simlint: disable=DET-CLOCK -- host wall-clock measurement, never feeds the sim
                ) * 1e6
                service[q_idx, s_idx, c_idx] = cost_model.service_ms(
                    result.cost, freq
                )
                docs[q_idx, s_idx, c_idx] = result.cost.docs_evaluated
                scored[q_idx, s_idx, c_idx] = result.cost.postings_scored
                skipped[q_idx, s_idx, c_idx] = result.cost.postings_skipped
                if c_idx in safe_at_base:
                    if reference_hits is None:
                        reference_hits = result.hits
                    elif not same_topk(reference_hits, result.hits):
                        rank_safe = False
    return SweepDataset(
        term_tuples=term_tuples,
        n_shards=len(shards),
        k=k,
        combos=combos,
        service_ms=service,
        wall_us=wall,
        docs_evaluated=docs,
        postings_scored=scored,
        postings_skipped=skipped,
        rank_safe=rank_safe,
    )


def summarize(dataset: SweepDataset) -> SweepSummary:
    """Static-arm vs oracle fan-out latency over the sweep's workload.

    A query's fan-out latency is the max over shards of its service time
    — the partition-aggregate critical path with idle queues.  The oracle
    picks each shard's cheapest rank-safe strategy *per query*; a static
    arm runs one strategy everywhere.
    """
    summary = SweepSummary(
        n_queries=dataset.n_queries,
        n_shards=dataset.n_shards,
        k=dataset.k,
        rank_safe=dataset.rank_safe,
    )
    safe = dataset.safe_service_ms()  # [NQ, S, A]
    fanout_static = safe.max(axis=1)  # [NQ, A]
    fanout_oracle = safe.min(axis=2).max(axis=1)  # [NQ]
    for a_idx, name in enumerate(SAFE_STRATEGIES):
        summary.static_mean_ms[name] = float(fanout_static[:, a_idx].mean())
        summary.static_p99_ms[name] = float(
            np.percentile(fanout_static[:, a_idx], 99)
        )
    conj_idx = dataset.combo_index("conjunctive")
    conj_fanout = dataset.service_ms[:, :, conj_idx].max(axis=1)
    summary.static_mean_ms["conjunctive"] = float(conj_fanout.mean())
    summary.static_p99_ms["conjunctive"] = float(np.percentile(conj_fanout, 99))
    summary.oracle_mean_ms = float(fanout_oracle.mean())
    summary.oracle_p99_ms = float(np.percentile(fanout_oracle, 99))
    summary.best_static = min(
        SAFE_STRATEGIES, key=lambda name: summary.static_mean_ms[name]
    )
    winners = np.argmin(fanout_static, axis=1)  # [NQ] per-query fan-out winner
    for a_idx, name in enumerate(SAFE_STRATEGIES):
        summary.win_counts[name] = int(np.sum(winners == a_idx))
    return summary


def run(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    n_queries: int = N_QUERIES,
    k: int = K,
    k_clamps: tuple[int, ...] = (5,),
    min_postings_floors: tuple[int, ...] = (0, 2048),
    seed: int = SEED,
) -> tuple[SweepDataset, SweepSummary]:
    """Build the seeded workload, sweep it, and summarize."""
    shards = build_corpus(n_shards, docs_per_shard, vocab_size, seed)
    queries = sample_queries(n_queries, vocab_size, seed)
    dataset = sweep(
        shards,
        queries,
        k=k,
        k_clamps=k_clamps,
        min_postings_floors=min_postings_floors,
    )
    return dataset, summarize(dataset)


def format_report(summary: SweepSummary) -> str:
    lines = [
        "oracle traversal sweep "
        f"({summary.n_queries} queries x {summary.n_shards} shards, "
        f"k={summary.k})",
        f"{'arm':<18} {'mean_ms':>9} {'p99_ms':>9} {'wins':>6}",
        "-" * 46,
    ]
    for name in SAFE_STRATEGIES:
        marker = " *" if name == summary.best_static else ""
        lines.append(
            f"{name:<18} {summary.static_mean_ms[name]:>9.2f} "
            f"{summary.static_p99_ms[name]:>9.2f} "
            f"{summary.win_counts.get(name, 0):>6}{marker}"
        )
    lines.append(
        f"{'conjunctive (unsafe)':<18} "
        f"{summary.static_mean_ms['conjunctive']:>7.2f} "
        f"{summary.static_p99_ms['conjunctive']:>9.2f} {'-':>6}"
    )
    lines.append(
        f"{'oracle':<18} {summary.oracle_mean_ms:>9.2f} "
        f"{summary.oracle_p99_ms:>9.2f} {'-':>6}"
    )
    lines.append(
        f"best static {summary.best_static!r} leaves "
        f"{summary.oracle_gap_ms:.2f} ms ({summary.oracle_gap_pct:.1f}%) "
        "on the table vs the per-shard oracle"
    )
    lines.append(
        "rank-safe strategies agree on top-k: "
        f"{'yes' if summary.rank_safe else 'NO'}"
    )
    return "\n".join(lines)


def write_json(summary: SweepSummary, path: str | Path) -> None:
    payload = {
        "n_queries": summary.n_queries,
        "n_shards": summary.n_shards,
        "k": summary.k,
        "static_mean_ms": summary.static_mean_ms,
        "static_p99_ms": summary.static_p99_ms,
        "oracle_mean_ms": summary.oracle_mean_ms,
        "oracle_p99_ms": summary.oracle_p99_ms,
        "best_static": summary.best_static,
        "oracle_gap_ms": summary.oracle_gap_ms,
        "oracle_gap_pct": summary.oracle_gap_pct,
        "win_counts": summary.win_counts,
        "rank_safe": summary.rank_safe,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
