"""Serving-plane benchmark: saturation campaign, bit-identity, memory.

Measures the three claims the open-loop serving plane makes, producing
the ``BENCH_serving.json`` record CI gates on:

* **Knee-vs-model agreement** — a QPS sweep's measured goodput knee lands
  within a relative tolerance of the closed M/G/1 fork-join model's
  predicted saturation (:mod:`repro.serving.queueing`), and the sweep
  actually saturates (the grid straddles the knee).
* **Closed-loop bit-identity** — replaying a :class:`QueryTrace` through
  :class:`~repro.serving.orchestrator.ServingPlane` fingerprints
  identically to ``SearchCluster.run_trace``; the refactor moved code,
  not behavior.
* **Bounded memory at scale** — a seeded million-query open-loop drive
  (streaming sinks, no per-query retention, admission-bounded in-flight
  population) stays under a flat memory cap; peak tracemalloc bytes are
  recorded, independent of the query count.

``benchmarks/run_bench_serving.py`` drives this with pinned seeds and a
machine fingerprint embedded in the record.  Wall-clock timing lives
here (not in the simulator) — ``experiments/bench_*.py`` is the
determinism linter's allowlisted home for it.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from json import dumps
from pathlib import Path

from repro.cluster.engine import RunResult
from repro.experiments.bench_storage import MachineFingerprint
from repro.experiments.testbed import Scale, Testbed
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    CampaignConfig,
    QueryStream,
    ServingPlane,
    make_arrivals,
    pool_from_corpus,
    run_campaign,
)

SCALE = "unit"
POLICY = "cottage"
ARRIVAL = "poisson"
QUERIES_PER_POINT = 2000
DRIVE_QUERIES = 1_000_000
KNEE_TOLERANCE = 0.25
DRIVE_MEMORY_CAP_MIB = 256.0
SEED = 0


def run_fingerprint(run: RunResult) -> str:
    """Order-sensitive digest of a closed-loop run (records + power)."""
    lines = [run.policy_name, repr(run.power)]
    for record in run.records:
        lines.append(
            f"{record.query.query_id}|{record.latency_ms!r}|"
            f"{record.result.fingerprint()}"
        )
    return "\n".join(lines)


@dataclass
class ServingBenchResult:
    scale: str
    policy: str
    arrival: str
    seed: int
    queries_per_point: int
    drive_queries: int
    knee_tolerance: float
    machine: MachineFingerprint
    build_ms: float = 0.0
    # Saturation campaign vs the queueing model.
    predicted_knee_qps: float = 0.0
    measured_knee_qps: float = 0.0
    knee_ratio: float = 0.0
    knee_saturated: bool = False
    knee_within_tolerance: bool = False
    campaign_queries: int = 0
    campaign_wall_ms: float = 0.0
    points: list[dict] = field(default_factory=list)
    model: dict = field(default_factory=dict)
    # Closed-loop trace through the serving plane vs run_trace.
    closed_loop_bit_identical: bool = False
    # Million-query open-loop drive under a memory cap.
    drive_rate_fraction: float = 0.85
    drive_offered_qps: float = 0.0
    drive_completed: int = 0
    drive_shed: int = 0
    drive_admitted: int = 0
    drive_mean_latency_ms: float = 0.0
    drive_p99_ms: float = 0.0
    drive_peak_mib: float = 0.0
    drive_memory_cap_mib: float = DRIVE_MEMORY_CAP_MIB
    drive_wall_ms: float = 0.0
    drive_wall_qps: float = 0.0
    bounded_memory: bool = False

    @property
    def passed(self) -> bool:
        return (
            self.knee_within_tolerance
            and self.closed_loop_bit_identical
            and self.bounded_memory
        )


def run(
    scale: str = SCALE,
    policy: str = POLICY,
    arrival: str = ARRIVAL,
    queries_per_point: int = QUERIES_PER_POINT,
    drive_queries: int = DRIVE_QUERIES,
    knee_tolerance: float = KNEE_TOLERANCE,
    drive_memory_cap_mib: float = DRIVE_MEMORY_CAP_MIB,
    seed: int = SEED,
    workers: int = 1,
) -> ServingBenchResult:
    """Build the testbed and measure; see the module docstring."""
    result = ServingBenchResult(
        scale=scale,
        policy=policy,
        arrival=arrival,
        seed=seed,
        queries_per_point=queries_per_point,
        drive_queries=drive_queries,
        knee_tolerance=knee_tolerance,
        drive_memory_cap_mib=drive_memory_cap_mib,
        machine=MachineFingerprint.capture(),
    )
    t0 = time.perf_counter()
    testbed = Testbed.build(getattr(Scale, scale)(), workers=workers)
    result.build_ms = (time.perf_counter() - t0) * 1e3
    cluster = testbed.cluster
    pool = pool_from_corpus(testbed.corpus, n_distinct=testbed.scale.trace_distinct)

    # 1. Saturation campaign: sweep offered QPS, locate the knee, compare
    #    it to the model's predicted saturation.
    t0 = time.perf_counter()
    campaign = run_campaign(
        cluster,
        lambda: testbed.make_policy(policy),
        pool,
        CampaignConfig(
            queries_per_point=queries_per_point, arrival=arrival, seed=seed
        ),
    )
    result.campaign_wall_ms = (time.perf_counter() - t0) * 1e3
    result.predicted_knee_qps = campaign.predicted_knee_qps
    result.measured_knee_qps = campaign.knee.knee_qps
    result.knee_ratio = campaign.knee_ratio
    result.knee_saturated = campaign.knee.saturated
    result.knee_within_tolerance = campaign.knee_within(knee_tolerance)
    result.campaign_queries = campaign.total_queries
    result.points = [point.snapshot() for point in campaign.points]
    result.model = campaign.model.snapshot()

    # 2. Closed-loop bit-identity: the same trace through run_trace and
    #    through the serving plane directly must fingerprint identically.
    trace = testbed.wikipedia_trace
    baseline = cluster.run_trace(trace, testbed.make_policy(policy))
    replayed = ServingPlane(cluster).run(trace, testbed.make_policy(policy))
    result.closed_loop_bit_identical = run_fingerprint(baseline) == run_fingerprint(
        replayed
    )

    # 3. Bounded memory: drive a seeded open-loop stream (default one
    #    million queries) just below the knee with streaming sinks only.
    #    tracemalloc starts after the index/testbed are built, so the peak
    #    is the serving plane's own working set.
    offered = result.drive_rate_fraction * campaign.predicted_knee_qps
    result.drive_offered_qps = offered
    stream = QueryStream(
        pool,
        make_arrivals(arrival, offered, seed=seed + 7),
        seed=seed + 13,
        max_queries=drive_queries,
    )
    admission = AdmissionController(AdmissionConfig(max_in_flight=512))
    drive_policy = testbed.make_policy(policy)
    tracemalloc.start()
    t0 = time.perf_counter()
    drive = cluster.serve(
        stream, drive_policy, admission=admission, retain_records=False
    )
    result.drive_wall_ms = (time.perf_counter() - t0) * 1e3
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    stats = drive.serving
    assert stats is not None
    result.drive_completed = stats.completed
    result.drive_shed = stats.shed
    result.drive_admitted = drive.admitted_queries
    result.drive_mean_latency_ms = stats.mean_latency_ms
    result.drive_p99_ms = stats.percentile_ms(99)
    result.drive_peak_mib = peak / (1024 * 1024)
    result.drive_wall_qps = (
        drive.offered_queries / (result.drive_wall_ms / 1e3)
        if result.drive_wall_ms > 0
        else 0.0
    )
    result.bounded_memory = result.drive_peak_mib < drive_memory_cap_mib
    return result


def format_report(result: ServingBenchResult) -> str:
    lines = [
        "Serving plane — open-loop saturation campaign",
        (
            f"  testbed: scale={result.scale} policy={result.policy} "
            f"arrival={result.arrival} seed={result.seed} "
            f"host: {result.machine.cpu_count} cpu(s)"
        ),
        (
            f"  knee: measured {result.measured_knee_qps:.1f} qps vs "
            f"predicted {result.predicted_knee_qps:.1f} qps "
            f"(ratio {result.knee_ratio:.3f}, "
            f"{'saturated' if result.knee_saturated else 'NOT saturated'}, "
            f"tolerance {result.knee_tolerance:.0%}: "
            f"{'ok' if result.knee_within_tolerance else 'FAIL'})"
        ),
        (
            f"  campaign: {result.campaign_queries} queries over "
            f"{len(result.points)} points in {result.campaign_wall_ms:.0f} ms"
        ),
        f"  closed-loop bit-identical: {result.closed_loop_bit_identical}",
        (
            f"  drive: {result.drive_completed} completed / "
            f"{result.drive_shed} shed of {result.drive_queries} offered at "
            f"{result.drive_offered_qps:.1f} qps "
            f"(mean {result.drive_mean_latency_ms:.2f} ms, "
            f"p99 {result.drive_p99_ms:.2f} ms)"
        ),
        (
            f"  drive memory: peak {result.drive_peak_mib:.1f} MiB "
            f"(cap {result.drive_memory_cap_mib:.0f} MiB: "
            f"{'ok' if result.bounded_memory else 'FAIL'}), "
            f"wall {result.drive_wall_ms / 1e3:.1f} s "
            f"({result.drive_wall_qps:,.0f} q/s)"
        ),
    ]
    return "\n".join(lines)


def write_json(result: ServingBenchResult, path: str | Path) -> None:
    """Write the result as the ``BENCH_serving.json`` perf record."""
    Path(path).write_text(dumps(asdict(result), indent=2) + "\n")
