"""Headline numbers — the abstract's claims, measured.

Cottage vs exhaustive on the Wikipedia trace: average latency reduction,
p95 factor, documents-searched ratio, power saving, and P@10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.metrics.summary import relative_improvement, summarize_run


@dataclass(frozen=True)
class HeadlineResult:
    latency_reduction: float
    latency_speedup: float
    p95_factor: float
    docs_ratio: float
    power_saving: float
    p_at_10: float
    active_isns: float


def run(testbed: Testbed) -> HeadlineResult:
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    exhaustive = summarize_run(testbed.run(trace, "exhaustive"), truth, trace.name)
    cottage = summarize_run(testbed.run(trace, "cottage"), truth, trace.name)
    return HeadlineResult(
        latency_reduction=relative_improvement(
            exhaustive.avg_latency_ms, cottage.avg_latency_ms
        ),
        latency_speedup=exhaustive.avg_latency_ms / cottage.avg_latency_ms,
        p95_factor=exhaustive.p95_latency_ms / cottage.p95_latency_ms,
        docs_ratio=exhaustive.avg_docs_searched / max(cottage.avg_docs_searched, 1e-9),
        power_saving=relative_improvement(exhaustive.avg_power_w, cottage.avg_power_w),
        p_at_10=cottage.avg_precision,
        active_isns=cottage.avg_selected_isns,
    )


def format_report(result: HeadlineResult) -> str:
    lines = ["Headline — Cottage vs exhaustive (Wikipedia trace)"]
    lines.append(
        paper.compare("avg latency reduction",
                      paper.LATENCY_REDUCTION_VS_EXHAUSTIVE, result.latency_reduction)
    )
    lines.append(
        paper.compare("avg latency speedup", paper.LATENCY_SPEEDUP_WIKI,
                      result.latency_speedup)
    )
    lines.append(
        paper.compare("p95 latency factor", paper.P95_IMPROVEMENT_WIKI, result.p95_factor)
    )
    lines.append(
        paper.compare("documents searched ratio", paper.DOCS_SEARCHED_RATIO,
                      result.docs_ratio)
    )
    lines.append(
        paper.compare("power saving", paper.POWER_SAVING_VS_EXHAUSTIVE,
                      result.power_saving)
    )
    lines.append(paper.compare("P@10", paper.P10_COTTAGE_WIKI, result.p_at_10))
    lines.append(
        paper.compare("active ISNs", paper.ACTIVE_ISNS_COTTAGE, result.active_isns)
    )
    return "\n".join(lines)
