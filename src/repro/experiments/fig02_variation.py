"""Fig. 2 — latency and quality-contribution variation.

(a) Client-side latency histogram of the Wikipedia trace under exhaustive
search: long-tailed, with the modal bin at small latencies.
(b) Histogram of how many ISNs contribute at least one document to each
query's P@10 results: always well below the full 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.metrics.latency import latency_histogram


@dataclass(frozen=True)
class VariationResult:
    latency_bins: list[tuple[float, float, int]]
    mode_bin: tuple[float, float]
    mode_fraction: float
    contributing_histogram: dict[int, int]
    modal_contributing_isns: int
    n_queries: int


def run(testbed: Testbed) -> VariationResult:
    trace = testbed.wikipedia_trace
    exhaustive = testbed.run(trace, "exhaustive")
    bins = latency_histogram(exhaustive.latencies_ms(), bin_width_ms=5.0)
    total = sum(count for _, _, count in bins)
    lo, hi, count = max(bins, key=lambda b: b[2])

    truth = testbed.truth_for(trace)
    contributing: dict[int, int] = {}
    for query in {q.terms: q for q in trace}.values():
        n = truth.get(query).contributing_shards()
        contributing[n] = contributing.get(n, 0) + 1
    modal = max(contributing, key=lambda n: contributing[n])
    return VariationResult(
        latency_bins=bins,
        mode_bin=(lo, hi),
        mode_fraction=count / total,
        contributing_histogram=dict(sorted(contributing.items())),
        modal_contributing_isns=modal,
        n_queries=total,
    )


def format_report(result: VariationResult) -> str:
    lines = [
        "Fig. 2 — latency and quality variation (Wikipedia trace, exhaustive)",
        f"(a) latency histogram over {result.n_queries} queries, 5 ms bins:",
    ]
    for lo, hi, count in result.latency_bins:
        bar = "#" * max(int(60 * count / max(result.n_queries, 1)), 0)
        lines.append(f"  [{lo:5.0f},{hi:5.0f}) ms  {count:5d}  {bar}")
    lines.append(
        paper.compare(
            "modal-bin fraction",
            paper.LATENCY_HISTOGRAM_MODE_FRACTION,
            result.mode_fraction,
        )
    )
    lines.append("(b) ISNs contributing to P@10, per distinct query:")
    for n, count in result.contributing_histogram.items():
        lines.append(f"  {n:2d} ISNs: {count:4d} queries")
    lines.append(
        paper.compare(
            "modal contributing ISNs",
            paper.TYPICAL_CONTRIBUTING_ISNS,
            result.modal_contributing_isns,
        )
    )
    return "\n".join(lines)
