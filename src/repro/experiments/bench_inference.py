"""Inference-plane microbenchmark: per-query loop vs. batched kernels.

Times the bank's reference per-shard/per-query inference loop
(:meth:`~repro.predictors.bank.PredictorBank.predict_loop` — the
pre-fusion ``predict``) against the fused batched plane
(:meth:`~repro.predictors.bank.PredictorBank.batch_predict`) on the
testbed's distinct Wikipedia-trace queries, verifies the two paths are
bit-identical, and reports the speedup.  ``benchmarks/run_bench.py``
drives this and writes ``BENCH_inference.json`` so future changes have a
perf trajectory to regress against.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.experiments.testbed import Testbed


@dataclass(frozen=True)
class InferenceBenchResult:
    n_shards: int
    n_queries: int
    loop_ms: float
    batched_ms: float
    loop_us_per_query: float
    batched_us_per_query: float
    speedup: float
    bit_identical: bool


def run(testbed: Testbed, repeats: int = 3) -> InferenceBenchResult:
    """Best-of-``repeats`` timing of both inference paths.

    The batched path is timed steady-state: term-feature rows are warm
    (they are computed once per term, ever) but the prediction cache is
    cleared per repeat, so every repeat re-runs feature assembly and the
    three fused forward passes for the full query set.  The loop path has
    no caches by construction — it is the seed's per-query code.
    """
    bank = testbed.bank
    queries = list(
        {q.terms: q for q in testbed.wikipedia_trace.queries}.values()
    )
    if not queries:
        raise ValueError("testbed trace has no queries to benchmark")

    # Warm term-feature rows and fused weight stacks once.
    bank.prewarm(queries)
    reference = [bank.predict_loop(q) for q in queries]
    bit_identical = [bank.predict(q) for q in queries] == reference

    loop_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for query in queries:
            bank.predict_loop(query)
        loop_s = min(loop_s, time.perf_counter() - t0)

    batched_s = float("inf")
    for _ in range(repeats):
        bank._prediction_cache.clear()
        t0 = time.perf_counter()
        bank.batch_predict(queries)
        batched_s = min(batched_s, time.perf_counter() - t0)

    n = len(queries)
    return InferenceBenchResult(
        n_shards=bank.n_shards,
        n_queries=n,
        loop_ms=loop_s * 1e3,
        batched_ms=batched_s * 1e3,
        loop_us_per_query=loop_s / n * 1e6,
        batched_us_per_query=batched_s / n * 1e6,
        speedup=loop_s / batched_s,
        bit_identical=bit_identical,
    )


def format_report(result: InferenceBenchResult) -> str:
    lines = [
        "Inference plane — per-query loop vs. fused batched kernels",
        f"  shards: {result.n_shards}   distinct queries: {result.n_queries}",
        (
            f"  per-query loop : {result.loop_ms:8.1f} ms total "
            f"({result.loop_us_per_query:7.1f} us/query)"
        ),
        (
            f"  batched kernels: {result.batched_ms:8.1f} ms total "
            f"({result.batched_us_per_query:7.1f} us/query)"
        ),
        f"  speedup        : {result.speedup:.2f}x",
        f"  bit-identical  : {result.bit_identical}",
    ]
    return "\n".join(lines)


def write_json(result: InferenceBenchResult, path: str | Path) -> None:
    """Write the result as the ``BENCH_inference.json`` perf record."""
    Path(path).write_text(json.dumps(asdict(result), indent=2) + "\n")
