"""Fig. 7 — quality predictor accuracy, loss curve and inference time.

(a) accuracy/loss vs training iterations on one ISN.
(b) per-ISN held-out accuracy and single-query inference microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.metrics.quality import GroundTruth
from repro.predictors.datasets import build_quality_dataset
from repro.predictors.quality import QualityPredictor
from repro.workloads.traces import training_queries


@dataclass(frozen=True)
class QualityPredictorResult:
    curve_iterations: list[int]
    curve_accuracy: list[float]
    curve_loss: list[float]
    per_isn_accuracy: list[float]
    per_isn_inference_us: list[float]


def run(
    testbed: Testbed,
    shard_id: int = 0,
    iterations: int | None = None,
    eval_every: int = 25,
) -> QualityPredictorResult:
    iterations = iterations or testbed.scale.quality_iterations
    queries = training_queries(
        testbed.corpus, testbed.scale.n_training_queries,
        seed=testbed.scale.seed + 1000,
    )
    truth = GroundTruth.build(testbed.cluster.searcher, queries, k=testbed.cluster.k)
    dataset = build_quality_dataset(
        shard_id, testbed.bank.stats_indexes[shard_id], queries, truth
    )
    train, test = dataset.split(0.2, seed=testbed.scale.seed)
    model = QualityPredictor(testbed.cluster.k, seed=testbed.scale.seed)
    history = model.fit(
        train.features,
        train.labels_k,
        iterations=iterations,
        eval_set=(test.features, test.labels_k),
        eval_every=eval_every,
    )
    # Smooth the mini-batch losses to the eval grid for the (a) panel.
    losses = [
        float(np.mean(history.loss[max(it - eval_every, 0) : it]))
        for it in history.eval_iterations
    ]
    report = testbed.training_report
    return QualityPredictorResult(
        curve_iterations=history.eval_iterations,
        curve_accuracy=history.eval_accuracy,
        curve_loss=losses,
        per_isn_accuracy=list(report.quality_accuracy),
        per_isn_inference_us=list(report.quality_inference_us),
    )


def format_report(result: QualityPredictorResult) -> str:
    lines = ["Fig. 7 — quality predictor", "(a) accuracy/loss vs iterations (ISN-0):"]
    for it, acc, loss in zip(
        result.curve_iterations, result.curve_accuracy, result.curve_loss
    ):
        lines.append(f"  iter {it:4d}: accuracy={acc:.3f}  loss={loss:.3f}")
    lines.append("(b) per-ISN held-out accuracy / inference time:")
    for sid, (acc, us) in enumerate(
        zip(result.per_isn_accuracy, result.per_isn_inference_us)
    ):
        lines.append(f"  ISN-{sid:<2d} accuracy={acc:.3f}  inference={us:6.1f} us")
    lines.append(
        paper.compare(
            "mean quality accuracy",
            paper.QUALITY_PREDICTION_ACCURACY,
            float(np.mean(result.per_isn_accuracy)),
        )
    )
    lines.append(
        paper.compare(
            "max inference time (us)",
            paper.QUALITY_INFERENCE_US_MAX,
            float(np.max(result.per_isn_inference_us)),
        )
    )
    return "\n".join(lines)
