"""Fig. 10 — overall latency on the Wikipedia and Lucene traces.

(a)/(c): per-time-bucket average latency series for the four policies.
(b)/(d): average and 95th-percentile latency bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.metrics.latency import mean, percentile, timeline
from repro.metrics.summary import relative_improvement
from repro.reporting import series_chart

POLICIES = ("exhaustive", "taily", "rank_s", "cottage")


@dataclass(frozen=True)
class LatencyResult:
    trace: str
    timelines: dict[str, list[tuple[float, float]]]
    avg_ms: dict[str, float]
    p95_ms: dict[str, float]


def run_trace(testbed: Testbed, trace_name: str) -> LatencyResult:
    trace = getattr(testbed, f"{trace_name}_trace")
    timelines: dict[str, list[tuple[float, float]]] = {}
    avg: dict[str, float] = {}
    p95: dict[str, float] = {}
    for policy in POLICIES:
        run = testbed.run(trace, policy)
        arrivals = [record.arrival_ms / 1000.0 for record in run.records]
        latencies = run.latencies_ms()
        timelines[policy] = timeline(arrivals, latencies, bucket_s=5.0)
        avg[policy] = mean(latencies)
        p95[policy] = percentile(latencies, 95)
    return LatencyResult(trace=trace_name, timelines=timelines, avg_ms=avg, p95_ms=p95)


def run(testbed: Testbed) -> dict[str, LatencyResult]:
    return {name: run_trace(testbed, name) for name in ("wikipedia", "lucene")}


def format_report(results: dict[str, LatencyResult]) -> str:
    lines = ["Fig. 10 — overall latency"]
    for name, result in results.items():
        lines.append(f"[{name}] avg latency over trace time (5 s buckets):")
        lines.append(series_chart(result.timelines))
        lines.append(f"[{name}] avg / p95 latency (ms):")
        for policy in POLICIES:
            lines.append(
                f"  {policy:<11} avg={result.avg_ms[policy]:7.2f}  "
                f"p95={result.p95_ms[policy]:7.2f}"
            )
        cottage_cut = relative_improvement(
            result.avg_ms["exhaustive"], result.avg_ms["cottage"]
        )
        p95_factor = result.p95_ms["exhaustive"] / result.p95_ms["cottage"]
        if name == "wikipedia":
            lines.append(
                paper.compare("cottage avg reduction",
                              paper.LATENCY_REDUCTION_VS_EXHAUSTIVE, cottage_cut)
            )
            lines.append(
                paper.compare("cottage p95 factor", paper.P95_IMPROVEMENT_WIKI, p95_factor)
            )
            lines.append(
                paper.compare(
                    "taily avg reduction",
                    paper.TAILY_AVG_IMPROVEMENT,
                    relative_improvement(result.avg_ms["exhaustive"], result.avg_ms["taily"]),
                )
            )
            lines.append(
                paper.compare(
                    "rank_s avg reduction",
                    paper.RANKS_AVG_IMPROVEMENT,
                    relative_improvement(result.avg_ms["exhaustive"], result.avg_ms["rank_s"]),
                )
            )
        else:
            lines.append(
                paper.compare(
                    "cottage avg speedup",
                    paper.LATENCY_SPEEDUP_LUCENE,
                    result.avg_ms["exhaustive"] / result.avg_ms["cottage"],
                )
            )
            lines.append(
                paper.compare("cottage p95 factor", paper.P95_IMPROVEMENT_LUCENE, p95_factor)
            )
    return "\n".join(lines)
