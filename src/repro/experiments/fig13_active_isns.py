"""Fig. 13 — average number of selected ISNs per query."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed

POLICIES = ("exhaustive", "taily", "rank_s", "cottage")


@dataclass(frozen=True)
class ActiveISNResult:
    active: dict[str, dict[str, float]]  # trace -> policy -> mean selected


def run(testbed: Testbed) -> ActiveISNResult:
    table: dict[str, dict[str, float]] = {}
    for trace_name in ("wikipedia", "lucene"):
        trace = getattr(testbed, f"{trace_name}_trace")
        table[trace_name] = {
            policy: float(
                np.mean([record.n_selected for record in testbed.run(trace, policy).records])
            )
            for policy in POLICIES
        }
    return ActiveISNResult(active=table)


def format_report(result: ActiveISNResult) -> str:
    lines = ["Fig. 13 — average selected ISNs per query (of 16)"]
    for trace_name, row in result.active.items():
        lines.append(f"[{trace_name}]")
        for policy, value in row.items():
            lines.append(f"  {policy:<11} {value:5.2f}")
    wiki = result.active["wikipedia"]
    lines.append(paper.compare("cottage", paper.ACTIVE_ISNS_COTTAGE, wiki["cottage"]))
    lines.append(paper.compare("taily", paper.ACTIVE_ISNS_TAILY, wiki["taily"]))
    lines.append(paper.compare("rank_s", paper.ACTIVE_ISNS_RANKS, wiki["rank_s"]))
    return "\n".join(lines)
