"""The shared experimental testbed.

Reproduces the paper's setup end to end: a topically partitioned corpus on
16 ISNs, Wikipedia- and Lucene-style query traces, trained per-ISN
predictor banks, a CSI for Rank-S and Gamma statistics for Taily.  Every
figure/table experiment builds (or receives) one ``Testbed`` and runs its
policies on it, so all results in a session share workload, index and
hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.engine import RunResult, SearchCluster
from repro.cluster.types import SelectionPolicy
from repro.core.cottage import CottagePolicy
from repro.core.variants import CottageISNPolicy, CottageWithoutMLPolicy
from repro.index.builder import build_shards
from repro.index.csi import CentralSampleIndex
from repro.index.partitioner import partition_topical
from repro.metrics.quality import GroundTruth
from repro.metrics.summary import PolicySummary, summarize_run
from repro.policies.aggregation import AggregationPolicy
from repro.policies.exhaustive import ExhaustivePolicy
from repro.policies.rank_s import RankSPolicy
from repro.policies.taily import TailyPolicy
from repro.predictors.bank import PredictorBank, TrainingReport
from repro.predictors.gamma_quality import TailyQualityEstimator
from repro.retrieval.executor import make_executor
from repro.retrieval.query import QueryTrace
from repro.text.analyzer import WhitespaceAnalyzer
from repro.workloads.corpus import CorpusConfig, SyntheticCorpus
from repro.workloads.traces import TraceConfig, generate_trace, training_queries


@dataclass(frozen=True)
class Scale:
    """How big an experiment run is.

    ``unit`` keeps tests fast; ``small`` is the benchmark default;
    ``full`` approaches the paper's proportions (16 ISNs, long traces).
    """

    n_shards: int = 16
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    n_training_queries: int = 240
    quality_iterations: int = 300
    latency_iterations: int = 200
    trace_duration_s: float = 60.0
    trace_rate_qps: float = 18.0
    trace_distinct: int = 150
    k: int = 10
    seed: int = 0

    @classmethod
    def unit(cls) -> "Scale":
        return cls(
            n_shards=8,
            corpus=CorpusConfig(
                n_docs=600, vocab_size=2000, n_topics=8, topic_core_size=120,
                mean_doc_length=60,
            ),
            n_training_queries=80,
            quality_iterations=80,
            latency_iterations=80,
            trace_duration_s=10.0,
            trace_rate_qps=60.0,
            trace_distinct=60,
        )

    @classmethod
    def small(cls) -> "Scale":
        return cls(
            n_shards=16,
            corpus=CorpusConfig(
                n_docs=3000, vocab_size=8000, n_topics=16, topic_core_size=250,
                mean_doc_length=90,
            ),
            n_training_queries=360,
            quality_iterations=400,
            latency_iterations=200,
            trace_duration_s=40.0,
            trace_rate_qps=65.0,
            trace_distinct=150,
        )

    @classmethod
    def full(cls) -> "Scale":
        return cls(
            n_shards=16,
            corpus=CorpusConfig(
                n_docs=8000, vocab_size=16000, n_topics=32, topic_core_size=300,
                mean_doc_length=120,
            ),
            n_training_queries=400,
            quality_iterations=600,
            latency_iterations=300,
            # Per-query work grows with the corpus (~2.4x small), so the
            # rate drops to keep exhaustive utilization ~0.5.
            trace_duration_s=150.0,
            trace_rate_qps=28.0,
            trace_distinct=250,
        )


class Testbed:
    """Corpus + cluster + trained predictors + baselines, ready to run."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        scale: Scale,
        corpus: SyntheticCorpus,
        cluster: SearchCluster,
        bank: PredictorBank,
        training_report: TrainingReport,
        csi: CentralSampleIndex,
        taily_estimator: TailyQualityEstimator,
        wikipedia_trace: QueryTrace,
        lucene_trace: QueryTrace,
    ) -> None:
        self.scale = scale
        self.corpus = corpus
        self.cluster = cluster
        self.bank = bank
        self.training_report = training_report
        self.csi = csi
        self.taily_estimator = taily_estimator
        self.wikipedia_trace = wikipedia_trace
        self.lucene_trace = lucene_trace
        self._truth = GroundTruth(k=cluster.k)
        self._run_cache: dict[tuple[str, str], RunResult] = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        scale: Scale | None = None,
        train: bool = True,
        workers: int | None = None,
    ) -> "Testbed":
        """Construct the full testbed (index, traces, trained predictors).

        ``workers`` sizes the cluster's shard fan-out executor (default
        serial).  Every simulated outcome is bit-identical across worker
        counts; parallelism only affects build/replay wall-clock.
        """
        scale = scale or Scale.small()
        corpus = SyntheticCorpus(scale.corpus)
        groups = partition_topical(corpus.documents, scale.n_shards, seed=scale.seed)
        analyzer = WhitespaceAnalyzer()
        shards = build_shards(groups, analyzer=analyzer)
        cluster = SearchCluster(shards, k=scale.k, executor=make_executor(workers))

        bank = PredictorBank(cluster, k=scale.k, seed=scale.seed)
        report = TrainingReport()
        if train:
            queries = training_queries(
                corpus, scale.n_training_queries, seed=scale.seed + 1000
            )
            report = bank.train(
                queries,
                quality_iterations=scale.quality_iterations,
                latency_iterations=scale.latency_iterations,
                seed=scale.seed,
            )

        csi = CentralSampleIndex.build(
            groups, sample_rate=0.01, seed=scale.seed, analyzer=analyzer
        )
        estimator = TailyQualityEstimator(bank.stats_indexes)

        wikipedia = generate_trace(
            corpus,
            TraceConfig(
                flavour="wikipedia",
                n_distinct_queries=scale.trace_distinct,
                duration_s=scale.trace_duration_s,
                arrival_rate_qps=scale.trace_rate_qps,
                seed=scale.seed + 11,
            ),
        )
        lucene = generate_trace(
            corpus,
            TraceConfig(
                flavour="lucene",
                n_distinct_queries=scale.trace_distinct,
                duration_s=scale.trace_duration_s,
                arrival_rate_qps=scale.trace_rate_qps,
                seed=scale.seed + 23,
            ),
        )
        return cls(
            scale=scale,
            corpus=corpus,
            cluster=cluster,
            bank=bank,
            training_report=report,
            csi=csi,
            taily_estimator=estimator,
            wikipedia_trace=wikipedia,
            lucene_trace=lucene,
        )

    # ------------------------------------------------------------------ policies
    def make_policy(self, name: str) -> SelectionPolicy:
        """Fresh policy instance by canonical name.

        Fresh per call on purpose: adaptive policies (aggregation,
        cottage_isn) carry run state that must not leak across traces.
        """
        if name == "exhaustive":
            return ExhaustivePolicy()
        if name == "aggregation":
            return AggregationPolicy()
        if name == "rank_s":
            return RankSPolicy(self.csi, cost_model=self.cluster.cost_model)
        if name == "taily":
            return TailyPolicy(self.taily_estimator)
        if name == "cottage":
            return CottagePolicy(self.bank, network=self.cluster.network)
        if name == "cottage_without_ml":
            return CottageWithoutMLPolicy(
                self.bank, self.taily_estimator, network=self.cluster.network
            )
        if name == "cottage_isn":
            return CottageISNPolicy(self.bank, network=self.cluster.network)
        raise ValueError(f"unknown policy {name!r}")

    BASELINES: tuple[str, ...] = ("exhaustive", "taily", "rank_s", "cottage")
    ABLATIONS: tuple[str, ...] = (
        "exhaustive", "taily", "cottage_without_ml", "cottage_isn", "cottage",
    )

    # ------------------------------------------------------------------ running
    def truth_for(self, trace: QueryTrace) -> GroundTruth:
        """Exhaustive ground truth for every distinct query in the trace."""
        for query in trace:
            self._truth.ensure(self.cluster.searcher, query)
        return self._truth

    def run(self, trace: QueryTrace, policy_name: str) -> RunResult:
        """Run (or reuse) ``policy_name`` on ``trace``.

        Runs are memoized by (trace name, policy): the simulation is
        deterministic, and the evaluation figures (10-15) all read the same
        seven runs.
        """
        cache = getattr(self, "_run_cache", None)
        if cache is None:
            # Testbeds unpickled from older sessions lack the attribute.
            cache = self._run_cache = {}
        key = (trace.name, policy_name)
        cached = cache.get(key)
        if cached is None:
            cached = self.cluster.run_trace(trace, self.make_policy(policy_name))
            cache[key] = cached
        return cached

    def summarize(self, trace: QueryTrace, policy_name: str) -> PolicySummary:
        run = self.run(trace, policy_name)
        return summarize_run(run, self.truth_for(trace), trace_name=trace.name)

    def compare_policies(
        self, trace: QueryTrace, names: tuple[str, ...] | None = None
    ) -> list[PolicySummary]:
        names = names or self.BASELINES
        return [self.summarize(trace, name) for name in names]
