"""Storage-plane benchmark: compressed mmap stores + multiprocess fan-out.

Measures the three claims the compressed ``.store`` format and the
``ProcessExecutor`` make, at a scale (hundreds of thousands of docs per
shard) where they matter:

* **Compression** — delta/bit-packed doc ids, packed tfs and
  codebook-coded scores shrink the posting columns by >=2x versus the raw
  ``(int64 doc, int32 tf, float64 score)`` triple.
* **O(1) open** — ``open_stores`` memory-maps the packed columns and
  materializes nothing per term; cold-open time is independent of corpus
  size, versus the eager npz loader's full decode.
* **Bit-identity under compression and process fan-out** — every kernel
  strategy over the lazy compressed shards fingerprints identically to
  the in-memory uncompressed shards, and the merged results of
  serial/thread/process executors are byte-equal.

``benchmarks/run_bench_storage.py`` drives this, pins seeds and records
the machine fingerprint into ``BENCH_storage.json``; CI gates on the
compression ratio, bit-identity, and — on multi-core hosts only — the
process-beats-thread wall clock.

The corpus is built by direct column construction (no text analysis):
per-term document frequencies follow a Zipf-like power law, membership
is a seeded uniform draw, and scores are real BM25 over the drawn tfs
and doc lengths, so posting columns have the value distributions the
compressor actually faces (long head postings, low-cardinality tf,
codebook-friendly score repeats).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.index import IndexShard, ShardTerm, open_stores, pack_shards, store_info
from repro.index.postings import PostingList
from repro.retrieval import (
    DistributedSearcher,
    Query,
    block_max_wand_search_kernel,
    conjunctive_search_kernel,
    make_executor,
    maxscore_search,
    maxscore_search_kernel,
    wand_search_kernel,
)
from repro.scoring.similarity import BM25Similarity

N_SHARDS = 4
DOCS_PER_SHARD = 150_000
VOCAB_SIZE = 96
N_QUERIES = 8
K = 10
SEED = 42

KERNELS = {
    "maxscore": maxscore_search_kernel,
    "wand": wand_search_kernel,
    "block_max_wand": block_max_wand_search_kernel,
    "conjunctive": conjunctive_search_kernel,
}


@dataclass(frozen=True)
class MachineFingerprint:
    """Where a benchmark record came from (perf numbers are host-bound)."""

    platform: str
    python: str
    numpy: str
    cpu_count: int

    @classmethod
    def capture(cls) -> "MachineFingerprint":
        return cls(
            platform=platform.platform(),
            python=platform.python_version(),
            numpy=np.__version__,
            cpu_count=os.cpu_count() or 1,
        )


@dataclass
class StorageBenchResult:
    n_shards: int
    docs_per_shard: int
    vocab_size: int
    n_queries: int
    k: int
    seed: int
    machine: MachineFingerprint
    # Compression accounting (store files vs raw posting columns).
    packed_bytes: int = 0
    raw_column_bytes: int = 0
    compression_ratio: float = 0.0
    # Cold open.
    cold_open_ms: float = 0.0
    terms_materialized_on_open: int = 0
    # Kernel-on-compressed vs scalar reference (maxscore pair).
    reference_ms: float = 0.0
    kernel_ms: float = 0.0
    kernel_speedup: float = 0.0
    # Bit-identity: every kernel strategy, compressed vs uncompressed.
    strategies_bit_identical: dict[str, bool] = field(default_factory=dict)
    # Decode LRU counters after the kernel sweep.
    decode_hits: int = 0
    decode_misses: int = 0
    decode_hit_rate: float = 0.0
    # Executor comparison over the lazy store-backed shards.
    executor_workers: int = 0
    serial_wall_ms: float = 0.0
    thread_wall_ms: float = 0.0
    process_wall_ms: float = 0.0
    thread_makespan_ms: float = 0.0
    process_makespan_ms: float = 0.0
    executors_bit_identical: bool = False
    process_beats_thread: bool | None = None
    wall_gate: str = "enforced"

    @property
    def bit_identical(self) -> bool:
        return (
            all(self.strategies_bit_identical.values())
            and self.executors_bit_identical
        )


def build_scaled_shards(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    seed: int = SEED,
) -> list[IndexShard]:
    """Column-direct synthetic shards (no analyzer, no per-doc loop).

    Term *i*'s document frequency is ``docs_per_shard / (i + 2)`` — a
    Zipf-like head/tail split — membership is a seeded sort-free uniform
    draw, tfs are geometric-ish small integers, and scores are genuine
    BM25 over the shard's drawn doc lengths.  Deterministic per
    (shard_id, seed).
    """
    similarity = BM25Similarity()
    shards: list[IndexShard] = []
    for shard_id in range(n_shards):
        rng = np.random.default_rng(seed * 1_000_003 + shard_id)
        base = shard_id * docs_per_shard
        doc_len_values = rng.integers(64, 512, size=docs_per_shard)
        avg_len = float(doc_len_values.mean())
        total_tokens = int(doc_len_values.sum())
        terms: dict[str, ShardTerm] = {}
        for t in range(vocab_size):
            df = max(2, docs_per_shard // (t + 2))
            members = np.sort(rng.choice(docs_per_shard, size=df, replace=False))
            doc_ids = (base + members).astype(np.int64)
            tfs = np.minimum(
                rng.geometric(0.45, size=df).astype(np.int64), 24
            )
            scores = similarity.scores(
                tfs,
                doc_len_values[members],
                doc_freq=df,
                n_docs=docs_per_shard * n_shards,
                avg_doc_length=avg_len,
            ).astype(np.float64)
            name = f"t{t:03d}"
            terms[name] = ShardTerm(
                term=name,
                postings=PostingList(
                    doc_ids=doc_ids, tfs=tfs.astype(np.int32)
                ),
                scores=scores,
                upper_bound=float(scores.max()),
                global_doc_freq=df * n_shards,
            )
        doc_lengths = dict(
            zip(range(base, base + docs_per_shard), doc_len_values.tolist())
        )
        shards.append(
            IndexShard(
                shard_id=shard_id,
                n_docs=docs_per_shard,
                avg_doc_length=avg_len,
                total_tokens=total_tokens,
                doc_lengths=doc_lengths,
                similarity=similarity,
                n_docs_global=docs_per_shard * n_shards,
                _terms=terms,
            )
        )
    return shards


def sample_queries(
    n_queries: int = N_QUERIES,
    vocab_size: int = VOCAB_SIZE,
    seed: int = SEED,
) -> list[Query]:
    """2-4 term queries biased toward the head of the Zipf vocabulary."""
    rng = np.random.default_rng(seed)
    queries = []
    for qid in range(n_queries):
        n_terms = int(rng.integers(2, 5))
        ids = np.minimum(
            rng.geometric(0.08, size=n_terms) - 1, vocab_size - 1
        )
        terms = tuple(dict.fromkeys(f"t{t:03d}" for t in ids.tolist()))
        queries.append(Query(query_id=qid, terms=terms))
    return queries


def _sweep_ms(fn, shards, queries: list[Query], k: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for query in queries:
            for shard in shards:
                fn(shard, list(query.terms), k)
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def _executor_sweep_ms(
    store_dir: Path,
    queries: list[Query],
    k: int,
    workers: int,
    backend: str,
) -> tuple[float, float, list[str]]:
    """(wall_ms, worker-measured makespan_ms, merged fingerprints).

    Opens the stores fresh so every backend starts from cold parent-side
    decode caches and empty searcher memos — queries are distinct, so the
    timing is pure fan-out, not memo replay.
    """
    shards = open_stores(store_dir)
    makespan = 0.0
    with make_executor(workers, backend=backend) as executor:
        searcher = DistributedSearcher(shards, k=k, executor=executor)
        t0 = time.perf_counter()
        fingerprints = [searcher.search(q).fingerprint() for q in queries]
        wall_ms = (time.perf_counter() - t0) * 1e3
        if executor.last_stats is not None and backend != "serial":
            makespan = executor.last_stats.makespan_ms(workers)
    return wall_ms, makespan, fingerprints


def run(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    n_queries: int = N_QUERIES,
    k: int = K,
    seed: int = SEED,
    repeats: int = 2,
    workers: int = 4,
    store_dir: str | Path | None = None,
) -> StorageBenchResult:
    """Build, pack, reopen and measure; see the module docstring."""
    import tempfile

    result = StorageBenchResult(
        n_shards=n_shards,
        docs_per_shard=docs_per_shard,
        vocab_size=vocab_size,
        n_queries=n_queries,
        k=k,
        seed=seed,
        machine=MachineFingerprint.capture(),
    )
    shards = build_scaled_shards(n_shards, docs_per_shard, vocab_size, seed)
    queries = sample_queries(n_queries, vocab_size, seed)

    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_bench_storage_")
        directory = Path(tmp.name)
    else:
        tmp = None
        directory = Path(store_dir)
    try:
        paths = pack_shards(shards, directory)
        for path in paths:
            info = store_info(path)
            result.packed_bytes += info["file_bytes"]
            result.raw_column_bytes += info["raw_column_bytes"]
        result.compression_ratio = result.raw_column_bytes / result.packed_bytes

        t0 = time.perf_counter()
        lazy = open_stores(directory)
        result.cold_open_ms = (time.perf_counter() - t0) * 1e3
        result.terms_materialized_on_open = sum(
            len(shard._terms) for shard in lazy
        )

        # Bit-identity: every kernel strategy, compressed vs uncompressed.
        for name, kernel in KERNELS.items():
            result.strategies_bit_identical[name] = all(
                kernel(cold, list(q.terms), k).fingerprint()
                == kernel(hot, list(q.terms), k).fingerprint()
                for q in queries
                for cold, hot in zip(lazy, shards)
            )

        # Kernel-on-compressed speedup vs the scalar reference, plus a
        # scalar cross-check (the reference walks the same lazy shard).
        ref_ok = all(
            maxscore_search(cold, list(q.terms), k).fingerprint()
            == maxscore_search_kernel(cold, list(q.terms), k).fingerprint()
            for q in queries
            for cold in lazy
        )
        result.strategies_bit_identical["maxscore_scalar_on_compressed"] = ref_ok
        result.reference_ms = _sweep_ms(
            maxscore_search, lazy, queries, k, repeats
        )
        result.kernel_ms = _sweep_ms(
            maxscore_search_kernel, lazy, queries, k, repeats
        )
        result.kernel_speedup = result.reference_ms / result.kernel_ms

        for shard in lazy:
            stats = shard.arena.decode_stats
            result.decode_hits += stats.hits
            result.decode_misses += stats.misses
        touched = result.decode_hits + result.decode_misses
        result.decode_hit_rate = (
            result.decode_hits / touched if touched else 0.0
        )

        # Executor comparison: fresh stores per backend, distinct queries.
        result.executor_workers = workers
        result.serial_wall_ms, _, serial_fps = _executor_sweep_ms(
            directory, queries, k, workers=1, backend="serial"
        )
        result.thread_wall_ms, result.thread_makespan_ms, thread_fps = (
            _executor_sweep_ms(directory, queries, k, workers, "thread")
        )
        result.process_wall_ms, result.process_makespan_ms, process_fps = (
            _executor_sweep_ms(directory, queries, k, workers, "process")
        )
        result.executors_bit_identical = (
            serial_fps == thread_fps == process_fps
        )
        if result.machine.cpu_count > 1:
            result.process_beats_thread = (
                result.process_wall_ms < result.thread_wall_ms
            )
            result.wall_gate = "enforced"
        else:
            # One core: neither backend can physically beat the other's
            # wall clock, so the gate would measure scheduler noise.  The
            # worker-measured makespans stay recorded either way.
            result.process_beats_thread = None
            result.wall_gate = "skipped-single-core"
    finally:
        if tmp is not None:
            tmp.cleanup()
    return result


def format_report(result: StorageBenchResult) -> str:
    lines = [
        "Storage plane — compressed mmap stores + multiprocess fan-out",
        (
            f"  corpus: {result.n_shards} shards x {result.docs_per_shard} docs"
            f"   queries: {result.n_queries} (k={result.k})"
            f"   host: {result.machine.cpu_count} cpu(s)"
        ),
        (
            f"  compression: {result.packed_bytes / 1e6:.2f} MB packed vs "
            f"{result.raw_column_bytes / 1e6:.2f} MB raw columns "
            f"({result.compression_ratio:.2f}x)"
        ),
        (
            f"  cold open: {result.cold_open_ms:.2f} ms for "
            f"{result.n_shards} shards "
            f"({result.terms_materialized_on_open} terms materialized)"
        ),
        (
            f"  maxscore on compressed: ref {result.reference_ms:.1f} ms   "
            f"kernel {result.kernel_ms:.1f} ms   "
            f"speedup {result.kernel_speedup:.2f}x"
        ),
        (
            f"  decode LRU: {result.decode_hits} hits / "
            f"{result.decode_misses} misses "
            f"({result.decode_hit_rate:.1%} hit rate)"
        ),
        (
            f"  executors (x{result.executor_workers}): "
            f"serial {result.serial_wall_ms:.1f} ms   "
            f"thread {result.thread_wall_ms:.1f} ms "
            f"(makespan {result.thread_makespan_ms:.1f})   "
            f"process {result.process_wall_ms:.1f} ms "
            f"(makespan {result.process_makespan_ms:.1f})"
        ),
    ]
    for name, ok in result.strategies_bit_identical.items():
        lines.append(f"  bit-identical[{name}]: {ok}")
    lines.append(f"  bit-identical[executors]: {result.executors_bit_identical}")
    lines.append(
        f"  wall gate: {result.wall_gate}"
        + (
            f" (process beats thread: {result.process_beats_thread})"
            if result.process_beats_thread is not None
            else ""
        )
    )
    return "\n".join(lines)


def write_json(result: StorageBenchResult, path: str | Path) -> None:
    """Write the result as the ``BENCH_storage.json`` perf record."""
    Path(path).write_text(json.dumps(asdict(result), indent=2) + "\n")
