"""Fig. 11 — average P@10 search quality on both traces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed

POLICIES = ("exhaustive", "taily", "rank_s", "cottage")


@dataclass(frozen=True)
class QualityResult:
    p_at_10: dict[str, dict[str, float]]  # trace -> policy -> P@10


def run(testbed: Testbed) -> QualityResult:
    table: dict[str, dict[str, float]] = {}
    for trace_name in ("wikipedia", "lucene"):
        trace = getattr(testbed, f"{trace_name}_trace")
        truth = testbed.truth_for(trace)
        table[trace_name] = {}
        for policy in POLICIES:
            run_result = testbed.run(trace, policy)
            precisions = [
                truth.precision(record.query, record.result.doc_ids())
                for record in run_result.records
            ]
            table[trace_name][policy] = float(np.mean(precisions))
    return QualityResult(p_at_10=table)


def format_report(result: QualityResult) -> str:
    lines = ["Fig. 11 — average P@10"]
    for trace_name, row in result.p_at_10.items():
        lines.append(f"[{trace_name}]")
        for policy, value in row.items():
            lines.append(f"  {policy:<11} P@10={value:.3f}")
    lines.append(
        paper.compare("cottage P@10 (wikipedia)", paper.P10_COTTAGE_WIKI,
                      result.p_at_10["wikipedia"]["cottage"])
    )
    lines.append(
        paper.compare("cottage P@10 (lucene)", paper.P10_COTTAGE_LUCENE,
                      result.p_at_10["lucene"]["cottage"])
    )
    lines.append(
        paper.compare("taily P@10 (wikipedia)", paper.P10_TAILY_WIKI,
                      result.p_at_10["wikipedia"]["taily"])
    )
    lines.append(
        paper.compare("rank_s P@10 (max)", paper.P10_RANKS_MAX,
                      max(result.p_at_10[t]["rank_s"] for t in result.p_at_10))
    )
    lines.append(
        "  NOTE: at reproduction scale Taily's Gamma tail is accurate (shards"
        " are ~200 docs, the top-10 sits at an easy quantile), so Taily's"
        " quality exceeds the paper's 0.887 — see EXPERIMENTS.md."
    )
    return "\n".join(lines)
