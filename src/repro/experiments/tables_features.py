"""Tables I and II — the predictor feature vectors for an example query.

The paper's tables show the feature values for "Tokyo" (quality) and
"Toyota" (latency).  The harness extracts both vectors for a hot topical
term of the synthetic corpus, demonstrating the same feature pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.testbed import Testbed
from repro.predictors.features import feature_table


@dataclass(frozen=True)
class FeatureTablesResult:
    query_terms: tuple[str, ...]
    shard_id: int
    quality_table: list[tuple[str, float]]
    latency_table: list[tuple[str, float]]


def run(testbed: Testbed, shard_id: int = 0) -> FeatureTablesResult:
    # Hottest term on the shard = the "Tokyo"/"Toyota" example.
    shard = testbed.cluster.shards[shard_id]
    stats_index = testbed.bank.stats_indexes[shard_id]
    best_term, best_len = None, 0
    for query in {q.terms: q for q in testbed.wikipedia_trace}.values():
        for term in query.terms:
            entry = shard.term(term)
            if entry is not None and len(entry.postings) > best_len:
                best_term, best_len = term, len(entry.postings)
    assert best_term is not None
    terms = (best_term,)
    return FeatureTablesResult(
        query_terms=terms,
        shard_id=shard_id,
        quality_table=feature_table(terms, stats_index, "quality"),
        latency_table=feature_table(terms, stats_index, "latency"),
    )


def format_report(result: FeatureTablesResult) -> str:
    lines = [
        f"Tables I & II — features for query {' '.join(result.query_terms)!r} "
        f"on ISN-{result.shard_id}",
        "Table I (quality prediction):",
    ]
    for name, value in result.quality_table:
        lines.append(f"  {name:<36} {value:12.4f}")
    lines.append("Table II (latency prediction):")
    for name, value in result.latency_table:
        lines.append(f"  {name:<36} {value:12.4f}")
    return "\n".join(lines)
