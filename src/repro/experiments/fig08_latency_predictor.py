"""Fig. 8 — latency predictor accuracy, loss curve and inference time.

Mirror of Fig. 7 for the service-time model: accuracy-vs-iterations on one
ISN, then per-ISN accuracy (within one latency bin) and inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.predictors.datasets import build_latency_dataset
from repro.predictors.latency import LatencyPredictor
from repro.workloads.traces import training_queries


@dataclass(frozen=True)
class LatencyPredictorResult:
    curve_iterations: list[int]
    curve_accuracy: list[float]
    per_isn_accuracy: list[float]
    per_isn_inference_us: list[float]


def run(
    testbed: Testbed,
    shard_id: int = 0,
    iterations: int | None = None,
    eval_every: int = 25,
) -> LatencyPredictorResult:
    iterations = iterations or testbed.scale.latency_iterations
    queries = training_queries(
        testbed.corpus, testbed.scale.n_training_queries,
        seed=testbed.scale.seed + 1000,
    )
    dataset = build_latency_dataset(
        shard_id, testbed.bank.stats_indexes[shard_id], testbed.cluster, queries
    )
    train, test = dataset.split(0.2, seed=testbed.scale.seed)
    model = LatencyPredictor(seed=testbed.scale.seed)
    # Exact-bin eval during training (the Sequential's accuracy metric);
    # the headline per-ISN numbers use the within-one-bin criterion.
    test_bins = np.array([model.binning.bin_of(s) for s in test.service_ms])
    history = model.fit(
        train.features,
        train.service_ms,
        iterations=iterations,
        eval_set=(test.features, test_bins),
        eval_every=eval_every,
    )
    report = testbed.training_report
    return LatencyPredictorResult(
        curve_iterations=history.eval_iterations,
        curve_accuracy=history.eval_accuracy,
        per_isn_accuracy=list(report.latency_accuracy),
        per_isn_inference_us=list(report.latency_inference_us),
    )


def format_report(result: LatencyPredictorResult) -> str:
    lines = ["Fig. 8 — latency predictor", "(a) exact-bin accuracy vs iterations (ISN-0):"]
    for it, acc in zip(result.curve_iterations, result.curve_accuracy):
        lines.append(f"  iter {it:4d}: accuracy={acc:.3f}")
    lines.append("(b) per-ISN held-out accuracy (±1 bin) / inference time:")
    for sid, (acc, us) in enumerate(
        zip(result.per_isn_accuracy, result.per_isn_inference_us)
    ):
        lines.append(f"  ISN-{sid:<2d} accuracy={acc:.3f}  inference={us:6.1f} us")
    lines.append(
        paper.compare(
            "mean latency accuracy",
            paper.LATENCY_PREDICTION_ACCURACY,
            float(np.mean(result.per_isn_accuracy)),
        )
    )
    lines.append(
        paper.compare(
            "mean inference time (us)",
            paper.LATENCY_INFERENCE_US_AVG,
            float(np.mean(result.per_isn_inference_us)),
        )
    )
    return "\n".join(lines)
