"""Fig. 14 — average package power per policy, plus the idle floor."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper
from repro.experiments.testbed import Testbed
from repro.metrics.summary import relative_improvement

POLICIES = ("exhaustive", "taily", "rank_s", "cottage")


@dataclass(frozen=True)
class PowerResult:
    power_w: dict[str, dict[str, float]]  # trace -> policy -> watts
    idle_w: float


def run(testbed: Testbed) -> PowerResult:
    table: dict[str, dict[str, float]] = {}
    idle = testbed.cluster.power_model.idle_package_w(testbed.cluster.n_shards)
    for trace_name in ("wikipedia", "lucene"):
        trace = getattr(testbed, f"{trace_name}_trace")
        table[trace_name] = {
            policy: testbed.run(trace, policy).power.average_power_w
            for policy in POLICIES
        }
    return PowerResult(power_w=table, idle_w=idle)


def format_report(result: PowerResult) -> str:
    lines = ["Fig. 14 — average package power (W)"]
    lines.append(f"  idle floor: {result.idle_w:.2f} W")
    for trace_name, row in result.power_w.items():
        lines.append(f"[{trace_name}]")
        for policy, value in row.items():
            lines.append(f"  {policy:<11} {value:6.2f} W")
    wiki = result.power_w["wikipedia"]
    lines.append(paper.compare("idle power", paper.POWER_IDLE_W, result.idle_w, " W"))
    lines.append(
        paper.compare("exhaustive power", paper.POWER_EXHAUSTIVE_W, wiki["exhaustive"], " W")
    )
    lines.append(
        paper.compare(
            "cottage power saving",
            paper.POWER_SAVING_VS_EXHAUSTIVE,
            relative_improvement(wiki["exhaustive"], wiki["cottage"]),
        )
    )
    lines.append(
        paper.compare(
            "taily power saving",
            paper.TAILY_POWER_SAVING,
            relative_improvement(wiki["exhaustive"], wiki["taily"]),
        )
    )
    lines.append(
        "  NOTE: Cottage's power saving is understated at reproduction scale"
        " — cut shards hold little of the query's work under topical"
        " partitioning (see EXPERIMENTS.md)."
    )
    return "\n".join(lines)
