"""Fig. 9 — a worked time-budget determination example.

For one query, dump every ISN's <Q^K, Q^{K/2}, L_current, L_boosted>
prediction tuple and walk Algorithm 1 over it: which ISNs stage 1 cuts,
where the stage-2 pivot lands, the resulting budget, and who gets boosted.
The paper's example uses K=20; the harness uses the testbed's K with the
same mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.types import ClusterView
from repro.core.budget import BudgetDecision, BudgetInput, determine_time_budget
from repro.core.cottage import CottagePolicy
from repro.experiments.testbed import Testbed


@dataclass(frozen=True)
class BudgetExampleResult:
    query_terms: tuple[str, ...]
    inputs: list[BudgetInput]
    decision: BudgetDecision


def run(testbed: Testbed) -> BudgetExampleResult:
    policy = testbed.make_policy("cottage")
    assert isinstance(policy, CottagePolicy)
    n = testbed.cluster.n_shards
    view = ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=testbed.cluster.freq_scale.default_ghz,
        max_freq_ghz=testbed.cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(0.0 for _ in range(n)),
    )
    # Pick the distinct query with the most interesting decision: some
    # stage-1 cuts, some survivors, at least one boost.
    best_query, best_inputs, best_decision, best_score = None, None, None, -1
    for query in list({q.terms: q for q in testbed.wikipedia_trace}.values())[:60]:
        inputs = policy.budget_inputs(query, view)
        decision = determine_time_budget(inputs, boost_margin=policy.boost_margin)
        score = (
            min(len(decision.cut_zero_quality), 4)
            + min(len(decision.boosted), 2) * 2
            + min(len(decision.cut_too_slow), 2) * 3
        )
        if score > best_score and decision.selected:
            best_query, best_inputs, best_decision, best_score = (
                query, inputs, decision, score,
            )
    assert best_query is not None and best_inputs is not None
    return BudgetExampleResult(
        query_terms=best_query.terms, inputs=best_inputs, decision=best_decision
    )


def format_report(result: BudgetExampleResult) -> str:
    lines = [
        f"Fig. 9 — budget determination for query {' '.join(result.query_terms)!r}",
        " ISN   Q^K  Q^K/2  L_current  L_boosted",
    ]
    for isn in result.inputs:
        lines.append(
            f"  {isn.shard_id:<4d} {isn.quality_k:4d} {isn.quality_half_k:6d} "
            f"{isn.latency_current_ms:9.2f} {isn.latency_boosted_ms:10.2f}"
        )
    decision = result.decision
    lines.append(f"stage 1 cut (Q^K=0):        {list(decision.cut_zero_quality)}")
    lines.append(f"stage 2 cut (slow, no K/2): {list(decision.cut_too_slow)}")
    lines.append(f"selected:                   {list(decision.selected)}")
    lines.append(f"time budget:                {decision.time_budget_ms:.2f} ms")
    lines.append(f"boosted to f_max:           {list(decision.boosted)}")
    return "\n".join(lines)
