"""Fig. 3 — policy comparison on a single query.

Reproduces the paper's "Canada" walkthrough: for one representative mixed
query, show each ISN's (idle) service latency and quality contribution,
then what each of the four policy families does — exhaustive waits for the
straggler, the aggregation policy cuts stragglers blindly, selective search
keeps slow ISNs it should accelerate, and Cottage cuts/boosts per quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.types import ClusterView
from repro.experiments.testbed import Testbed
from repro.metrics.latency import percentile
from repro.retrieval.query import Query


@dataclass(frozen=True)
class PolicyOutcome:
    policy: str
    selected: tuple[int, ...]
    budget_ms: float
    precision: float
    boosted: tuple[int, ...] = ()


@dataclass(frozen=True)
class PolicyExampleResult:
    query_terms: tuple[str, ...]
    service_ms: list[float]
    contributions: list[int]
    outcomes: list[PolicyOutcome]


def _pick_example_query(testbed: Testbed) -> Query:
    """A query whose straggler has zero contribution — Fig. 3's setup."""
    truth = testbed.truth_for(testbed.wikipedia_trace)
    best, best_score = None, -1.0
    for query in {q.terms: q for q in testbed.wikipedia_trace}.values():
        contrib = truth.get(query).contributions_k
        service = [
            testbed.cluster.service_time_ms(query, sid)
            for sid in range(testbed.cluster.n_shards)
        ]
        slowest = max(range(len(service)), key=lambda s: service[s])
        spread = max(service) / max(min(service), 1e-6)
        if contrib.get(slowest, 0) == 0 and truth.get(query).contributing_shards() >= 3:
            if spread > best_score:
                best, best_score = query, spread
    return best if best is not None else testbed.wikipedia_trace[0]


def _precision_of(testbed: Testbed, query: Query, selected: tuple[int, ...]) -> float:
    truth = testbed.truth_for(testbed.wikipedia_trace)
    result = testbed.cluster.searcher.search(query, shard_ids=list(selected))
    return truth.precision(query, result.doc_ids())


def run(testbed: Testbed) -> PolicyExampleResult:
    query = _pick_example_query(testbed)
    n = testbed.cluster.n_shards
    service = [testbed.cluster.service_time_ms(query, sid) for sid in range(n)]
    truth = testbed.truth_for(testbed.wikipedia_trace)
    contributions = [truth.get(query).contributions_k.get(sid, 0) for sid in range(n)]

    outcomes = []
    # Exhaustive: everything, budget = straggler.
    all_shards = tuple(range(n))
    outcomes.append(
        PolicyOutcome("exhaustive", all_shards, max(service), 1.0)
    )
    # Aggregation policy: all shards, epoch budget cuts the latency tail.
    budget = percentile(service, 70)
    kept = tuple(sid for sid in all_shards if service[sid] <= budget)
    outcomes.append(
        PolicyOutcome("aggregation", kept, budget, _precision_of(testbed, query, kept))
    )
    # Selective search (Taily): quality-selected shards, straggler budget.
    taily_sel = tuple(testbed.make_policy("taily").decide(
        query, _idle_view(testbed)).shard_ids)
    taily_budget = max(service[sid] for sid in taily_sel)
    outcomes.append(
        PolicyOutcome(
            "selective (taily)", taily_sel, taily_budget,
            _precision_of(testbed, query, taily_sel),
        )
    )
    # Cottage: coordinated budget + boost.
    decision = testbed.make_policy("cottage").decide(query, _idle_view(testbed))
    boost = testbed.cluster.freq_scale.boost_ratio
    cottage_budget = max(
        (service[sid] / (boost if sid in decision.frequency_overrides else 1.0))
        for sid in decision.shard_ids
    )
    outcomes.append(
        PolicyOutcome(
            "cottage",
            decision.shard_ids,
            cottage_budget,
            _precision_of(testbed, query, decision.shard_ids),
            boosted=tuple(sorted(decision.frequency_overrides)),
        )
    )
    return PolicyExampleResult(
        query_terms=query.terms,
        service_ms=service,
        contributions=contributions,
        outcomes=outcomes,
    )


def _idle_view(testbed: Testbed) -> ClusterView:
    n = testbed.cluster.n_shards
    return ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=testbed.cluster.freq_scale.default_ghz,
        max_freq_ghz=testbed.cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(0.0 for _ in range(n)),
    )


def format_report(result: PolicyExampleResult) -> str:
    lines = [
        f"Fig. 3 — policy comparison for query {' '.join(result.query_terms)!r}",
        "per-ISN idle service time (ms) and P@10 contribution:",
    ]
    for sid, (ms, contribution) in enumerate(
        zip(result.service_ms, result.contributions)
    ):
        lines.append(f"  ISN-{sid:<2d} {ms:6.1f} ms  contributes {contribution}")
    lines.append("policy outcomes (budget = response time in ms):")
    for outcome in result.outcomes:
        boosted = f" boosted={list(outcome.boosted)}" if outcome.boosted else ""
        lines.append(
            f"  {outcome.policy:<18} budget={outcome.budget_ms:6.1f}  "
            f"P@10={outcome.precision:.2f}  ISNs={len(outcome.selected)}{boosted}"
        )
    return "\n".join(lines)
