"""Fig. 6 — score histogram vs fitted Gamma.

The motivation for Cottage's NN quality predictor: a query's document-score
histogram on one ISN is not a clean Gamma, so Taily's Gamma tail estimate
P(X > Kth score) deviates from the truth and mis-sizes shard contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.testbed import Testbed
from repro.retrieval.exhaustive import exhaustive_search
from repro.scoring.distributions import (
    fit_gamma_moments,
    histogram_tail_count,
    score_histogram,
)


@dataclass(frozen=True)
class ScoreDistributionResult:
    query_terms: tuple[str, ...]
    shard_id: int
    histogram: list[tuple[float, float, int]]
    kth_score: float
    true_above_kth: int
    gamma_above_kth: float
    relative_error: float


def run(testbed: Testbed, shard_id: int = 0) -> ScoreDistributionResult:
    # Use the busiest single-term topical query on the shard so the
    # histogram has body (single term = the per-term fit Taily stores).
    trace = testbed.wikipedia_trace
    shard = testbed.cluster.shards[shard_id]
    stats_index = testbed.bank.stats_indexes[shard_id]
    best_term, best_len = None, 0
    for query in {q.terms: q for q in trace}.values():
        for term in query.terms:
            entry = shard.term(term)
            if entry is not None and len(entry.postings) > best_len:
                best_term, best_len = term, len(entry.postings)
    assert best_term is not None

    scores = np.asarray(shard.term(best_term).scores, dtype=float)
    counts, edges = score_histogram(scores, bins=20)
    histogram = [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]

    k = testbed.cluster.k
    result = exhaustive_search(shard, [best_term], k)
    kth = result.hits[-1][1] if len(result.hits) >= k else 0.0

    stats = stats_index.get(best_term)
    fit = fit_gamma_moments(stats.mean, stats.variance, stats.posting_length)
    gamma_above = fit.expected_above(kth)
    true_above = histogram_tail_count(scores, kth)
    error = abs(gamma_above - true_above) / max(true_above, 1)
    return ScoreDistributionResult(
        query_terms=(best_term,),
        shard_id=shard_id,
        histogram=histogram,
        kth_score=kth,
        true_above_kth=true_above,
        gamma_above_kth=gamma_above,
        relative_error=error,
    )


def format_report(result: ScoreDistributionResult) -> str:
    lines = [
        f"Fig. 6 — score distribution of {result.query_terms[0]!r} on "
        f"ISN-{result.shard_id}",
    ]
    peak = max((count for _, _, count in result.histogram), default=1)
    for lo, hi, count in result.histogram:
        bar = "#" * int(40 * count / max(peak, 1))
        lines.append(f"  [{lo:6.2f},{hi:6.2f})  {count:5d}  {bar}")
    lines.append(
        f"  docs above K-th score ({result.kth_score:.2f}): "
        f"true={result.true_above_kth}  gamma-fit={result.gamma_above_kth:.2f}  "
        f"relative error={result.relative_error:.1%}"
    )
    lines.append(
        "  (the Gamma tail mismatch is the paper's motivation for an NN "
        "quality predictor)"
    )
    return "\n".join(lines)
