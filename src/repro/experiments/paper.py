"""The paper's reported numbers, for side-by-side comparison.

Every experiment harness prints its measured values next to these
constants; EXPERIMENTS.md records the deltas.  Values are read from the
paper's text and figures (figure reads are approximate).
"""

from __future__ import annotations

# Headline claims (abstract / conclusion).
LATENCY_REDUCTION_VS_EXHAUSTIVE = 0.54  # average, Wikipedia trace
LATENCY_SPEEDUP_WIKI = 2.41  # "2.41 times shorter"
P95_IMPROVEMENT_WIKI = 2.6  # 39 ms -> 15 ms
LATENCY_SPEEDUP_LUCENE = 2.29
P95_IMPROVEMENT_LUCENE = 2.74
DOCS_SEARCHED_RATIO = 2.67  # "2.67 times fewer documents"
POWER_SAVING_VS_EXHAUSTIVE = 0.413  # 41.3% less power
P10_COTTAGE_WIKI = 0.947
P10_COTTAGE_LUCENE = 0.955

# Fig. 10 — latency.
EXHAUSTIVE_AVG_MS_WIKI = 17.26
EXHAUSTIVE_P95_MS_WIKI = 39.0
COTTAGE_P95_MS_WIKI = 15.0
RANKS_AVG_IMPROVEMENT = 0.1112  # 11.12% vs exhaustive
TAILY_AVG_IMPROVEMENT = 0.0116  # 1.16%

# Fig. 11 — quality.
P10_TAILY_WIKI = 0.887
P10_TAILY_LUCENE = 0.878
P10_RANKS_MAX = 0.709

# Fig. 13 — active ISNs (of 16).
ACTIVE_ISNS_COTTAGE = 6.81
ACTIVE_ISNS_TAILY = 13.0
ACTIVE_ISNS_RANKS = 11.0
ACTIVE_ISNS_EXHAUSTIVE = 16.0

# Fig. 14 — power (watts).
POWER_IDLE_W = 14.53
POWER_EXHAUSTIVE_W = 36.0
POWER_TAILY_W = 25.0
POWER_RANKS_W = 24.0
POWER_COTTAGE_W = 21.0
TAILY_POWER_SAVING = 0.3112

# Fig. 7 / 8 — predictors.
QUALITY_PREDICTION_ACCURACY = 0.9471  # per-ISN average (0.957 best)
QUALITY_INFERENCE_US_MAX = 41.0
QUALITY_TRAIN_ITERATIONS = 600
LATENCY_PREDICTION_ACCURACY = 0.8723
LATENCY_INFERENCE_US_AVG = 70.25
LATENCY_TRAIN_ITERATIONS = 60

# Fig. 15 — ablation.
COTTAGE_ISN_LATENCY_FACTOR = 1.9  # Cottage-ISN latency vs Cottage
P10_COTTAGE_WITHOUT_ML = 0.85
ABLATION_ISN_REDUCTION_FROM_ML = 0.43  # 43% fewer active ISNs from ML
ABLATION_CRES_REDUCTION_FROM_ML = 0.48  # 48% smaller C_RES from ML

# Fig. 2 — workload variation.
TYPICAL_CONTRIBUTING_ISNS = 8  # modal value, of 16
LATENCY_HISTOGRAM_MODE_RANGE_MS = (5.0, 10.0)
LATENCY_HISTOGRAM_MODE_FRACTION = 0.356

# Fig. 4 — frequency scaling (measured on one hot query).
FREQ_SWEEP_SPEEDUP = 2.43  # 97 ms @ 1.2 GHz -> 40 ms @ 2.7 GHz
FREQ_MIN_GHZ = 1.2
FREQ_MAX_GHZ = 2.7


def compare(name: str, paper: float, measured: float, unit: str = "") -> str:
    """One aligned 'paper vs measured' report line."""
    return f"  {name:<44} paper={paper:<10.4g} measured={measured:.4g}{unit}"
