"""Experiment harnesses, one per paper figure/table (see DESIGN.md).

Each ``figNN_*`` module exposes ``run(testbed) -> Result`` and
``format_report(result) -> str``; the benchmark suite under
``benchmarks/`` drives them and prints the paper-vs-measured tables.
``paper`` holds the paper's reported values.
"""

from repro.experiments import (
    bench_inference,
    bench_retrieval,
    bench_selection,
    oracle_sweep,
)
from repro.experiments.testbed import Scale, Testbed

__all__ = [
    "Scale",
    "Testbed",
    "bench_inference",
    "bench_retrieval",
    "bench_selection",
    "oracle_sweep",
]
