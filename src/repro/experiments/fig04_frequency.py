"""Fig. 4 — query latency vs CPU frequency.

The paper measures a hot query at each ACPI frequency step and reports a
2.43x latency reduction from 1.2 GHz to 2.7 GHz; the simulator's Eq.-1
model is exactly inverse-proportional, so the expected ratio here is
f_max / f_min = 2.25.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import paper
from repro.experiments.testbed import Testbed


@dataclass(frozen=True)
class FrequencySweepResult:
    query_terms: tuple[str, ...]
    shard_id: int
    latency_by_freq_ms: dict[float, float]
    speedup: float


def run(testbed: Testbed) -> FrequencySweepResult:
    # The slowest (query, shard) pair in the trace plays the paper's 97 ms
    # hot query.
    trace = testbed.wikipedia_trace
    distinct = list({q.terms: q for q in trace}.values())
    query, shard_id, worst = None, 0, -1.0
    for candidate in distinct[:50]:
        for sid in range(testbed.cluster.n_shards):
            ms = testbed.cluster.service_time_ms(candidate, sid)
            if ms > worst:
                query, shard_id, worst = candidate, sid, ms
    assert query is not None

    sweep = {
        freq: testbed.cluster.service_time_ms(query, shard_id, freq_ghz=freq)
        for freq in testbed.cluster.freq_scale.levels_ghz
    }
    freqs = sorted(sweep)
    return FrequencySweepResult(
        query_terms=query.terms,
        shard_id=shard_id,
        latency_by_freq_ms=sweep,
        speedup=sweep[freqs[0]] / sweep[freqs[-1]],
    )


def format_report(result: FrequencySweepResult) -> str:
    lines = [
        f"Fig. 4 — frequency sweep for query {' '.join(result.query_terms)!r} "
        f"on ISN-{result.shard_id}",
    ]
    for freq in sorted(result.latency_by_freq_ms):
        lines.append(f"  {freq:.1f} GHz: {result.latency_by_freq_ms[freq]:7.2f} ms")
    lines.append(
        paper.compare("speedup 1.2 -> 2.7 GHz", paper.FREQ_SWEEP_SPEEDUP, result.speedup)
    )
    lines.append(
        "  (simulated service time is exactly ∝ 1/f, so the model ratio is "
        f"{2.7 / 1.2:.2f}; the paper's 2.43 includes memory-bound cycles)"
    )
    return "\n".join(lines)
