"""Retrieval-plane microbenchmark: scalar references vs. arena kernels.

Times each cursor-based scalar reference evaluator (``maxscore_search``
et al.) against its block-scored arena kernel
(:mod:`repro.retrieval.kernels`) over a synthetic 16-shard zipfian
corpus at the scale the kernels are built for (long posting lists,
multi-term queries), verifies the two paths are bit-identical —
hits, float scores, tie order and every ``CostStats`` counter, via
:meth:`~repro.retrieval.result.SearchResult.fingerprint` — and reports
per-strategy speedups.  ``benchmarks/run_bench_retrieval.py`` drives
this and writes ``BENCH_retrieval.json`` so future changes have a perf
trajectory to regress against; CI gates on the MaxScore speedup floor.

The corpus is deliberately *not* the experiment testbed: kernel wins are
scale-dependent (the dispatch floor in the kernels sends short-postings
queries to the scalars), so the benchmark builds posting lists long
enough that the vectorized path is actually exercised — 16 shards x
8000 docs with Zipf-like term frequencies, the same shape the paper's
ISN-level traces have.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

from repro.index import Document, IndexBuilder, IndexShard
from repro.retrieval import (
    SearchResult,
    block_max_wand_search,
    block_max_wand_search_kernel,
    conjunctive_search,
    conjunctive_search_kernel,
    maxscore_search,
    maxscore_search_kernel,
    wand_search,
    wand_search_kernel,
)
from repro.text import WhitespaceAnalyzer

N_SHARDS = 16
DOCS_PER_SHARD = 8000
VOCAB_SIZE = 300
N_QUERIES = 12
K = 10
SEED = 42

SearchFn = Callable[[IndexShard, list[str], int], SearchResult]

#: (strategy name, scalar reference, arena kernel) — the same pairing the
#: searcher's ``STRATEGIES`` registry wires up.
PAIRS: list[tuple[str, SearchFn, SearchFn]] = [
    ("maxscore", maxscore_search, maxscore_search_kernel),
    ("wand", wand_search, wand_search_kernel),
    ("block_max_wand", block_max_wand_search, block_max_wand_search_kernel),
    ("conjunctive", conjunctive_search, conjunctive_search_kernel),
]


@dataclass(frozen=True)
class StrategySpeedup:
    strategy: str
    reference_ms: float
    kernel_ms: float
    speedup: float
    bit_identical: bool


@dataclass(frozen=True)
class RetrievalBenchResult:
    n_shards: int
    docs_per_shard: int
    vocab_size: int
    n_queries: int
    k: int
    seed: int
    strategies: list[StrategySpeedup]

    def speedup(self, strategy: str) -> float:
        for s in self.strategies:
            if s.strategy == strategy:
                return s.speedup
        raise KeyError(strategy)

    @property
    def bit_identical(self) -> bool:
        return all(s.bit_identical for s in self.strategies)


def build_corpus(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    seed: int = SEED,
) -> list[IndexShard]:
    """Zipf-like synthetic shards: head terms get the long posting lists.

    Term frequencies follow a Pareto draw (shape 1.1), so a handful of
    vocabulary head terms dominate — the regime where block scoring pays
    and where real query traces live.  Deterministic per (shard, seed).
    """
    vocab = [f"t{i:03d}" for i in range(vocab_size)]
    shards = []
    for shard_id in range(n_shards):
        rng = random.Random(seed + 100 + shard_id)
        builder = IndexBuilder(shard_id, analyzer=WhitespaceAnalyzer())
        base = shard_id * docs_per_shard
        for i in range(docs_per_shard):
            n_words = rng.randint(8, 40)
            words = [
                vocab[min(int(rng.paretovariate(1.1)) - 1, vocab_size - 1)]
                for _ in range(n_words)
            ]
            builder.add(Document(doc_id=base + i, text=" ".join(words)))
        shards.append(builder.build())
    return shards


def sample_queries(
    n_queries: int = N_QUERIES,
    vocab_size: int = VOCAB_SIZE,
    seed: int = SEED,
) -> list[list[str]]:
    """2-4 term queries, terms Pareto-drawn (shape 1.2) over the vocab."""
    vocab = [f"t{i:03d}" for i in range(vocab_size)]
    rng = random.Random(seed)
    return [
        [
            vocab[min(int(rng.paretovariate(1.2)) - 1, vocab_size - 1)]
            for _ in range(rng.randint(2, 4))
        ]
        for _ in range(n_queries)
    ]


def _sweep_s(
    fn: SearchFn,
    shards: list[IndexShard],
    queries: list[list[str]],
    k: int,
    repeats: int,
) -> float:
    """Best-of-``repeats`` wall time for one full query x shard sweep."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for terms in queries:
            for shard in shards:
                fn(shard, list(terms), k)
        best = min(best, time.perf_counter() - t0)
    return best


def run(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    n_queries: int = N_QUERIES,
    k: int = K,
    seed: int = SEED,
    repeats: int = 3,
) -> RetrievalBenchResult:
    """Build the corpus, verify bit-identity, time every strategy pair.

    The bit-identity pass doubles as the warmup (arenas are materialized
    lazily on first kernel call), so timing starts steady-state.  Both
    paths of a pair are timed back-to-back per strategy to keep machine
    drift out of the ratio.
    """
    shards = build_corpus(n_shards, docs_per_shard, vocab_size, seed)
    queries = sample_queries(n_queries, vocab_size, seed)

    strategies = []
    for name, ref_fn, kernel_fn in PAIRS:
        bit_identical = all(
            ref_fn(shard, list(terms), k).fingerprint()
            == kernel_fn(shard, list(terms), k).fingerprint()
            for terms in queries
            for shard in shards
        )
        ref_s = _sweep_s(ref_fn, shards, queries, k, repeats)
        kernel_s = _sweep_s(kernel_fn, shards, queries, k, repeats)
        strategies.append(
            StrategySpeedup(
                strategy=name,
                reference_ms=ref_s * 1e3,
                kernel_ms=kernel_s * 1e3,
                speedup=ref_s / kernel_s,
                bit_identical=bit_identical,
            )
        )

    return RetrievalBenchResult(
        n_shards=n_shards,
        docs_per_shard=docs_per_shard,
        vocab_size=vocab_size,
        n_queries=n_queries,
        k=k,
        seed=seed,
        strategies=strategies,
    )


def format_report(result: RetrievalBenchResult) -> str:
    lines = [
        "Retrieval plane — scalar references vs. block-scored arena kernels",
        (
            f"  corpus: {result.n_shards} shards x {result.docs_per_shard} "
            f"docs   queries: {result.n_queries} (k={result.k})"
        ),
    ]
    for s in result.strategies:
        lines.append(
            f"  {s.strategy:16s} ref {s.reference_ms:8.1f} ms   "
            f"kernel {s.kernel_ms:8.1f} ms   speedup {s.speedup:5.2f}x   "
            f"bit-identical {s.bit_identical}"
        )
    return "\n".join(lines)


def write_json(result: RetrievalBenchResult, path: str | Path) -> None:
    """Write the result as the ``BENCH_retrieval.json`` perf record."""
    Path(path).write_text(json.dumps(asdict(result), indent=2) + "\n")
