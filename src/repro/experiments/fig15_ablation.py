"""Fig. 15 — component ablation.

Five schemes (exhaustive, Taily, Cottage-withoutML, Cottage-ISN, Cottage)
on both traces across four metrics: average latency, P@10, active ISNs and
C_RES.  Quantifies what (a) the NN quality model and (b) the coordinated
aggregator design each contribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import paper
from repro.experiments.testbed import Testbed

SCHEMES = ("exhaustive", "taily", "cottage_without_ml", "cottage_isn", "cottage")


@dataclass(frozen=True)
class AblationRow:
    scheme: str
    avg_latency_ms: float
    p_at_10: float
    active_isns: float
    c_res: float


@dataclass(frozen=True)
class AblationResult:
    rows: dict[str, list[AblationRow]]  # trace -> rows


def run(testbed: Testbed) -> AblationResult:
    table: dict[str, list[AblationRow]] = {}
    for trace_name in ("wikipedia", "lucene"):
        trace = getattr(testbed, f"{trace_name}_trace")
        truth = testbed.truth_for(trace)
        rows = []
        for scheme in SCHEMES:
            run_result = testbed.run(trace, scheme)
            precisions = [
                truth.precision(record.query, record.result.doc_ids())
                for record in run_result.records
            ]
            rows.append(
                AblationRow(
                    scheme=scheme,
                    avg_latency_ms=float(np.mean(run_result.latencies_ms())),
                    p_at_10=float(np.mean(precisions)),
                    active_isns=float(
                        np.mean([r.n_selected for r in run_result.records])
                    ),
                    c_res=float(np.mean([r.docs_searched for r in run_result.records])),
                )
            )
        table[trace_name] = rows
    return AblationResult(rows=table)


def format_report(result: AblationResult) -> str:
    lines = ["Fig. 15 — ablation: ML prediction and coordination"]
    for trace_name, rows in result.rows.items():
        lines.append(f"[{trace_name}]")
        lines.append("  scheme               avg_ms   P@10   ISNs    C_RES")
        for row in rows:
            lines.append(
                f"  {row.scheme:<20} {row.avg_latency_ms:6.2f}  {row.p_at_10:.3f}"
                f"  {row.active_isns:5.2f}  {row.c_res:7.1f}"
            )
        by = {row.scheme: row for row in rows}
        isn_factor = by["cottage_isn"].avg_latency_ms / by["cottage"].avg_latency_ms
        if trace_name == "wikipedia":
            lines.append(
                paper.compare("cottage_isn latency factor",
                              paper.COTTAGE_ISN_LATENCY_FACTOR, isn_factor)
            )
            lines.append(
                paper.compare("cottage_without_ml P@10",
                              paper.P10_COTTAGE_WITHOUT_ML,
                              by["cottage_without_ml"].p_at_10)
            )
            ml_isn_cut = 1.0 - by["cottage"].active_isns / by["cottage_without_ml"].active_isns
            lines.append(
                paper.compare("ML-driven active-ISN reduction",
                              paper.ABLATION_ISN_REDUCTION_FROM_ML, ml_isn_cut)
            )
            ml_cres_cut = 1.0 - by["cottage"].c_res / by["cottage_without_ml"].c_res
            lines.append(
                paper.compare("ML-driven C_RES reduction",
                              paper.ABLATION_CRES_REDUCTION_FROM_ML, ml_cres_cut)
            )
            lines.append(
                "  NOTE: negative reductions mean the Gamma variant keeps"
                " FEWER ISNs than Cottage here — at reproduction scale the"
                " Gamma estimate is sharp and over-cuts, which is also why"
                " its P@10 is lower (see EXPERIMENTS.md deviation 1)."
            )
    return "\n".join(lines)
