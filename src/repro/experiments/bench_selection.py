"""Adaptive-selection ablation: static arms vs learned selector vs oracle.

The benchmark behind ``BENCH_selection.json``.  On one seeded zipf
workload it:

1. runs the oracle sweep (:mod:`repro.experiments.oracle_sweep`) to get
   the ground-truth per-(query, shard) service table;
2. trains the :class:`~repro.predictors.selector.LearnedSelector` from
   the sweep's winner labels and calibrates its confidence floor on the
   same workload (threshold grid, lowest mean fan-out wins);
3. scores three kinds of arm on fan-out latency (per query: max over
   shards of modeled service) and total scheduled work: each rank-safe
   **static** strategy, the **learned** selector, and the per-shard
   **oracle**;
4. verifies the dispatch contract — for every (query, shard), searching
   through :class:`~repro.retrieval.searcher.ShardSearcher` with the
   selector's :class:`~repro.retrieval.searcher.StrategyChoice` is
   **bit-identical** (result fingerprint) to running the chosen strategy
   standalone;
5. replays the workload through the full simulated cluster
   (``SearchCluster.run_trace``) with and without the selector — the
   end-to-end ablation including queueing.

Training and evaluation share the workload deliberately: the selector is
an in-corpus compressed oracle (term statistics are immutable, queries
recur), so memorization is the intended operating mode — generalization
to unseen queries is *reported* (``holdout_accuracy``, from a probe model
trained on an 80% split) but not gated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.engine import SearchCluster
from repro.experiments.bench_retrieval import build_corpus, sample_queries
from repro.experiments.oracle_sweep import (
    SweepDataset,
    SweepSummary,
    summarize,
    sweep,
)
from repro.index.term_stats import TermStatsIndex
from repro.policies import ExhaustivePolicy
from repro.predictors.features import TermFeatureCache
from repro.predictors.selector import SAFE_STRATEGIES, LearnedSelector
from repro.retrieval.query import Query, QueryTrace
from repro.retrieval.searcher import STRATEGIES, ShardSearcher, StrategyChoice

N_SHARDS = 16
DOCS_PER_SHARD = 400
VOCAB_SIZE = 150
N_QUERIES = 240
K = 10
SEED = 7
HIDDEN_UNITS = 64
ITERATIONS = 1200
HOLDOUT = 0.2
#: Calibration grid for the confidence floor; 0.0 = trust every argmax.
CONFIDENCE_GRID: tuple[float, ...] = (0.0, 0.5, 0.7, 0.9)
#: Trace arrival spacing (s) for the simulated replay — sparse enough
#: that queueing noise does not drown the traversal-cost signal.
ARRIVAL_SPACING_S = 0.25


@dataclass
class SelectionArm:
    """One policy's fan-out latency and scheduled-work accounting."""

    name: str
    mean_ms: float
    p99_ms: float
    total_service_ms: float

    def row(self) -> dict[str, float | str]:
        return {
            "name": self.name,
            "mean_ms": self.mean_ms,
            "p99_ms": self.p99_ms,
            "total_service_ms": self.total_service_ms,
        }


@dataclass
class SimAblation:
    """One ``run_trace`` replay's client-observed latency."""

    name: str
    mean_ms: float
    p99_ms: float
    strategy_choices: dict[str, int] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        return {
            "name": self.name,
            "mean_ms": self.mean_ms,
            "p99_ms": self.p99_ms,
            "strategy_choices": self.strategy_choices,
        }


@dataclass
class SelectionBenchResult:
    n_queries: int
    n_shards: int
    k: int
    arms: list[SelectionArm]
    best_static: str
    confidence: float
    train_accuracy: float
    holdout_accuracy: float
    choice_counts: dict[str, int]
    bit_identical: bool
    rank_safe: bool
    sim: list[SimAblation]
    train_s: float
    sweep_s: float

    def arm(self, name: str) -> SelectionArm:
        for arm in self.arms:
            if arm.name == name:
                return arm
        raise KeyError(name)

    @property
    def best_static_mean_ms(self) -> float:
        return self.arm(self.best_static).mean_ms

    @property
    def learned_mean_ms(self) -> float:
        return self.arm("learned").mean_ms

    @property
    def oracle_mean_ms(self) -> float:
        return self.arm("oracle").mean_ms

    @property
    def oracle_gap_ms(self) -> float:
        return self.best_static_mean_ms - self.oracle_mean_ms

    @property
    def gap_closed_pct(self) -> float:
        """Share of the static-best-to-oracle gap the learned arm closed."""
        if self.oracle_gap_ms <= 0:
            return 0.0
        return (
            100.0
            * (self.best_static_mean_ms - self.learned_mean_ms)
            / self.oracle_gap_ms
        )


def _fanout_stats(service: np.ndarray) -> tuple[float, float, float]:
    """``service[NQ, S] -> (mean fan-out, p99 fan-out, total work)``."""
    fanout = service.max(axis=1)
    return (
        float(fanout.mean()),
        float(np.percentile(fanout, 99)),
        float(service.sum()),
    )


def holdout_accuracy(
    dataset: SweepDataset,
    cache: TermFeatureCache,
    labels: np.ndarray,
    holdout: float = HOLDOUT,
    hidden_units: int = HIDDEN_UNITS,
    iterations: int = ITERATIONS,
    seed: int = SEED,
) -> float:
    """Unseen-query accuracy of a probe selector trained on a split.

    A *separate* model — the shipped selector trains on the full
    workload; this one exists only to report how the architecture
    generalizes beyond memorization.
    """
    n = dataset.n_queries
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(int(n * holdout), 1)
    test, train = order[:n_test], order[n_test:]
    probe = LearnedSelector(cache, hidden_units=hidden_units, seed=seed + 1)
    probe.fit(
        [dataset.term_tuples[i] for i in train],
        labels[train],
        iterations=iterations,
        seed=seed,
    )
    predicted = probe.predict_strategies(
        [dataset.term_tuples[i] for i in test]
    )
    return float(np.mean(predicted == labels[test]))


def calibrate_confidence(
    selector: LearnedSelector,
    dataset: SweepDataset,
    grid: tuple[float, ...] = CONFIDENCE_GRID,
) -> float:
    """Pick the confidence floor with the lowest in-corpus mean fan-out.

    Ties break toward the lower threshold (trust the model more).  The
    fallback at threshold 1.0+ would reproduce the best static arm
    exactly, so the calibrated selector can never do worse than the grid
    allows.
    """
    safe = dataset.safe_service_ms()
    rows = np.arange(dataset.n_queries)[:, None]
    cols = np.arange(dataset.n_shards)[None, :]
    best_conf, best_mean = grid[0], float("inf")
    for conf in grid:
        selector.confidence = conf
        picked = selector.predict_strategies(dataset.term_tuples)
        mean = float(safe[rows, cols, picked].max(axis=1).mean())
        if mean < best_mean - 1e-12:
            best_conf, best_mean = conf, mean
    selector.confidence = best_conf
    return best_conf


def verify_dispatch_identity(
    shards,
    dataset: SweepDataset,
    picked: np.ndarray,
    k: int,
) -> bool:
    """Every selected traversal == running that strategy standalone.

    Dispatches each (query, shard) pick through a fresh
    :class:`ShardSearcher` carrying the selector's
    :class:`StrategyChoice`, and compares the result *fingerprint*
    (hits, scores, tie order, cost counters) against the strategy
    callable invoked directly — the strict bit-identity the adaptive
    hook guarantees.
    """
    searchers = [ShardSearcher(shard, k=k) for shard in shards]
    for q_idx, terms in enumerate(dataset.term_tuples):
        query = Query(query_id=q_idx, terms=terms)
        for s_idx, searcher in enumerate(searchers):
            name = SAFE_STRATEGIES[int(picked[q_idx, s_idx])]
            dispatched = searcher.search(query, StrategyChoice(strategy=name))
            standalone = STRATEGIES[name](shards[s_idx], list(terms), k)
            if dispatched.fingerprint() != standalone.fingerprint():
                return False
    return True


def run(
    n_shards: int = N_SHARDS,
    docs_per_shard: int = DOCS_PER_SHARD,
    vocab_size: int = VOCAB_SIZE,
    n_queries: int = N_QUERIES,
    k: int = K,
    seed: int = SEED,
    hidden_units: int = HIDDEN_UNITS,
    iterations: int = ITERATIONS,
    with_sim: bool = True,
) -> SelectionBenchResult:
    shards = build_corpus(n_shards, docs_per_shard, vocab_size, seed)
    queries = sample_queries(n_queries, vocab_size, seed)

    t0 = time.perf_counter()  # simlint: disable=DET-CLOCK -- benchmark harness wall-clock, never feeds the sim
    dataset = sweep(shards, queries, k=k)
    sweep_s = time.perf_counter() - t0  # simlint: disable=DET-CLOCK -- benchmark harness wall-clock, never feeds the sim
    summary: SweepSummary = summarize(dataset)
    labels = dataset.labels()

    cache = TermFeatureCache([TermStatsIndex(s, k=k) for s in shards])
    selector = LearnedSelector(
        cache,
        hidden_units=hidden_units,
        seed=seed,
        fallback_strategy=summary.best_static,
    )
    t0 = time.perf_counter()  # simlint: disable=DET-CLOCK -- benchmark harness wall-clock, never feeds the sim
    train_accs = selector.fit(
        dataset.term_tuples, labels, iterations=iterations, seed=seed
    )
    train_s = time.perf_counter() - t0  # simlint: disable=DET-CLOCK -- benchmark harness wall-clock, never feeds the sim
    confidence = calibrate_confidence(selector, dataset)
    generalization = holdout_accuracy(
        dataset, cache, labels,
        hidden_units=hidden_units, iterations=iterations, seed=seed,
    )

    safe = dataset.safe_service_ms()
    rows = np.arange(dataset.n_queries)[:, None]
    cols = np.arange(dataset.n_shards)[None, :]
    picked = selector.predict_strategies(dataset.term_tuples)

    arms = []
    for a_idx, name in enumerate(SAFE_STRATEGIES):
        mean, p99, total = _fanout_stats(safe[:, :, a_idx])
        arms.append(SelectionArm(name, mean, p99, total))
    mean, p99, total = _fanout_stats(safe[rows, cols, picked])
    arms.append(SelectionArm("learned", mean, p99, total))
    mean, p99, total = _fanout_stats(safe.min(axis=2))
    arms.append(SelectionArm("oracle", mean, p99, total))

    choice_counts = {
        name: int(np.sum(picked == a_idx))
        for a_idx, name in enumerate(SAFE_STRATEGIES)
    }
    bit_identical = verify_dispatch_identity(shards, dataset, picked, k)

    sim: list[SimAblation] = []
    if with_sim:
        trace = QueryTrace(
            "selection",
            [
                Query(
                    query_id=i,
                    terms=terms,
                    arrival_time=i * ARRIVAL_SPACING_S,
                )
                for i, terms in enumerate(dataset.term_tuples)
            ],
        )
        cluster = SearchCluster(shards, k=k, strategy=summary.best_static)
        for name, sel in (("static_best", None), ("learned", selector)):
            result = cluster.run_trace(trace, ExhaustivePolicy(), selector=sel)
            latencies = np.array(result.latencies_ms())
            sim.append(
                SimAblation(
                    name=name,
                    mean_ms=float(latencies.mean()),
                    p99_ms=float(np.percentile(latencies, 99)),
                    strategy_choices=dict(result.strategy_choices),
                )
            )

    return SelectionBenchResult(
        n_queries=dataset.n_queries,
        n_shards=n_shards,
        k=k,
        arms=arms,
        best_static=summary.best_static,
        confidence=confidence,
        train_accuracy=float(np.mean(train_accs)),
        holdout_accuracy=generalization,
        choice_counts=choice_counts,
        bit_identical=bit_identical,
        rank_safe=dataset.rank_safe,
        sim=sim,
        train_s=train_s,
        sweep_s=sweep_s,
    )


def format_report(result: SelectionBenchResult) -> str:
    lines = [
        "adaptive traversal selection "
        f"({result.n_queries} queries x {result.n_shards} shards, "
        f"k={result.k})",
        f"{'arm':<16} {'mean_ms':>9} {'p99_ms':>9} {'total_work_ms':>14}",
        "-" * 52,
    ]
    for arm in result.arms:
        marker = ""
        if arm.name == result.best_static:
            marker = " (best static)"
        lines.append(
            f"{arm.name:<16} {arm.mean_ms:>9.2f} {arm.p99_ms:>9.2f} "
            f"{arm.total_service_ms:>14.0f}{marker}"
        )
    lines.append(
        f"learned closes {result.gap_closed_pct:.1f}% of the "
        f"{result.oracle_gap_ms:.2f} ms static-to-oracle gap "
        f"(confidence floor {result.confidence:.2f})"
    )
    lines.append(
        f"selector accuracy: train {100 * result.train_accuracy:.1f}%  "
        f"holdout {100 * result.holdout_accuracy:.1f}% (reported, not gated)"
    )
    picks = ", ".join(
        f"{name}={count}" for name, count in result.choice_counts.items()
    )
    lines.append(f"per-(query, shard) picks: {picks}")
    lines.append(
        "dispatch bit-identical to standalone strategy runs: "
        f"{'yes' if result.bit_identical else 'NO'}"
    )
    lines.append(
        "rank-safe arms agree on top-k: "
        f"{'yes' if result.rank_safe else 'NO'}"
    )
    for ablation in result.sim:
        choices = (
            "  choices " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(ablation.strategy_choices.items())
            )
            if ablation.strategy_choices
            else ""
        )
        lines.append(
            f"sim {ablation.name:<12} mean {ablation.mean_ms:>8.2f} ms  "
            f"p99 {ablation.p99_ms:>8.2f} ms{choices}"
        )
    return "\n".join(lines)


def write_json(result: SelectionBenchResult, path: str | Path) -> None:
    payload = {
        "n_queries": result.n_queries,
        "n_shards": result.n_shards,
        "k": result.k,
        "arms": [arm.row() for arm in result.arms],
        "best_static": result.best_static,
        "best_static_mean_ms": result.best_static_mean_ms,
        "learned_mean_ms": result.learned_mean_ms,
        "oracle_mean_ms": result.oracle_mean_ms,
        "oracle_gap_ms": result.oracle_gap_ms,
        "gap_closed_pct": result.gap_closed_pct,
        "confidence": result.confidence,
        "train_accuracy": result.train_accuracy,
        "holdout_accuracy": result.holdout_accuracy,
        "choice_counts": result.choice_counts,
        "bit_identical": result.bit_identical,
        "rank_safe": result.rank_safe,
        "sim": [ablation.row() for ablation in result.sim],
        "sweep_s": result.sweep_s,
        "train_s": result.train_s,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
