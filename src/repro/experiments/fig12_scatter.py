"""Fig. 12 — per-query latency vs quality scatter.

Cottage's queries cluster top-left (fast and accurate); Taily and Rank-S
scatter down the quality axis.  The harness reports quadrant occupancy
rather than a plot: the fraction of queries that are both fast (latency
below the exhaustive median) and good (P@10 >= 0.8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.testbed import Testbed
from repro.metrics.latency import percentile
from repro.reporting import scatter_plot

POLICIES = ("cottage", "taily", "rank_s")


@dataclass(frozen=True)
class ScatterResult:
    points: dict[str, list[tuple[float, float]]]  # policy -> (latency, P@10)
    fast_good_fraction: dict[str, float]
    latency_threshold_ms: float


def run(testbed: Testbed) -> ScatterResult:
    trace = testbed.wikipedia_trace
    truth = testbed.truth_for(trace)
    exhaustive = testbed.run(trace, "exhaustive")
    threshold = percentile(exhaustive.latencies_ms(), 50)

    points: dict[str, list[tuple[float, float]]] = {}
    fractions: dict[str, float] = {}
    for policy in POLICIES:
        run_result = testbed.run(trace, policy)
        policy_points = [
            (
                record.latency_ms,
                truth.precision(record.query, record.result.doc_ids()),
            )
            for record in run_result.records
        ]
        points[policy] = policy_points
        fractions[policy] = float(
            np.mean([lat <= threshold and p >= 0.8 for lat, p in policy_points])
        )
    return ScatterResult(
        points=points, fast_good_fraction=fractions, latency_threshold_ms=threshold
    )


def format_report(result: ScatterResult) -> str:
    lines = [
        "Fig. 12 — latency-quality scatter (Wikipedia trace)",
        f"fast = latency <= exhaustive median ({result.latency_threshold_ms:.1f} ms), "
        "good = P@10 >= 0.8",
    ]
    for policy, fraction in result.fast_good_fraction.items():
        lines.append(f"  {policy:<8} fast-and-good fraction: {fraction:.2%}")
    for policy, points in result.points.items():
        lines.append(f"[{policy}] latency (x) vs P@10 (y):")
        lines.append(
            scatter_plot(points, x_label="latency ms", y_label="P@10")
        )
    lines.append(
        "  (paper: Cottage's dots sit top-left; Taily/Rank-S scatter across "
        "the quality range)"
    )
    return "\n".join(lines)
