"""Terminal chart rendering.

The experiment harnesses print their figures; these helpers render the
paper's bar charts, histograms, time series and scatter plots as aligned
ASCII so `pytest benchmarks/` output reads like the evaluation section.
"""

from __future__ import annotations

import math

_BLOCKS = " .:-=+*#%@"
_SPARKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    rows: list[tuple[str, float]],
    width: int = 40,
    unit: str = "",
    precision: int = 2,
) -> str:
    """Horizontal bar chart: one (label, value) per row."""
    if not rows:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be positive")
    top = max(value for _, value in rows)
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = int(round(width * value / top)) if top > 0 else 0
        lines.append(
            f"  {label:<{label_width}}  {value:>{precision + 6}.{precision}f}{unit} "
            f"|{'#' * filled}"
        )
    return "\n".join(lines)


def histogram_chart(
    bins: list[tuple[float, float, int]], width: int = 40, unit: str = "ms"
) -> str:
    """Histogram from (lo, hi, count) bins."""
    if not bins:
        return "  (empty histogram)"
    peak = max(count for _, _, count in bins)
    lines = []
    for lo, hi, count in bins:
        filled = int(round(width * count / peak)) if peak > 0 else 0
        lines.append(
            f"  [{lo:7.1f},{hi:7.1f}) {unit}  {count:6d} |{'#' * filled}"
        )
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """One-line trend: values mapped onto eight block heights."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(int((v - lo) / span * len(_SPARKS)), len(_SPARKS) - 1)]
        for v in values
    )


def scatter_plot(
    points: list[tuple[float, float]],
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Density scatter: darker cells hold more points.

    The y axis grows upward (top row = max y), matching the paper's
    latency-vs-quality panels where "top-left is good".
    """
    if not points:
        return "  (no points)"
    if width < 2 or height < 2:
        raise ValueError("grid too small")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[0] * width for _ in range(height)]
    for x, y in points:
        col = min(int((x - x_lo) / x_span * (width - 1)), width - 1)
        row = min(int((y - y_lo) / y_span * (height - 1)), height - 1)
        grid[height - 1 - row][col] += 1
    peak = max(max(row) for row in grid)
    lines = [f"  {y_label} {y_hi:.2f}"]
    for row in grid:
        cells = "".join(
            _BLOCKS[min(int(math.ceil(c / peak * (len(_BLOCKS) - 1))), len(_BLOCKS) - 1)]
            if c else " "
            for c in row
        )
        lines.append(f"  |{cells}|")
    lines.append(f"  {y_label} {y_lo:.2f}  ({x_label}: {x_lo:.2f} .. {x_hi:.2f})")
    return "\n".join(lines)


def series_chart(
    series: dict[str, list[tuple[float, float]]], width: int = 50
) -> str:
    """Sparkline per named series, resampled onto a common grid."""
    if not series:
        raise ValueError("nothing to chart")
    label_width = max(len(name) for name in series)
    lines = []
    for name, points in series.items():
        values = [v for _, v in points]
        if len(values) > width:
            step = len(values) / width
            values = [values[int(i * step)] for i in range(width)]
        lo = min(values) if values else 0.0
        hi = max(values) if values else 0.0
        lines.append(
            f"  {name:<{label_width}} {sparkline(values)}  "
            f"[{lo:.1f} .. {hi:.1f}]"
        )
    return "\n".join(lines)
