"""Terminal reporting: ASCII charts for the experiment harnesses."""

from repro.reporting.charts import (
    bar_chart,
    histogram_chart,
    scatter_plot,
    series_chart,
    sparkline,
)

__all__ = [
    "bar_chart",
    "histogram_chart",
    "sparkline",
    "scatter_plot",
    "series_chart",
]
