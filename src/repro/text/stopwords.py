"""English stopword list and a stopword token filter."""

from __future__ import annotations

# Lucene's classic English stopword set plus a handful of very common web
# terms.  Kept short on purpose: stopword removal only needs to strip the
# terms whose posting lists would otherwise dwarf everything else.
ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if",
        "in", "into", "is", "it", "no", "not", "of", "on", "or", "such",
        "that", "the", "their", "then", "there", "these", "they", "this",
        "to", "was", "will", "with", "we", "you", "your", "from", "have",
        "has", "had", "were", "been", "its", "his", "her", "she", "he",
    }
)


class StopwordFilter:
    """Removes stopwords from a token stream.

    Parameters
    ----------
    stopwords:
        The set of terms to drop.  Matching is done on the token as given;
        place the filter after lowercasing in the analyzer chain.
    """

    def __init__(self, stopwords: frozenset[str] | set[str] = ENGLISH_STOPWORDS) -> None:
        self.stopwords = frozenset(stopwords)

    def filter(self, tokens: list[str]) -> list[str]:
        """Return ``tokens`` with stopwords removed, order preserved."""
        return [token for token in tokens if token not in self.stopwords]
