"""Analyzer chains composing tokenization and token filters."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.text.stemmer import LightStemmer
from repro.text.stopwords import ENGLISH_STOPWORDS, StopwordFilter
from repro.text.tokenizer import SimpleTokenizer, Tokenizer


class Analyzer(ABC):
    """Turns raw text into the final index/query terms.

    The same analyzer instance must be used for indexing and querying a
    collection, otherwise query terms will not line up with the dictionary.
    """

    @abstractmethod
    def analyze(self, text: str) -> list[str]:
        """Return the normalized terms for ``text``."""


class StandardAnalyzer(Analyzer):
    """Lowercase -> stopword removal -> light stemming.

    This mirrors the default Solr ``text_general``-style chain used by the
    paper's testbed closely enough for term statistics to behave the same
    way: high-frequency function words never reach the index, and inflected
    variants share posting lists.
    """

    def __init__(
        self,
        tokenizer: Tokenizer | None = None,
        stopwords: frozenset[str] = ENGLISH_STOPWORDS,
        stem: bool = True,
    ) -> None:
        self._tokenizer = tokenizer or SimpleTokenizer()
        self._stopword_filter = StopwordFilter(stopwords)
        self._stemmer = LightStemmer() if stem else None

    def analyze(self, text: str) -> list[str]:
        tokens = [token.lower() for token in self._tokenizer.tokenize(text)]
        tokens = self._stopword_filter.filter(tokens)
        if self._stemmer is not None:
            tokens = self._stemmer.filter(tokens)
        return tokens


class WhitespaceAnalyzer(Analyzer):
    """Lowercased whitespace split with no filtering.

    Used by the synthetic workloads, whose generated "terms" are already
    normalized vocabulary ids — running them through stemming would merge
    distinct synthetic terms and distort the Zipf distribution on purpose
    built by the generator.
    """

    def analyze(self, text: str) -> list[str]:
        return text.lower().split()
