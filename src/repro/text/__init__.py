"""Text analysis substrate: tokenization, stopwords, stemming, analyzers.

This package is the front end of the search engine built for the Cottage
reproduction.  It converts raw document/query text into the token streams
consumed by :mod:`repro.index`.
"""

from repro.text.analyzer import Analyzer, StandardAnalyzer, WhitespaceAnalyzer
from repro.text.stemmer import LightStemmer
from repro.text.stopwords import ENGLISH_STOPWORDS, StopwordFilter
from repro.text.tokenizer import SimpleTokenizer, Tokenizer

__all__ = [
    "Analyzer",
    "StandardAnalyzer",
    "WhitespaceAnalyzer",
    "LightStemmer",
    "ENGLISH_STOPWORDS",
    "StopwordFilter",
    "SimpleTokenizer",
    "Tokenizer",
]
