"""A light English suffix stemmer.

This implements the "S-stemmer plus" family used by several IR systems when a
full Porter stemmer is overkill: plural and common derivational suffixes are
stripped with guards that keep short stems intact.  It is deterministic and
cheap, which matters because analysis runs on every document at index time.
"""

from __future__ import annotations


class LightStemmer:
    """Conservative English suffix stripper.

    The rules run in order and at most one rule fires per token.  Each rule
    is (suffix, replacement, minimum stem length).  The minimum stem length
    guard prevents mangling short words ("was" -> "wa").
    """

    _RULES: tuple[tuple[str, str, int], ...] = (
        ("ational", "ate", 4),
        ("ization", "ize", 4),
        ("fulness", "ful", 4),
        ("ousness", "ous", 4),
        ("iveness", "ive", 4),
        ("ements", "ement", 4),
        ("ations", "ate", 4),
        ("ities", "ity", 4),
        ("ingly", "", 4),
        ("ement", "ement", 4),
        ("ness", "", 4),
        ("ance", "", 4),
        ("ence", "", 4),
        ("ies", "y", 3),
        ("ied", "y", 3),
        ("ing", "", 4),
        ("ed", "", 4),
        ("es", "e", 3),
        ("s", "", 3),
    )

    def stem(self, token: str) -> str:
        """Return the stemmed form of ``token``.

        Tokens containing digits are returned unchanged, since numbers and
        mixed identifiers carry meaning in their exact surface form.
        """
        if any(ch.isdigit() for ch in token):
            return token
        # "-es" after a sibilant is a pure plural marker ("foxes" -> "fox",
        # "searches" -> "search"); elsewhere the e belongs to the stem
        # ("makes" -> "make").  Handled before the generic rules so the
        # inflected form meets its "-ing" sibling at the same stem.
        if token.endswith("es") and not token.endswith(("ies", "ees")):
            stem = token[:-2]
            if len(stem) >= 3:
                if stem.endswith(("s", "x", "z", "ch", "sh")):
                    return stem
                return stem + "e"
        for suffix, replacement, min_stem in self._RULES:
            if token.endswith(suffix):
                stem = token[: len(token) - len(suffix)]
                if len(stem) >= min_stem:
                    return stem + replacement
                # Rules are ordered longest-first; once a suffix matches but
                # the guard fails, shorter suffixes of it would also produce
                # short stems, so keep scanning only non-overlapping rules.
                continue
        return token

    def filter(self, tokens: list[str]) -> list[str]:
        """Stem every token in the stream."""
        return [self.stem(token) for token in tokens]
