"""Tokenizers splitting raw text into candidate index terms."""

from __future__ import annotations

import re
from abc import ABC, abstractmethod


class Tokenizer(ABC):
    """Base interface for tokenizers.

    A tokenizer converts a raw string into a list of surface tokens.  All
    downstream normalization (lowercasing, stopword removal, stemming) is the
    job of the analyzer chain, not the tokenizer.
    """

    @abstractmethod
    def tokenize(self, text: str) -> list[str]:
        """Split ``text`` into tokens, preserving order and duplicates."""


class SimpleTokenizer(Tokenizer):
    """Unicode-word tokenizer comparable to Lucene's StandardTokenizer.

    Tokens are maximal runs of alphanumeric characters; everything else is a
    separator.  Purely numeric tokens are kept (query traces contain years,
    model numbers, etc.), but tokens longer than ``max_token_length`` are
    dropped, matching Lucene's default of discarding pathological tokens.
    """

    _WORD = re.compile(r"[0-9A-Za-z]+(?:'[0-9A-Za-z]+)?")

    def __init__(self, max_token_length: int = 64) -> None:
        if max_token_length < 1:
            raise ValueError("max_token_length must be positive")
        self.max_token_length = max_token_length

    def tokenize(self, text: str) -> list[str]:
        if not text:
            return []
        return [
            match.group(0)
            for match in self._WORD.finditer(text)
            if len(match.group(0)) <= self.max_token_length
        ]


class NGramTokenizer(Tokenizer):
    """Character n-gram tokenizer, used by robustness tests as an alternative
    analysis chain (the index layer must not assume word tokens)."""

    def __init__(self, n: int = 3) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n

    def tokenize(self, text: str) -> list[str]:
        compact = re.sub(r"\s+", " ", text.strip().lower())
        if len(compact) < self.n:
            return [compact] if compact else []
        return [compact[i : i + self.n] for i in range(len(compact) - self.n + 1)]
