"""Seeded open-loop arrival processes: Poisson, MMPP, modulated Poisson.

Each process is a pure function of its seed: ``times()`` returns a fresh
infinite iterator of absolute arrival instants (seconds) and always
replays the identical sequence — the determinism contract every other
layer of the repo holds (DET-RNG).  Iterators are lazy so a million-query
campaign never materializes its arrival vector.

Truncation (query count / duration) is the consumer's job — see
:class:`repro.serving.stream.QueryStream`.

The non-homogeneous process uses Lewis & Shedler thinning: candidates are
drawn at the peak rate and accepted with probability ``rate(t)/peak``, so
any bounded deterministic :class:`RateProfile` (diurnal sinusoid, bursts,
QPS sweep steps) modulates an exact Poisson process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

import numpy as np


class ArrivalProcess(Protocol):
    """An infinite, seeded stream of absolute arrival instants (seconds)."""

    name: str

    def times(self) -> Iterator[float]:
        """A fresh iterator over arrival instants; replays identically."""
        ...

    def mean_rate_qps(self) -> float:
        """Long-run average arrival rate (for load accounting / sizing)."""
        ...


@dataclass(frozen=True)
class PoissonProcess:
    """Homogeneous Poisson arrivals at ``rate_qps`` (exponential gaps)."""

    rate_qps: float
    seed: int = 0
    name = "poisson"

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("arrival rate must be positive")

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / self.rate_qps
        t = 0.0
        while True:
            t += float(rng.exponential(scale))
            yield t

    def mean_rate_qps(self) -> float:
        return self.rate_qps


@dataclass(frozen=True)
class MMPPProcess:
    """Markov-modulated Poisson process (cyclic-state variant).

    The modulating chain visits ``rates_qps`` in order (0 -> 1 -> ... -> 0),
    dwelling an exponential time with mean ``dwells_s[i]`` in state *i*;
    while in state *i* arrivals are Poisson at ``rates_qps[i]``.  The
    classic two-state form (low rate / bursty rate) models flash crowds.

    At a state switch the in-progress inter-arrival draw is discarded and
    redrawn at the new rate — exactly the MMPP definition, since the
    exponential residual is memoryless.
    """

    rates_qps: tuple[float, ...]
    dwells_s: tuple[float, ...]
    seed: int = 0
    name = "mmpp"

    def __post_init__(self) -> None:
        if len(self.rates_qps) < 2:
            raise ValueError("MMPP needs at least two states")
        if len(self.dwells_s) != len(self.rates_qps):
            raise ValueError("one dwell time per rate state")
        if any(r < 0 for r in self.rates_qps) or not any(self.rates_qps):
            raise ValueError("rates must be >= 0 with at least one positive")
        if any(d <= 0 for d in self.dwells_s):
            raise ValueError("dwell times must be positive")

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        state = 0
        t = 0.0
        switch_at = float(rng.exponential(self.dwells_s[state]))
        while True:
            rate = self.rates_qps[state]
            if rate > 0:
                candidate = t + float(rng.exponential(1.0 / rate))
            else:
                candidate = math.inf  # silent state: idle until the switch
            if candidate < switch_at:
                t = candidate
                yield t
            else:
                t = switch_at
                state = (state + 1) % len(self.rates_qps)
                switch_at = t + float(rng.exponential(self.dwells_s[state]))

    def mean_rate_qps(self) -> float:
        # Stationary occupancy of the cyclic chain is proportional to the
        # mean dwell, so the long-run rate is the dwell-weighted mean.
        total_dwell = sum(self.dwells_s)
        weighted = sum(r * d for r, d in zip(self.rates_qps, self.dwells_s))
        return weighted / total_dwell


@runtime_checkable
class RateProfile(Protocol):
    """A deterministic rate multiplier over time for modulated arrivals."""

    name: str

    def factor(self, t_s: float) -> float:
        """Multiplier applied to the base rate at time ``t_s`` (>= 0)."""
        ...

    @property
    def peak_factor(self) -> float:
        """Upper bound of ``factor`` (the thinning envelope)."""
        ...

    @property
    def mean_factor(self) -> float:
        """Long-run average of ``factor`` (over one period/cycle)."""
        ...


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal day/night swing: trough at t=0+phase, peak half a period later.

    ``floor`` is the trough rate as a fraction of the peak (0.25 means
    night traffic is a quarter of the daily maximum).
    """

    period_s: float = 86400.0
    floor: float = 0.25
    phase_s: float = 0.0
    name = "diurnal"

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")

    def factor(self, t_s: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * (t_s + self.phase_s) / self.period_s))
        return self.floor + (1.0 - self.floor) * swing

    @property
    def peak_factor(self) -> float:
        return 1.0

    @property
    def mean_factor(self) -> float:
        return self.floor + (1.0 - self.floor) * 0.5


@dataclass(frozen=True)
class BurstProfile:
    """Square-wave flash crowds: ``multiplier``x for ``burst_s`` every ``every_s``."""

    every_s: float
    burst_s: float
    multiplier: float
    name = "burst"

    def __post_init__(self) -> None:
        if self.every_s <= 0 or not 0 < self.burst_s <= self.every_s:
            raise ValueError("need 0 < burst_s <= every_s")
        if self.multiplier < 1.0:
            raise ValueError("burst multiplier must be >= 1")

    def factor(self, t_s: float) -> float:
        return self.multiplier if (t_s % self.every_s) < self.burst_s else 1.0

    @property
    def peak_factor(self) -> float:
        return self.multiplier

    @property
    def mean_factor(self) -> float:
        burst = self.multiplier * self.burst_s
        return (burst + (self.every_s - self.burst_s)) / self.every_s


@dataclass(frozen=True)
class StepProfile:
    """Piecewise-constant QPS sweep schedule: ``(duration_s, factor)`` steps.

    The last step holds forever, so a truncating consumer (query count or
    duration cap) always sees a defined rate.
    """

    steps: tuple[tuple[float, float], ...]
    name = "step"

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("need at least one step")
        for duration, factor in self.steps:
            if duration <= 0 or factor < 0:
                raise ValueError("steps need positive duration, factor >= 0")
        if self.steps[-1][1] <= 0:
            raise ValueError("final (held) step factor must be positive")

    def factor(self, t_s: float) -> float:
        elapsed = 0.0
        for duration, factor in self.steps:
            elapsed += duration
            if t_s < elapsed:
                return factor
        return self.steps[-1][1]

    @property
    def peak_factor(self) -> float:
        return max(factor for _, factor in self.steps)

    @property
    def mean_factor(self) -> float:
        total = sum(duration for duration, _ in self.steps)
        weighted = sum(duration * factor for duration, factor in self.steps)
        return weighted / total


@dataclass(frozen=True)
class ModulatedPoissonProcess:
    """Non-homogeneous Poisson arrivals: ``base_rate_qps * profile.factor(t)``.

    Lewis & Shedler thinning against the peak-rate envelope; the candidate
    and acceptance draws interleave in a fixed order, so the sequence is a
    pure function of the seed.
    """

    base_rate_qps: float
    profile: RateProfile
    seed: int = 0
    name = "modulated"

    def __post_init__(self) -> None:
        if self.base_rate_qps <= 0:
            raise ValueError("base rate must be positive")
        if self.profile.peak_factor <= 0:
            raise ValueError("profile peak factor must be positive")

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        peak = self.base_rate_qps * self.profile.peak_factor
        scale = 1.0 / peak
        t = 0.0
        while True:
            t += float(rng.exponential(scale))
            if float(rng.random()) * peak <= self.base_rate_qps * self.profile.factor(t):
                yield t

    def mean_rate_qps(self) -> float:
        return self.base_rate_qps * self.profile.mean_factor


def make_arrivals(
    kind: str,
    rate_qps: float,
    seed: int = 0,
    *,
    mmpp_rate_factors: tuple[float, float] = (0.5, 2.0),
    mmpp_dwell_s: float = 5.0,
    diurnal_period_s: float = 120.0,
    burst_every_s: float = 30.0,
    burst_s: float = 5.0,
    burst_multiplier: float = 3.0,
) -> ArrivalProcess:
    """CLI/campaign factory: an arrival process averaging ``rate_qps``.

    ``mmpp`` splits the target rate over a low/high state pair scaled by
    ``mmpp_rate_factors`` (equal dwells, so the dwell-weighted mean stays
    ``rate_qps``); ``diurnal`` and ``burst`` rescale the base rate so the
    *mean* modulated rate matches the target.
    """
    if kind == "poisson":
        return PoissonProcess(rate_qps, seed=seed)
    if kind == "mmpp":
        low, high = mmpp_rate_factors
        if abs((low + high) / 2.0 - 1.0) > 1e-9:
            # Keep the requested mean: renormalize the factor pair.
            mean = (low + high) / 2.0
            low, high = low / mean, high / mean
        return MMPPProcess(
            rates_qps=(rate_qps * low, rate_qps * high),
            dwells_s=(mmpp_dwell_s, mmpp_dwell_s),
            seed=seed,
        )
    if kind == "diurnal":
        profile = DiurnalProfile(period_s=diurnal_period_s)
        return ModulatedPoissonProcess(
            rate_qps / profile.mean_factor, profile, seed=seed
        )
    if kind == "burst":
        profile = BurstProfile(
            every_s=burst_every_s, burst_s=burst_s, multiplier=burst_multiplier
        )
        return ModulatedPoissonProcess(
            rate_qps / profile.mean_factor, profile, seed=seed
        )
    raise ValueError(f"unknown arrival process: {kind!r}")
