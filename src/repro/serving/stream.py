"""Lazy open-loop query streams over a Zipf-popular distinct-query pool.

A :class:`QueryStream` pairs a seeded arrival process with a pool of
distinct term-sets (the same pools :func:`repro.workloads.traces.
build_query_pool` produces) and yields :class:`~repro.retrieval.query.
Query` objects one at a time.  Nothing is materialized: a 1M-query
campaign holds the pool (hundreds of tuples), the popularity CDF, and the
one query currently in flight through the generator — the bounded-memory
contract ``tests/test_arrivals.py`` pins with tracemalloc.

Popularity is Zipf over pool rank (``rank**-exponent``), sampled by
inverse-CDF against a cumulative vector, so draw count per query is
exactly one uniform variate regardless of pool size.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.retrieval.query import Query
from repro.serving.arrivals import ArrivalProcess
from repro.workloads.corpus import SyntheticCorpus
from repro.workloads.traces import TraceConfig, build_query_pool


class QueryStream:
    """An unmaterialized open-loop workload: arrivals x popularity x pool.

    Iteration restarts from scratch (both the arrival process and the
    popularity sampler re-seed), so the same stream object replays the
    identical query sequence every time — it can be consumed once for a
    run and again for verification.

    At least one stop condition (``max_queries`` / ``duration_s``) must be
    set; both may be, and whichever trips first ends the stream.
    """

    def __init__(
        self,
        pool: Sequence[tuple[str, ...]],
        arrivals: ArrivalProcess,
        *,
        popularity_exponent: float = 0.9,
        seed: int = 0,
        max_queries: int | None = None,
        duration_s: float | None = None,
    ) -> None:
        if not pool:
            raise ValueError("query pool must be non-empty")
        if max_queries is None and duration_s is None:
            raise ValueError("need a stop condition: max_queries or duration_s")
        if max_queries is not None and max_queries < 1:
            raise ValueError("max_queries must be positive")
        if duration_s is not None and duration_s <= 0:
            raise ValueError("duration_s must be positive")
        self.pool = [tuple(terms) for terms in pool]
        self.arrivals = arrivals
        self.popularity_exponent = popularity_exponent
        self.seed = seed
        self.max_queries = max_queries
        self.duration_s = duration_s
        ranks = np.arange(1, len(self.pool) + 1, dtype=np.float64)
        popularity = ranks**-popularity_exponent
        popularity /= popularity.sum()
        self._cdf = np.cumsum(popularity)
        self._cdf[-1] = 1.0  # guard the inverse-CDF edge against rounding

    def __iter__(self) -> Iterator[Query]:
        rng = np.random.default_rng(self.seed)
        limit = self.max_queries if self.max_queries is not None else math.inf
        horizon = self.duration_s if self.duration_s is not None else math.inf
        count = 0
        for t in self.arrivals.times():
            if count >= limit or t > horizon:
                return
            idx = int(np.searchsorted(self._cdf, float(rng.random()), side="right"))
            terms = self.pool[min(idx, len(self.pool) - 1)]
            yield Query(
                query_id=count,
                terms=terms,
                text=" ".join(terms),
                arrival_time=float(t),
            )
            count += 1

    def distinct_queries(self) -> list[Query]:
        """The pool as ad-hoc queries — the prewarm set.

        Every streamed query's terms come from the pool, so warming these
        warms every retrieval the stream can ever issue; its size is the
        pool size, not the stream length.
        """
        return [
            Query(query_id=i, terms=terms, text=" ".join(terms))
            for i, terms in enumerate(self.pool)
        ]

    def offered_rate_qps(self) -> float:
        """The arrival process's long-run offered rate."""
        return self.arrivals.mean_rate_qps()


def pool_from_corpus(
    corpus: SyntheticCorpus,
    n_distinct: int = 200,
    flavour: str = "wikipedia",
    seed: int = 11,
) -> list[tuple[str, ...]]:
    """The standard distinct-query pool (same generator the traces use)."""
    config = TraceConfig(
        flavour=flavour, n_distinct_queries=n_distinct, seed=seed
    )
    return build_query_pool(corpus, config)
