"""The open-loop serving plane: load generation, admission, campaigns.

Layer map (the executors/orchestrator/processor split):

* :mod:`repro.serving.arrivals` — seeded Poisson/MMPP/modulated arrival
  processes with diurnal, burst, and QPS-sweep profiles;
* :mod:`repro.serving.stream` — lazy :class:`QueryStream` workloads over
  Zipf-popular query pools (bounded memory at any length);
* :mod:`repro.serving.admission` — queue-depth and deadline shedding, a
  per-query deadline queue;
* :mod:`repro.serving.orchestrator` — :class:`ServingPlane`, the run
  lifecycle shared by closed-loop ``run_trace`` (its degenerate,
  bit-identical configuration) and open-loop ``SearchCluster.serve``;
* :mod:`repro.serving.queueing` — the closed M/G/1 fork-join model and
  the measured-knee locator;
* :mod:`repro.serving.campaign` — QPS sweeps producing
  throughput–latency–power curves and the knee-vs-model verdict.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    DeadlineQueue,
)
from repro.serving.arrivals import (
    ArrivalProcess,
    BurstProfile,
    DiurnalProfile,
    MMPPProcess,
    ModulatedPoissonProcess,
    PoissonProcess,
    StepProfile,
    make_arrivals,
)
from repro.serving.campaign import (
    CampaignConfig,
    CampaignResult,
    SweepPoint,
    run_campaign,
    zipf_weights,
)
from repro.serving.orchestrator import ServingPlane, ServingStats
from repro.serving.queueing import (
    ClusterQueueingModel,
    KneeEstimate,
    ShardLoadModel,
    locate_knee,
    model_from_policy,
)
from repro.serving.stream import QueryStream, pool_from_corpus

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ArrivalProcess",
    "BurstProfile",
    "CampaignConfig",
    "CampaignResult",
    "ClusterQueueingModel",
    "DeadlineQueue",
    "DiurnalProfile",
    "KneeEstimate",
    "MMPPProcess",
    "ModulatedPoissonProcess",
    "PoissonProcess",
    "QueryStream",
    "ServingPlane",
    "ServingStats",
    "ShardLoadModel",
    "StepProfile",
    "SweepPoint",
    "locate_knee",
    "make_arrivals",
    "model_from_policy",
    "pool_from_corpus",
    "run_campaign",
    "zipf_weights",
]
