"""Closed queueing model of the cluster and saturation-knee location.

Each ISN is a FIFO single server (``tests/test_queueing_theory.py`` pins
the simulator to the M/D/1 Lindley recursion), so the cluster under a
selection policy is a fork-join of M/G/1 queues: shard *i* sees a thinned
Poisson stream of rate ``lambda * p_i`` (``p_i`` = the policy's selection
probability) with service moments taken over the queries that select it
(budget-truncated — an ISN aborts at the deadline, so no job occupies the
server longer than the budget).

That closes two predictions the campaign validates against measurement:

* **saturation**: the cluster's goodput ceiling is the bottleneck shard's
  capacity, ``lambda_sat = min_i 1 / (p_i * E[S_i])`` — beyond it the
  bottleneck's utilization exceeds 1 and queues grow without bound;
* **waiting**: below saturation, shard *i*'s mean FIFO wait follows
  Pollaczek–Khinchine, ``W_i = lambda_i * E[S_i^2] / (2 (1 - rho_i))``.

The measured knee comes from the sweep's goodput curve: the last offered
rate the cluster still serves at >= ``threshold`` of the offered load,
interpolated at the crossing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.cluster.types import ClusterView, SelectionPolicy
from repro.retrieval.query import Query

if TYPE_CHECKING:
    from repro.cluster.engine import SearchCluster


@dataclass(frozen=True)
class ShardLoadModel:
    """One shard's load statistics under a policy (popularity-weighted).

    ``selection_prob`` is the probability a query selects this shard;
    the service moments are conditional on selection, at the decided
    frequency, truncated at the decided budget.
    """

    shard_id: int
    selection_prob: float
    mean_service_ms: float
    second_moment_ms2: float

    @property
    def capacity_qps(self) -> float:
        """Max sustainable cluster arrival rate before *this* shard saturates."""
        demand = self.selection_prob * self.mean_service_ms
        return 1000.0 / demand if demand > 0 else float("inf")


@dataclass(frozen=True)
class ClusterQueueingModel:
    """Fork-join of per-shard M/G/1 queues under one policy."""

    shards: tuple[ShardLoadModel, ...]
    overhead_ms: float  # coordination + two network hops, load-independent

    def utilization(self, offered_qps: float) -> tuple[float, ...]:
        """Per-shard rho at the given cluster arrival rate."""
        lam = offered_qps / 1000.0  # queries per ms
        return tuple(
            lam * s.selection_prob * s.mean_service_ms for s in self.shards
        )

    @property
    def bottleneck(self) -> ShardLoadModel:
        return min(self.shards, key=lambda s: s.capacity_qps)

    def saturation_qps(self) -> float:
        """Predicted knee: the bottleneck shard's capacity."""
        return self.bottleneck.capacity_qps

    def mean_wait_ms(self, offered_qps: float, shard_id: int) -> float:
        """Pollaczek–Khinchine mean FIFO wait at one shard (inf if rho >= 1)."""
        shard = self.shards[shard_id]
        lam = offered_qps / 1000.0 * shard.selection_prob
        rho = lam * shard.mean_service_ms
        if rho >= 1.0:
            return float("inf")
        return lam * shard.second_moment_ms2 / (2.0 * (1.0 - rho))

    def mean_latency_ms(self, offered_qps: float) -> float:
        """Lower-bound fork-join latency: the slowest shard's W + E[S].

        The true mean of a max over shards is above any single shard's
        mean, so this is a floor — good enough to show the hockey-stick
        shape and its divergence point, which is what the gate checks.
        """
        worst = max(
            self.mean_wait_ms(offered_qps, s.shard_id) + s.mean_service_ms
            for s in self.shards
            if s.selection_prob > 0
        )
        return self.overhead_ms + worst

    def snapshot(self) -> dict[str, object]:
        return {
            "overhead_ms": self.overhead_ms,
            "saturation_qps": self.saturation_qps(),
            "bottleneck_shard": self.bottleneck.shard_id,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "selection_prob": s.selection_prob,
                    "mean_service_ms": s.mean_service_ms,
                    "second_moment_ms2": s.second_moment_ms2,
                    "capacity_qps": s.capacity_qps,
                }
                for s in self.shards
            ],
        }


def model_from_policy(
    cluster: SearchCluster,
    pool: Sequence[tuple[str, ...]],
    weights: Sequence[float],
    policy: SelectionPolicy,
) -> ClusterQueueingModel:
    """Close the model by replaying the pool through ``policy`` offline.

    Every distinct query is decided against an idle cluster view; its
    popularity weight accumulates into the selected shards' selection
    probability and (budget-truncated, frequency-adjusted) service
    moments.  Retrieval here is the same memoized oracle the simulator
    uses, so the model and the measurement share one ground truth.

    The policy instance should be dedicated to this call: adaptive
    policies mutate on ``decide``/``observe``, and reusing the campaign's
    instance would let the model run perturb the measurement.
    """
    if len(weights) != len(pool):
        raise ValueError("one popularity weight per pool query")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("popularity weights must sum to a positive mass")
    n = cluster.n_shards
    view = ClusterView(
        now_ms=0.0,
        n_shards=n,
        default_freq_ghz=cluster.freq_scale.default_ghz,
        max_freq_ghz=cluster.freq_scale.max_ghz,
        queued_predicted_ms=tuple(0.0 for _ in range(n)),
    )
    prob = [0.0] * n
    m1 = [0.0] * n
    m2 = [0.0] * n
    coordination = 0.0
    prewarm = getattr(policy, "prewarm", None)
    queries = [
        Query(query_id=i, terms=terms, text=" ".join(terms))
        for i, terms in enumerate(pool)
    ]
    if prewarm is not None:
        prewarm(queries)
    for query, weight in zip(queries, weights):
        w = float(weight) / total_weight
        decision = policy.decide(query, view)
        coordination += w * decision.coordination_delay_ms
        for sid in decision.shard_ids:
            freq = decision.frequency_overrides.get(
                sid, cluster.freq_scale.default_ghz
            )
            service = cluster.service_time_ms(query, sid, freq)
            if decision.time_budget_ms is not None:
                service = min(service, decision.time_budget_ms)
            prob[sid] += w
            m1[sid] += w * service
            m2[sid] += w * service * service
    shards = tuple(
        ShardLoadModel(
            shard_id=sid,
            selection_prob=prob[sid],
            mean_service_ms=m1[sid] / prob[sid] if prob[sid] > 0 else 0.0,
            second_moment_ms2=m2[sid] / prob[sid] if prob[sid] > 0 else 0.0,
        )
        for sid in range(n)
    )
    overhead = coordination + 2.0 * cluster.network.delay_ms()
    return ClusterQueueingModel(shards=shards, overhead_ms=overhead)


@dataclass(frozen=True)
class KneeEstimate:
    """Where the measured goodput curve stops tracking the offered load."""

    knee_qps: float
    threshold: float
    saturated: bool  # the sweep actually crossed the threshold

    def snapshot(self) -> dict[str, object]:
        return {
            "knee_qps": self.knee_qps,
            "threshold": self.threshold,
            "saturated": self.saturated,
        }


def locate_knee(
    offered_qps: Sequence[float],
    goodput_qps: Sequence[float],
    threshold: float = 0.95,
) -> KneeEstimate:
    """The goodput knee: last offered rate served at >= ``threshold``.

    Points must be sorted by offered rate.  The knee interpolates the
    goodput/offered ratio linearly at the threshold crossing; if the
    sweep never crosses, the top of the grid is returned un-saturated
    (callers should widen the grid), and if even the first point is
    below threshold, that point is returned saturated.
    """
    if len(offered_qps) != len(goodput_qps) or not offered_qps:
        raise ValueError("need matching, non-empty offered/goodput vectors")
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    ratios = [g / o for g, o in zip(goodput_qps, offered_qps)]
    below = [i for i, r in enumerate(ratios) if r < threshold]
    if not below:
        return KneeEstimate(
            knee_qps=float(offered_qps[-1]), threshold=threshold, saturated=False
        )
    first_below = below[0]
    if first_below == 0:
        return KneeEstimate(
            knee_qps=float(offered_qps[0]), threshold=threshold, saturated=True
        )
    i, j = first_below - 1, first_below
    ri, rj = ratios[i], ratios[j]
    # Linear interpolation of the ratio curve at the threshold crossing.
    frac = (ri - threshold) / (ri - rj) if ri > rj else 0.0
    knee = offered_qps[i] + frac * (offered_qps[j] - offered_qps[i])
    return KneeEstimate(knee_qps=float(knee), threshold=threshold, saturated=True)
