"""The serving orchestrator: one engine for closed-loop and open-loop runs.

This is ``SearchCluster.run_trace``'s event-loop body refactored into a
reusable plane, split the way a production engine is layered:

* **executors** (:mod:`repro.retrieval.executor`) fan retrieval work over
  shards — serial, thread, or attached worker processes;
* **orchestrator** (this module) owns the run lifecycle: prewarm, build
  the ISN groups and aggregator, schedule arrivals, drive the event loop,
  and account the results;
* **processor** (:mod:`repro.cluster.aggregator`) executes one query's
  control flow — policy, dispatch, merge, budget enforcement.

Two arrival modes share everything downstream:

* a :class:`~repro.retrieval.query.QueryTrace` replays **closed-loop**:
  every arrival is scheduled up front, in trace order, exactly as the
  pre-refactor ``run_trace`` did — bit-identical to it by construction
  (pinned by ``tests/test_serving_plane.py``);
* any other iterable of queries (a :class:`~repro.serving.stream.
  QueryStream`) streams **open-loop**: arrival *i+1* is pulled from the
  iterator only when arrival *i* fires, so the event heap holds at most
  one future arrival and a million-query campaign runs under bounded
  memory.  Pair with ``retain_records=False`` to route records into a
  :class:`ServingStats` streaming sink instead of the per-query list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cluster.aggregator import Aggregator
from repro.cluster.events import Simulator
from repro.cluster.faults import FaultSchedule
from repro.cluster.governor import FrequencyGovernor
from repro.cluster.isn import ISNServer
from repro.cluster.power import EnergyMeter, package_report
from repro.cluster.replicas import ReplicationConfig, make_selector
from repro.cluster.sleep import SleepPolicy
from repro.cluster.types import QueryRecord, SelectionPolicy
from repro.cluster.cache import ResultCache
from repro.retrieval.executor import prewarm_searchers
from repro.retrieval.query import Query, QueryTrace
from repro.retrieval.searcher import StrategySelector
from repro.serving.admission import AdmissionController
from repro.telemetry import NO_TELEMETRY, Telemetry
from repro.telemetry.metrics import StreamingHistogram

if TYPE_CHECKING:
    from repro.cluster.engine import RunResult, SearchCluster


class ServingStats:
    """Streaming per-run aggregates — the O(1)-memory record sink.

    Latency percentiles come from the PR 3 streaming histogram (log
    buckets + P²); everything else is plain counters.  ``observe`` is the
    aggregator's ``record_sink``: it sees every committed record once and
    retains none of them.
    """

    def __init__(self) -> None:
        self.latency = StreamingHistogram("serving.latency_ms")
        self.completed = 0
        self.shed = 0
        self.from_cache = 0
        self.selected_shards = 0
        self.counted_shards = 0
        self.latency_sum_ms = 0.0
        self.max_latency_ms = 0.0
        self.last_arrival_ms = 0.0

    def observe(self, record: QueryRecord) -> None:
        if record.arrival_ms > self.last_arrival_ms:
            self.last_arrival_ms = record.arrival_ms
        if record.shed:
            self.shed += 1
            return
        self.completed += 1
        if record.from_cache:
            self.from_cache += 1
        latency = record.latency_ms
        self.latency.observe(latency)
        self.latency_sum_ms += latency
        if latency > self.max_latency_ms:
            self.max_latency_ms = latency
        self.selected_shards += record.n_selected
        self.counted_shards += record.n_counted

    @property
    def offered(self) -> int:
        return self.completed + self.shed

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_sum_ms / self.completed if self.completed else 0.0

    def percentile_ms(self, p: float) -> float:
        return self.latency.percentile(p)

    def snapshot(self) -> dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "from_cache": self.from_cache,
            "last_arrival_ms": self.last_arrival_ms,
            "selected_shards": self.selected_shards,
            "counted_shards": self.counted_shards,
            "mean_latency_ms": self.mean_latency_ms,
            "max_latency_ms": self.max_latency_ms,
            "p50_ms": self.percentile_ms(50),
            "p95_ms": self.percentile_ms(95),
            "p99_ms": self.percentile_ms(99),
        }


class ServingPlane:
    """Runs query sources against a :class:`SearchCluster`'s hardware."""

    def __init__(self, cluster: SearchCluster) -> None:
        self.cluster = cluster

    def run(
        self,
        source: QueryTrace | Iterable[Query],
        policy: SelectionPolicy,
        *,
        governor: FrequencyGovernor | None = None,
        cache: ResultCache | None = None,
        faults: FaultSchedule | None = None,
        response_timeout_ms: float | None = None,
        sleep: SleepPolicy | None = None,
        prewarm: bool | None = None,
        telemetry: Telemetry | None = None,
        replication: ReplicationConfig | None = None,
        admission: AdmissionController | None = None,
        retain_records: bool = True,
        selector: StrategySelector | None = None,
        decode_cache_size: int | None = None,
    ) -> RunResult:
        """One run: ``source`` arrivals through ``policy`` on the cluster.

        A :class:`QueryTrace` replays closed-loop (all arrivals scheduled
        up front — the degenerate serving-plane configuration
        ``run_trace`` delegates to); any other query iterable streams
        open-loop.  ``admission`` turns on load shedding;
        ``retain_records=False`` swaps the per-query record list for a
        :class:`ServingStats` sink (``RunResult.serving``) so memory
        stays O(pool), not O(queries).  ``selector`` is handed to the
        aggregator for per-(query, shard) adaptive traversal dispatch
        (and to the retrieval prewarm, which warms the keys it will
        choose); ``decode_cache_size`` re-budgets the compressed shards'
        decode LRUs before any retrieval runs.  All other parameters
        keep their ``run_trace`` meaning.
        """
        from repro.cluster.engine import RunResult  # runtime import: no cycle

        cluster = self.cluster
        if decode_cache_size is not None:
            cluster.set_decode_cache(decode_cache_size)
        closed_loop = isinstance(source, QueryTrace)
        if closed_loop:
            prewarm_queries: list[Query] | None = source.queries
        else:
            distinct = getattr(source, "distinct_queries", None)
            prewarm_queries = distinct() if distinct is not None else None
        if prewarm is None:
            # Remote executors only move retrieval off-process during the
            # prewarm fan-out (replay hits the ISNs' local memos), so they
            # always prewarm; threads prewarm iff they can pipeline.
            prewarm_retrieval = (
                cluster.executor.workers > 1 or cluster.executor.remote
            )
            prewarm_policy = True
        else:
            prewarm_retrieval = prewarm_policy = prewarm
        telemetry = telemetry or NO_TELEMETRY
        tracer = telemetry.tracer if telemetry.enabled else None
        sim = Simulator(telemetry)
        if tracer is not None:
            telemetry.bind_clock(lambda: sim.now)
        policy_bind = getattr(policy, "bind_telemetry", None)
        if policy_bind is not None:
            policy_bind(telemetry)
        cluster.executor.bind_telemetry(telemetry)
        cluster.searcher.bind_telemetry(telemetry)
        cache_before = cluster._searcher_totals()
        decode_before = cluster._decode_totals()
        result_cache_before = (
            (cache.stats.hits, cache.stats.misses) if cache is not None else (0, 0)
        )
        try:
            if prewarm_queries is not None and selector is not None:
                # Batch the selector's own inference (one fused pass over
                # the whole workload) before retrieval prewarm consults it
                # per (query, shard).  Optional hook, like the policy's.
                selector_prewarm = getattr(selector, "prewarm", None)
                if selector_prewarm is not None:
                    if tracer is None:
                        selector_prewarm(prewarm_queries)
                    else:
                        with tracer.span(
                            "cluster.prewarm_selector", track="cluster",
                            n_queries=len(prewarm_queries),
                        ):
                            selector_prewarm(prewarm_queries)
            if prewarm_retrieval and prewarm_queries is not None:
                if tracer is None:
                    self._prewarm(prewarm_queries, selector)
                else:
                    with tracer.span(
                        "cluster.prewarm_retrieval", track="cluster",
                        n_queries=len(prewarm_queries),
                    ):
                        self._prewarm(prewarm_queries, selector)
            if prewarm_policy and prewarm_queries is not None:
                # Optional hook: minimal duck-typed policies may omit it.
                policy_prewarm = getattr(policy, "prewarm", None)
                if policy_prewarm is not None:
                    if tracer is None:
                        policy_prewarm(prewarm_queries)
                    else:
                        with tracer.span(
                            "cluster.prewarm_policy", track="cluster",
                            n_queries=len(prewarm_queries),
                        ):
                            policy_prewarm(prewarm_queries)
            repl = replication or ReplicationConfig()
            # Meters stay a flat list (shard-major: shard i's replica r is
            # meters[i * R + r]) so package_report sums the whole cluster.
            meters = [
                EnergyMeter(cluster.power_model)
                for _ in range(cluster.n_shards * repl.n_replicas)
            ]
            groups = [
                [
                    ISNServer(
                        shard_id=i,
                        searcher=cluster.searcher.searchers[i],
                        cost_model=cluster.cost_model,
                        freq_scale=cluster.freq_scale,
                        meter=meters[i * repl.n_replicas + r],
                        governor=governor,
                        faults=faults,
                        sleep=sleep,
                        telemetry=telemetry,
                        replica_id=r,
                    )
                    for r in range(repl.n_replicas)
                ]
                for i in range(cluster.n_shards)
            ]
            stats = None if retain_records else ServingStats()
            aggregator = Aggregator(
                isns=groups, policy=policy, network=cluster.network, sim=sim,
                k=cluster.k, cache=cache,
                response_timeout_ms=response_timeout_ms,
                telemetry=telemetry, replication=repl,
                selector=make_selector(repl),
                admission=admission,
                record_sink=stats.observe if stats is not None else None,
                strategy_selector=selector,
            )
            last_arrival_ms = 0.0
            if closed_loop:
                # Upfront scheduling, in trace order: the pre-refactor
                # run_trace statement-for-statement (bit-identity anchor).
                for query in source:
                    sim.schedule_at(
                        query.arrival_time * 1000.0,
                        lambda q=query: aggregator.on_query(q),
                    )
            else:
                # Open loop: pull arrival i+1 only when arrival i fires,
                # so the heap never holds more than one future arrival.
                stream = iter(source)
                pump_state = {"last_ms": 0.0}

                def schedule_next() -> None:
                    query = next(stream, None)
                    if query is None:
                        return
                    at_ms = query.arrival_time * 1000.0
                    pump_state["last_ms"] = at_ms

                    def fire(q: Query = query) -> None:
                        aggregator.on_query(q)
                        schedule_next()

                    sim.schedule_at(at_ms, fire)

                schedule_next()
            if tracer is None:
                sim.run()
            else:
                with tracer.span(
                    "cluster.replay", track="cluster",
                    policy=policy.name,
                    n_queries=len(source.queries) if closed_loop else -1,
                ):
                    sim.run()
            if not closed_loop:
                last_arrival_ms = pump_state["last_ms"]
            duration_ms = (
                source.duration * 1000.0 if closed_loop else last_arrival_ms
            )
            elapsed = max(sim.now, duration_ms, 1e-9)
            for group in groups:
                for isn in group:
                    isn.finalize_sleep(elapsed)
        finally:
            if tracer is not None:
                telemetry.unbind_clock()
            if policy_bind is not None:
                policy_bind(NO_TELEMETRY)
            cluster.executor.bind_telemetry(NO_TELEMETRY)
            cluster.searcher.bind_telemetry(NO_TELEMETRY)
        report = package_report(meters, cluster.power_model, elapsed)
        records = sorted(aggregator.records, key=lambda r: r.arrival_ms)
        hits_after, comps_after = cluster._searcher_totals()
        decode_after = cluster._decode_totals()
        result_cache_after = (
            (cache.stats.hits, cache.stats.misses) if cache is not None else (0, 0)
        )
        n_queries = len(records) if stats is None else stats.offered
        if tracer is not None:
            metrics = telemetry.metrics
            metrics.gauge("run.events_processed").set(sim.events_processed)
            metrics.gauge("run.elapsed_sim_ms").set(elapsed)
            metrics.gauge("run.queries").set(n_queries)
            metrics.gauge("run.decode_hits").set(decode_after[0] - decode_before[0])
            metrics.gauge("run.decode_misses").set(decode_after[1] - decode_before[1])
            metrics.gauge("run.decode_evictions").set(
                decode_after[2] - decode_before[2]
            )
            metrics.gauge("run.result_cache_hits").set(
                result_cache_after[0] - result_cache_before[0]
            )
            metrics.gauge("run.result_cache_misses").set(
                result_cache_after[1] - result_cache_before[1]
            )
            metrics.gauge("run.admitted_queries").set(aggregator.admitted)
            metrics.gauge("run.shed_queries").set(
                aggregator.shed_queue_depth + aggregator.shed_deadline
            )
        return RunResult(
            policy_name=policy.name,
            records=records,
            power=report,
            elapsed_ms=elapsed,
            cache_stats=cache.stats if cache is not None else None,
            events_processed=sim.events_processed,
            clamped_schedules=sim.clamped_schedules,
            searcher_hits=hits_after - cache_before[0],
            searcher_computations=comps_after - cache_before[1],
            hedges_issued=aggregator.hedges_issued,
            hedge_wins=aggregator.hedge_wins,
            cancels_sent=aggregator.cancels_sent,
            cancelled_in_queue=aggregator.cancelled_in_queue,
            duplicates_dropped=aggregator.duplicates_dropped,
            total_service_ms=aggregator.total_service_ms,
            counted_service_ms=aggregator.counted_service_ms,
            decode_hits=decode_after[0] - decode_before[0],
            decode_misses=decode_after[1] - decode_before[1],
            decode_evictions=decode_after[2] - decode_before[2],
            strategy_choices=dict(aggregator.strategy_choices),
            result_cache_hits=result_cache_after[0] - result_cache_before[0],
            result_cache_misses=result_cache_after[1] - result_cache_before[1],
            offered_queries=aggregator.queries_seen,
            admitted_queries=aggregator.admitted,
            shed_queries=aggregator.shed_queue_depth + aggregator.shed_deadline,
            shed_queue_depth=aggregator.shed_queue_depth,
            shed_deadline=aggregator.shed_deadline,
            serving=stats,
        )

    def _prewarm(
        self, queries: list[Query], selector: StrategySelector | None = None
    ) -> int:
        """Pipeline all uncached (shard, query) retrievals (deduplicated)."""
        return prewarm_searchers(
            self.cluster.searcher.searchers, queries, self.cluster.executor, selector
        )
