"""Saturation campaigns: sweep offered QPS, measure the knee, check the model.

A campaign drives one cluster + policy through a grid of offered arrival
rates, open-loop, collecting a throughput–latency–power point per rate
from the streaming sinks (no per-query retention, so the grid can total
millions of queries).  The measured goodput knee is then compared to the
closed queueing model's predicted saturation (:mod:`repro.serving.
queueing`) — the agreement gate CI enforces on ``BENCH_serving.json``.

Each sweep point gets fresh arrival/popularity seeds derived from the
campaign seed, a fresh policy instance (adaptive policies must not leak
state across rates), and a fresh admission controller, so any single
point replays bit-identically on its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np
from numpy.typing import NDArray

from repro.cluster.cache import ResultCache
from repro.cluster.types import SelectionPolicy
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.arrivals import make_arrivals
from repro.serving.queueing import (
    ClusterQueueingModel,
    KneeEstimate,
    locate_knee,
    model_from_policy,
)
from repro.serving.stream import QueryStream
from repro.telemetry import Telemetry

if TYPE_CHECKING:
    from repro.cluster.engine import SearchCluster

ARRIVAL_KINDS = ("poisson", "mmpp", "diurnal", "burst")


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one saturation campaign.

    ``qps_grid`` pins the sweep explicitly; when empty, the grid is
    ``grid_fractions`` of the queueing model's predicted saturation, so
    the sweep always straddles the knee.  ``admission`` bounds the
    in-flight population above saturation (open-loop load would otherwise
    grow the ISN queues — and simulator memory — without bound);
    ``None`` disables shedding entirely.
    """

    qps_grid: tuple[float, ...] = ()
    grid_fractions: tuple[float, ...] = (0.3, 0.5, 0.7, 0.85, 1.0, 1.2, 1.5)
    queries_per_point: int = 4000
    arrival: str = "poisson"
    popularity_exponent: float = 0.9
    seed: int = 0
    goodput_threshold: float = 0.95
    knee_rel_tolerance: float = 0.25
    admission: AdmissionConfig | None = field(
        default_factory=lambda: AdmissionConfig(max_in_flight=512)
    )
    cache_capacity: int = 0  # aggregator result cache; 0 = off (knee gate assumes off)
    mmpp_rate_factors: tuple[float, float] = (0.5, 2.0)
    mmpp_dwell_s: float = 5.0

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"arrival must be one of {ARRIVAL_KINDS}")
        if self.queries_per_point < 1:
            raise ValueError("queries_per_point must be positive")
        if not self.qps_grid and not self.grid_fractions:
            raise ValueError("need a qps grid or grid fractions")
        if any(q <= 0 for q in self.qps_grid) or any(
            f <= 0 for f in self.grid_fractions
        ):
            raise ValueError("grid rates/fractions must be positive")
        if not 0.0 < self.goodput_threshold <= 1.0:
            raise ValueError("goodput threshold must be in (0, 1]")
        if self.knee_rel_tolerance <= 0:
            raise ValueError("knee tolerance must be positive")
        if self.cache_capacity < 0:
            raise ValueError("cache capacity must be non-negative")


@dataclass(frozen=True)
class SweepPoint:
    """One measured throughput–latency–power point."""

    offered_qps: float
    realized_qps: float  # offered_queries / measured arrival window
    offered_queries: int
    completed: int
    shed: int
    from_cache: int
    elapsed_ms: float
    goodput_qps: float
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_latency_ms: float
    average_power_w: float
    max_core_utilization: float
    predicted_mean_latency_ms: float
    result_cache_hit_rate: float

    @property
    def goodput_ratio(self) -> float:
        """Goodput over the *realized* offered rate.

        Ratioing against the nominal grid rate would fold the Poisson
        realization of a finite window (±1/sqrt(n)) into the knee; the
        realized rate cancels it, leaving only real saturation signals —
        shed queries and post-window drain time.
        """
        return self.goodput_qps / self.realized_qps if self.realized_qps else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "offered_qps": self.offered_qps,
            "realized_qps": self.realized_qps,
            "offered_queries": self.offered_queries,
            "completed": self.completed,
            "shed": self.shed,
            "from_cache": self.from_cache,
            "elapsed_ms": self.elapsed_ms,
            "goodput_qps": self.goodput_qps,
            "goodput_ratio": self.goodput_ratio,
            "mean_latency_ms": self.mean_latency_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_latency_ms": self.max_latency_ms,
            "average_power_w": self.average_power_w,
            "max_core_utilization": self.max_core_utilization,
            "predicted_mean_latency_ms": self.predicted_mean_latency_ms,
            "result_cache_hit_rate": self.result_cache_hit_rate,
        }


@dataclass(frozen=True)
class CampaignResult:
    """A full sweep plus the model-vs-measurement verdict."""

    policy_name: str
    arrival: str
    seed: int
    points: tuple[SweepPoint, ...]
    model: ClusterQueueingModel
    knee: KneeEstimate
    predicted_knee_qps: float
    total_queries: int

    @property
    def knee_ratio(self) -> float:
        """Measured knee over predicted saturation (1.0 = exact agreement)."""
        if self.predicted_knee_qps <= 0:
            return float("inf")
        return self.knee.knee_qps / self.predicted_knee_qps

    def knee_within(self, rel_tolerance: float) -> bool:
        """The acceptance gate: saturated sweep, knee near the prediction."""
        return self.knee.saturated and abs(self.knee_ratio - 1.0) <= rel_tolerance

    def snapshot(self) -> dict[str, object]:
        return {
            "policy": self.policy_name,
            "arrival": self.arrival,
            "seed": self.seed,
            "total_queries": self.total_queries,
            "predicted_knee_qps": self.predicted_knee_qps,
            "measured_knee_qps": self.knee.knee_qps,
            "knee_ratio": self.knee_ratio,
            "knee": self.knee.snapshot(),
            "model": self.model.snapshot(),
            "points": [point.snapshot() for point in self.points],
        }


def zipf_weights(n: int, exponent: float) -> NDArray[np.float64]:
    """The pool's popularity mass (rank-Zipf, same law the streams sample)."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def run_campaign(
    cluster: SearchCluster,
    policy_factory: Callable[[], SelectionPolicy],
    pool: Sequence[tuple[str, ...]],
    config: CampaignConfig | None = None,
    telemetry: Telemetry | None = None,
    on_point: Callable[[SweepPoint], None] | None = None,
    workers: int | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Sweep offered QPS over ``pool`` and locate the saturation knee.

    ``policy_factory`` must return a *fresh* policy per call — one is
    consumed to close the queueing model, then one per sweep point.
    ``on_point`` (when given) observes each point as it lands, for
    progress reporting.  ``workers``/``backend`` select the shard
    fan-out executor exactly as in :meth:`SearchCluster.run_trace`; the
    pooled executor is reused across every sweep point.
    """
    config = config or CampaignConfig()
    weights = zipf_weights(len(pool), config.popularity_exponent)
    model_policy = policy_factory()
    model = model_from_policy(cluster, pool, weights.tolist(), model_policy)
    predicted = model.saturation_qps()
    if config.qps_grid:
        grid: tuple[float, ...] = tuple(sorted(config.qps_grid))
    else:
        grid = tuple(fraction * predicted for fraction in sorted(config.grid_fractions))
    points: list[SweepPoint] = []
    for index, offered in enumerate(grid):
        arrivals = make_arrivals(
            config.arrival,
            offered,
            seed=config.seed + 100 * index,
            mmpp_rate_factors=config.mmpp_rate_factors,
            mmpp_dwell_s=config.mmpp_dwell_s,
        )
        stream = QueryStream(
            pool,
            arrivals,
            popularity_exponent=config.popularity_exponent,
            seed=config.seed + 100 * index + 50,
            max_queries=config.queries_per_point,
        )
        admission = (
            AdmissionController(config.admission)
            if config.admission is not None
            else None
        )
        cache = (
            ResultCache(config.cache_capacity) if config.cache_capacity else None
        )
        run = cluster.serve(
            stream,
            policy_factory(),
            admission=admission,
            retain_records=False,
            cache=cache,
            telemetry=telemetry,
            workers=workers,
            backend=backend,
        )
        stats = run.serving
        assert stats is not None  # retain_records=False guarantees the sink
        elapsed_s = run.elapsed_ms / 1000.0
        window_s = stats.last_arrival_ms / 1000.0
        utilization = run.power.per_core_utilization
        point = SweepPoint(
            offered_qps=offered,
            realized_qps=run.offered_queries / window_s if window_s > 0 else 0.0,
            offered_queries=run.offered_queries,
            completed=stats.completed,
            shed=stats.shed,
            from_cache=stats.from_cache,
            elapsed_ms=run.elapsed_ms,
            goodput_qps=stats.completed / elapsed_s,
            mean_latency_ms=stats.mean_latency_ms,
            p50_ms=stats.percentile_ms(50),
            p95_ms=stats.percentile_ms(95),
            p99_ms=stats.percentile_ms(99),
            max_latency_ms=stats.max_latency_ms,
            average_power_w=run.power.average_power_w,
            max_core_utilization=max(utilization, default=0.0),
            predicted_mean_latency_ms=model.mean_latency_ms(offered),
            result_cache_hit_rate=run.result_cache_hit_rate,
        )
        points.append(point)
        if on_point is not None:
            on_point(point)
    # Knee on the realized-rate axis: each point's x is the arrival rate
    # the cluster actually saw, so the crossing compares like with like
    # against the model's rate axis.
    knee = locate_knee(
        [p.realized_qps for p in points],
        [p.goodput_qps for p in points],
        threshold=config.goodput_threshold,
    )
    return CampaignResult(
        policy_name=model_policy.name,
        arrival=config.arrival,
        seed=config.seed,
        points=tuple(points),
        model=model,
        knee=knee,
        predicted_knee_qps=predicted,
        total_queries=sum(p.offered_queries for p in points),
    )
