"""Admission control for the serving plane: shed before you collapse.

Open-loop load does not slow down when the cluster saturates — the
arrival process keeps offering queries, the ISN queues grow without
bound, and every query's latency diverges.  The admission controller
sits at the aggregator's front door (after the result cache, before the
policy) and rejects queries that cannot be served acceptably, keeping
the in-flight population — and therefore simulator memory and served
latency — bounded.

Two shedding criteria, both optional:

* **queue depth** — reject when the in-flight query population or the
  worst ISN backlog exceeds a cap (classic head-of-line protection);
* **deadline** — reject when the predicted completion time (worst ISN
  backlog + an EWMA of observed service times) would bust the SLO; the
  estimate adapts as the run progresses.

The :class:`DeadlineQueue` tracks every admitted query's SLO deadline in
a lazy min-heap; its depth is the in-flight population the queue-depth
criterion gates on, and its expired count surfaces how many admitted
queries nevertheless outlived their SLO.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.cluster.types import ClusterView, QueryRecord
from repro.retrieval.query import Query


@dataclass(frozen=True)
class AdmissionConfig:
    """Thresholds for the admission controller (``None`` disables a rule).

    ``reject_ms`` is the fast-reject reply latency a shed query observes
    (one aggregator bounce, no ISN work).  ``service_estimate_ms`` seeds
    the deadline rule's service-time estimate before any query finishes;
    ``ewma_alpha`` is the update weight for observed services.
    """

    max_in_flight: int | None = None
    max_queued_ms: float | None = None
    deadline_slo_ms: float | None = None
    reject_ms: float = 0.05
    service_estimate_ms: float = 5.0
    ewma_alpha: float = 0.05

    def __post_init__(self) -> None:
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be positive")
        if self.max_queued_ms is not None and self.max_queued_ms <= 0:
            raise ValueError("max_queued_ms must be positive")
        if self.deadline_slo_ms is not None and self.deadline_slo_ms <= 0:
            raise ValueError("deadline_slo_ms must be positive")
        if self.reject_ms < 0:
            raise ValueError("reject_ms must be non-negative")
        if self.service_estimate_ms <= 0:
            raise ValueError("service_estimate_ms must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")

    def enabled_rules(self) -> tuple[str, ...]:
        rules = []
        if self.max_in_flight is not None or self.max_queued_ms is not None:
            rules.append("queue_depth")
        if self.deadline_slo_ms is not None:
            rules.append("deadline")
        return tuple(rules)


class DeadlineQueue:
    """Min-heap of per-query SLO deadlines with lazy removal.

    ``push`` registers an admitted query; ``finalize`` retires it (heap
    entries are discarded lazily on the next prune, so both are O(log n)
    amortized).  ``expire`` counts — without removing — admitted queries
    whose deadline has passed, the "admitted but missed SLO" signal.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int]] = []
        self._live: set[int] = set()
        self.expired = 0

    def push(self, query_id: int, deadline_ms: float) -> None:
        self._live.add(query_id)
        heapq.heappush(self._heap, (deadline_ms, query_id))

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._live

    def finalize(self, query_id: int, now_ms: float) -> None:
        if query_id not in self._live:
            return  # cache hits / shed queries were never pushed
        self._live.discard(query_id)
        self._prune()

    def _prune(self) -> None:
        heap = self._heap
        while heap and heap[0][1] not in self._live:
            deadline, _ = heapq.heappop(heap)

    @property
    def depth(self) -> int:
        """In-flight admitted queries (push'd, not yet finalized)."""
        return len(self._live)

    def earliest_deadline_ms(self) -> float | None:
        self._prune()
        return self._heap[0][0] if self._heap else None

    def count_expired(self, now_ms: float) -> int:
        """Live queries already past their deadline (SLO misses in flight)."""
        self._prune()
        return sum(
            1
            for deadline, qid in self._heap
            if qid in self._live and deadline < now_ms
        )


class AdmissionController:
    """Stateful gate the aggregator consults for every cache-missing query.

    ``admit`` returns ``None`` to accept or a shed reason
    (``"queue_depth"`` / ``"deadline"``); the aggregator answers shed
    queries empty after ``config.reject_ms`` and never shows them to the
    policy.  ``on_admit``/``on_finalize`` bracket each accepted query so
    the controller tracks the in-flight population and adapts its
    service-time estimate from finished queries.
    """

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.deadlines = DeadlineQueue()
        self.admitted = 0
        self.shed = 0
        self._service_ewma_ms = self.config.service_estimate_ms

    @property
    def reject_ms(self) -> float:
        return self.config.reject_ms

    @property
    def in_flight(self) -> int:
        return self.deadlines.depth

    @property
    def service_estimate_ms(self) -> float:
        return self._service_ewma_ms

    def admit(self, query: Query, view: ClusterView, now_ms: float) -> str | None:
        """``None`` to accept; otherwise the shed reason."""
        cfg = self.config
        if cfg.max_in_flight is not None and self.in_flight >= cfg.max_in_flight:
            self.shed += 1
            return "queue_depth"
        worst_backlog = max(view.queued_predicted_ms, default=0.0)
        if cfg.max_queued_ms is not None and worst_backlog > cfg.max_queued_ms:
            self.shed += 1
            return "queue_depth"
        if cfg.deadline_slo_ms is not None:
            eta_ms = worst_backlog + self._service_ewma_ms
            if eta_ms > cfg.deadline_slo_ms:
                self.shed += 1
                return "deadline"
        return None

    def on_admit(self, query_id: int, now_ms: float) -> None:
        self.admitted += 1
        slo = self.config.deadline_slo_ms
        deadline = now_ms + slo if slo is not None else math.inf
        self.deadlines.push(query_id, deadline)

    def on_finalize(self, record: QueryRecord) -> None:
        finish_ms = record.arrival_ms + record.latency_ms
        slo = self.config.deadline_slo_ms
        if (
            slo is not None
            and record.query.query_id in self.deadlines
            and record.latency_ms > slo
        ):
            self.deadlines.expired += 1
        self.deadlines.finalize(record.query.query_id, finish_ms)
        # Adapt the service estimate from the critical-path ISN service of
        # merged responses (queueing excluded — feeding latency back in
        # would double-count the very backlog the rule subtracts).
        counted = [o.service_ms for o in record.outcomes if o.counted]
        if counted:
            alpha = self.config.ewma_alpha
            self._service_ewma_ms += alpha * (max(counted) - self._service_ewma_ms)
