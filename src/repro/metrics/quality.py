"""Search-quality metrics and exhaustive ground truth.

P@K follows the paper's usage: the fraction of the exhaustive global top-K
that a policy's response actually returned.  Exhaustive search scores every
document, so its P@K is 1.0 by construction — the same normalization the
paper uses ("since every document ... will be retrieved in exhaustive
search, its P@10 search quality is always 1").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.retrieval.query import Query
from repro.retrieval.searcher import DistributedSearcher


def precision_at_k(returned: list[int], truth: list[int], k: int) -> float:
    """|top-k of returned ∩ top-k of truth| / k."""
    if k < 1:
        raise ValueError("k must be positive")
    if not truth:
        return 1.0  # nothing to find: any response is vacuously perfect
    truth_set = set(truth[:k])
    hit = sum(1 for doc_id in returned[:k] if doc_id in truth_set)
    return hit / min(k, len(truth_set)) if len(truth_set) < k else hit / k


@dataclass
class QueryTruth:
    """Exhaustive ground truth for one distinct query."""

    top_k: list[int]
    contributions_k: dict[int, int]
    contributions_half_k: dict[int, int]

    def contributing_shards(self) -> int:
        return sum(1 for count in self.contributions_k.values() if count > 0)


@dataclass
class GroundTruth:
    """Exhaustive top-K results and per-shard contributions, per query.

    Keyed by the query's term tuple so repeated trace occurrences of the
    same query share one entry.
    """

    k: int
    _by_terms: dict[tuple[str, ...], QueryTruth] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        searcher: DistributedSearcher,
        queries: list[Query],
        k: int | None = None,
    ) -> "GroundTruth":
        k = k or searcher.k
        truth = cls(k=k)
        for query in queries:
            truth.ensure(searcher, query)
        return truth

    def ensure(self, searcher: DistributedSearcher, query: Query) -> QueryTruth:
        entry = self._by_terms.get(query.terms)
        if entry is None:
            merged = searcher.search(query)
            entry = QueryTruth(
                top_k=merged.doc_ids()[: self.k],
                contributions_k=searcher.shard_contributions(query, self.k),
                contributions_half_k=searcher.shard_contributions(
                    query, max(self.k // 2, 1)
                ),
            )
            self._by_terms[query.terms] = entry
        return entry

    def get(self, query: Query) -> QueryTruth:
        try:
            return self._by_terms[query.terms]
        except KeyError:
            raise KeyError(
                f"no ground truth for query {query.terms!r}; call ensure() first"
            ) from None

    def __contains__(self, query: Query) -> bool:
        return query.terms in self._by_terms

    def __len__(self) -> int:
        return len(self._by_terms)

    def precision(self, query: Query, returned: list[int]) -> float:
        return precision_at_k(returned, self.get(query).top_k, self.k)
