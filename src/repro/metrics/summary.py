"""Policy-level run summaries — the numbers every evaluation figure reports.

``summarize_run`` reduces one simulated trace run to the metric vector the
paper plots across Figs. 10-15: average/tail latency, average P@K, active
ISNs, C_RES and package power.  ``comparison_table`` renders a set of
summaries as the aligned text table the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import RunResult
from repro.metrics.latency import mean, percentile
from repro.metrics.quality import GroundTruth


@dataclass(frozen=True)
class PolicySummary:
    """One policy's aggregate outcome on one trace."""

    policy: str
    trace: str
    n_queries: int
    avg_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    avg_precision: float
    avg_selected_isns: float
    avg_counted_isns: float
    avg_docs_searched: float
    avg_power_w: float
    # Run-accounting extras (defaulted: summaries predating them load fine).
    events_processed: int = 0
    searcher_hits: int = 0
    searcher_computations: int = 0
    result_cache_hit_rate: float | None = None

    def row(self) -> dict[str, float | str | int]:
        return {
            "policy": self.policy,
            "queries": self.n_queries,
            "avg_ms": round(self.avg_latency_ms, 2),
            "p95_ms": round(self.p95_latency_ms, 2),
            "P@K": round(self.avg_precision, 3),
            "ISNs": round(self.avg_selected_isns, 2),
            "C_RES": round(self.avg_docs_searched, 1),
            "power_W": round(self.avg_power_w, 2),
            "events": self.events_processed,
        }


def summarize_run(
    run: RunResult, truth: GroundTruth, trace_name: str = ""
) -> PolicySummary:
    """Reduce a run to its headline metrics against exhaustive ground truth."""
    if not run.records:
        raise ValueError("run produced no records")
    latencies = np.asarray(run.latencies_ms())
    precisions = [
        truth.precision(record.query, record.result.doc_ids())
        for record in run.records
    ]
    return PolicySummary(
        policy=run.policy_name,
        trace=trace_name,
        n_queries=len(run.records),
        avg_latency_ms=mean(latencies),
        p50_latency_ms=percentile(latencies, 50),
        p95_latency_ms=percentile(latencies, 95),
        p99_latency_ms=percentile(latencies, 99),
        avg_precision=float(np.mean(precisions)),
        avg_selected_isns=float(np.mean([r.n_selected for r in run.records])),
        avg_counted_isns=float(np.mean([r.n_counted for r in run.records])),
        avg_docs_searched=float(np.mean([r.docs_searched for r in run.records])),
        avg_power_w=run.power.average_power_w,
        events_processed=run.events_processed,
        searcher_hits=run.searcher_hits,
        searcher_computations=run.searcher_computations,
        result_cache_hit_rate=(
            run.cache_stats.hit_rate if run.cache_stats is not None else None
        ),
    )


def comparison_table(summaries: list[PolicySummary], title: str = "") -> str:
    """Aligned text table over :meth:`PolicySummary.row` columns."""
    if not summaries:
        raise ValueError("nothing to tabulate")
    rows = [s.row() for s in summaries]
    columns = list(rows[0].keys())
    widths = {
        col: max(len(col), *(len(str(row[col])) for row in rows)) for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.rjust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row[col]).rjust(widths[col]) for col in columns))
    return "\n".join(lines)


def relative_improvement(baseline: float, improved: float) -> float:
    """Fractional reduction of ``improved`` vs ``baseline`` (0.54 = -54%)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline
