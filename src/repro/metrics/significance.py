"""Statistical significance for policy comparisons.

Single-trace comparisons can mislead: latency distributions are heavy-
tailed and queue waits are autocorrelated.  Paired bootstrap over
per-query differences gives confidence intervals that respect both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BootstrapResult:
    """A bootstrap confidence interval for a mean difference."""

    mean_difference: float
    ci_low: float
    ci_high: float
    confidence: float
    n_samples: int

    @property
    def significant(self) -> bool:
        """Whether the interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0


def paired_bootstrap(
    baseline: list[float] | np.ndarray,
    treatment: list[float] | np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapResult:
    """CI for mean(baseline - treatment) over paired per-query values.

    Positive differences mean the treatment improved on the baseline
    (e.g. baseline latencies minus Cottage latencies).  Pairs must come
    from the same queries in the same order — the standard setup when two
    policies replay one trace.
    """
    baseline = np.asarray(baseline, dtype=np.float64)
    treatment = np.asarray(treatment, dtype=np.float64)
    if baseline.shape != treatment.shape or baseline.ndim != 1:
        raise ValueError("need two aligned 1-D sample vectors")
    if baseline.size < 2:
        raise ValueError("need at least two pairs")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if n_resamples < 100:
        raise ValueError("need at least 100 resamples")

    differences = baseline - treatment
    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, differences.size, size=(n_resamples, differences.size))
    means = differences[indexes].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapResult(
        mean_difference=float(differences.mean()),
        ci_low=float(low),
        ci_high=float(high),
        confidence=confidence,
        n_samples=int(differences.size),
    )


def compare_latencies(
    baseline_run, treatment_run, confidence: float = 0.95, seed: int = 0
) -> BootstrapResult:
    """Paired bootstrap over two runs of the *same trace*.

    Queries are paired by query id; both runs must cover the identical
    trace (the Testbed's memoized runs always do).
    """
    base = {r.query.query_id: r.latency_ms for r in baseline_run.records}
    treat = {r.query.query_id: r.latency_ms for r in treatment_run.records}
    if set(base) != set(treat):
        raise ValueError("runs cover different query sets; same trace required")
    ids = sorted(base)
    return paired_bootstrap(
        [base[i] for i in ids], [treat[i] for i in ids],
        confidence=confidence, seed=seed,
    )
