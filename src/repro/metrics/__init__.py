"""Evaluation metrics: P@K ground truth, latency statistics, run summaries."""

from repro.metrics.latency import latency_histogram, mean, percentile, timeline
from repro.metrics.quality import GroundTruth, QueryTruth, precision_at_k
from repro.metrics.significance import (
    BootstrapResult,
    compare_latencies,
    paired_bootstrap,
)
from repro.metrics.summary import (
    PolicySummary,
    comparison_table,
    relative_improvement,
    summarize_run,
)

__all__ = [
    "precision_at_k",
    "QueryTruth",
    "GroundTruth",
    "percentile",
    "mean",
    "latency_histogram",
    "timeline",
    "PolicySummary",
    "summarize_run",
    "comparison_table",
    "relative_improvement",
    "BootstrapResult",
    "paired_bootstrap",
    "compare_latencies",
]
