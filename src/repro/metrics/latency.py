"""Latency statistics helpers."""

from __future__ import annotations

import numpy as np


def percentile(values: list[float] | np.ndarray, q: float) -> float:
    """q-th percentile (q in [0, 100]) with linear interpolation."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    return float(np.percentile(arr, q))


def mean(values: list[float] | np.ndarray) -> float:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no values")
    return float(arr.mean())


def latency_histogram(
    values_ms: list[float] | np.ndarray, bin_width_ms: float = 5.0
) -> list[tuple[float, float, int]]:
    """Fixed-width latency bins as (lo, hi, count) — the Fig. 2a view."""
    if bin_width_ms <= 0:
        raise ValueError("bin width must be positive")
    arr = np.asarray(values_ms, dtype=np.float64)
    if arr.size == 0:
        return []
    top = float(arr.max())
    n_bins = max(int(np.ceil(top / bin_width_ms)), 1)
    edges = np.arange(0.0, (n_bins + 1) * bin_width_ms, bin_width_ms)
    counts, _ = np.histogram(arr, bins=edges)
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def timeline(
    arrivals_s: list[float], latencies_ms: list[float], bucket_s: float = 10.0
) -> list[tuple[float, float]]:
    """Average latency per time bucket — the Fig. 10(a)/(c) series."""
    if len(arrivals_s) != len(latencies_ms):
        raise ValueError("arrival and latency vectors must align")
    if bucket_s <= 0:
        raise ValueError("bucket must be positive")
    buckets: dict[int, list[float]] = {}
    for t, lat in zip(arrivals_s, latencies_ms):
        buckets.setdefault(int(t // bucket_s), []).append(lat)
    return [
        (idx * bucket_s, float(np.mean(vals)))
        for idx, vals in sorted(buckets.items())
    ]
