"""Cottage — the paper's primary contribution.

``budget`` implements Algorithm 1 (time budget determination); ``cottage``
the coordinated policy built on the predictor bank; ``variants`` the two
ablations of Section V-D.
"""

from repro.core.budget import BudgetDecision, BudgetInput, determine_time_budget
from repro.core.cottage import CottagePolicy
from repro.core.variants import CottageISNPolicy, CottageWithoutMLPolicy

__all__ = [
    "BudgetInput",
    "BudgetDecision",
    "determine_time_budget",
    "CottagePolicy",
    "CottageWithoutMLPolicy",
    "CottageISNPolicy",
]
