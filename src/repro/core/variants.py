"""Cottage ablation variants (paper Section V-D, Fig. 15).

* **Cottage-withoutML** swaps the NN quality predictors for Taily's Gamma
  estimator while keeping everything else — quantifying what accurate
  ML-based quality prediction buys.
* **Cottage-ISN** removes the aggregator coordination: each ISN decides
  alone, from purely local information, whether to participate and whether
  to boost.  There is no global budget, so the aggregator waits for every
  participating ISN — quantifying what the coordinated design buys.
"""

from __future__ import annotations

from repro.cluster.cpu import equivalent_latency_ms
from repro.cluster.network import NetworkModel
from repro.cluster.types import ClusterView, Decision, QueryRecord
from repro.core.budget import BudgetInput, determine_time_budget
from repro.core.cottage import CottagePolicy
from repro.policies.base import BasePolicy
from repro.predictors.bank import PredictorBank
from repro.predictors.gamma_quality import TailyQualityEstimator
from repro.retrieval.query import Query


class CottageWithoutMLPolicy(CottagePolicy):
    """Cottage with Gamma-distribution quality estimates (no quality NN).

    Latency prediction stays neural — the ablation isolates the quality
    model, exactly as the paper describes: "utilizes the Gamma distribution
    based prediction of Taily to estimate each ISN's quality contribution,
    instead of using the Machine Learning (ML) model".
    """

    name = "cottage_without_ml"

    def __init__(
        self,
        bank: PredictorBank,
        estimator: TailyQualityEstimator,
        budget_slack: float = 1.3,
        network: NetworkModel | None = None,
    ) -> None:
        super().__init__(bank, budget_slack=budget_slack, network=network)
        self.estimator = estimator

    def budget_inputs(self, query: Query, view: ClusterView) -> list[BudgetInput]:
        k = self.bank.k
        gamma_k = self.estimator.quality_counts(query.terms, k)
        gamma_half = self.estimator.quality_counts(query.terms, max(k // 2, 1))
        inputs: list[BudgetInput] = []
        for prediction in self.bank.predict(query):
            sid = prediction.shard_id
            queue_ms = view.queued_predicted_ms[sid]
            current = equivalent_latency_ms(
                queue_ms, prediction.service_default_ms,
                view.default_freq_ghz, view.default_freq_ghz,
            )
            boosted = equivalent_latency_ms(
                queue_ms, prediction.service_default_ms,
                view.default_freq_ghz, view.max_freq_ghz,
            )
            inputs.append(
                BudgetInput(
                    shard_id=sid,
                    quality_k=gamma_k[sid],
                    quality_half_k=gamma_half[sid],
                    latency_current_ms=current,
                    latency_boosted_ms=boosted,
                )
            )
        return inputs


class CottageISNPolicy(BasePolicy):
    """Uncoordinated variant: per-ISN local decisions, no global budget.

    Each ISN, seeing only its own predictions, (a) opts out when its
    predicted Q^K is zero and (b) boosts its own frequency when its
    queue-aware latency exceeds its running average of past service times.
    Without the aggregator's global view there is no time budget, so the
    response waits for the slowest participant — the coordination gap the
    Fig. 15 ablation measures.
    """

    name = "cottage_isn"

    def __init__(
        self,
        bank: PredictorBank,
        boost_over_average: float = 1.0,
        cut_confidence: float = 0.9,
        network: NetworkModel | None = None,
    ) -> None:
        if not bank.trained:
            raise ValueError("predictor bank must be trained first")
        if not 0.0 <= cut_confidence <= 1.0:
            raise ValueError("cut_confidence must be in [0, 1]")
        self.bank = bank
        self.boost_over_average = boost_over_average
        self.cut_confidence = cut_confidence
        self.network = network or NetworkModel()
        # Running per-shard mean of observed service times — each ISN's
        # only notion of "slow for me" without global visibility.
        self._mean_service_ms: list[float] = [10.0] * bank.n_shards
        self._observations: list[int] = [0] * bank.n_shards

    def prewarm(self, queries: list[Query]) -> None:
        """Batch-predict the trace up front (see CottagePolicy.prewarm)."""
        self.bank.prewarm(queries)

    def decide(self, query: Query, view: ClusterView) -> Decision:
        selected: list[int] = []
        overrides: dict[int, float] = {}
        for prediction in self.bank.predict(query):
            # Same confidence-gated zero test as coordinated Cottage: this
            # variant removes coordination, not the quality machinery.
            if prediction.quality_k == 0 and prediction.p_zero_k >= self.cut_confidence:
                continue
            sid = prediction.shard_id
            selected.append(sid)
            local_latency = equivalent_latency_ms(
                view.queued_predicted_ms[sid],
                prediction.service_default_ms,
                view.default_freq_ghz,
                view.default_freq_ghz,
            )
            threshold = self.boost_over_average * self._mean_service_ms[sid]
            if local_latency > threshold:
                overrides[sid] = view.max_freq_ghz
        if not selected:
            best = max(
                self.bank.predict(query), key=lambda p: (p.quality_k, -p.shard_id)
            )
            selected = [best.shard_id]
            overrides = {}
        return Decision(
            shard_ids=tuple(selected),
            frequency_overrides=overrides,
            # Local inference only: no report-back round.
            coordination_delay_ms=self.bank.coordination_overhead_ms(),
        )

    def observe(self, record: QueryRecord) -> None:
        for outcome in record.outcomes:
            sid = outcome.shard_id
            n = self._observations[sid] + 1
            self._observations[sid] = n
            self._mean_service_ms[sid] += (
                outcome.service_ms - self._mean_service_ms[sid]
            ) / n
