"""Algorithm 1 — per-query time budget determination.

The heart of the paper: given every ISN's <Q^K, Q^{K/2}, L_current,
L_boosted> prediction tuple, pick the smallest time budget that keeps every
ISN still contributing to the most important top-K/2 results, cutting
zero-quality ISNs entirely and marking slow-but-valuable ISNs for frequency
boosting.

Stage 1 (paper lines 3-11): drop every ISN with Q^K = 0.
Stage 2 (lines 12-21): sort survivors by boosted latency, descending, and
walk from the slowest: the first ISN with Q^{K/2} != 0 sets the budget;
every slower ISN ahead of it (all with Q^{K/2} = 0) is sacrificed.

Note: the paper's pseudocode keeps assigning ``T`` without a break, which
would end at the *fastest* K/2-contributor; the prose and the Fig. 9 worked
example ("we choose the ISN-1's boosted latency of 16 milliseconds ...
Because ISN-1 contributes one document to the most important top-K/2
results, we have to keep ISN-1 and cannot reduce the time budget further")
make clear the walk stops at the first K/2-contributor.  This
implementation follows the prose/example.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BudgetInput:
    """One ISN's prediction tuple <Q^K, Q^{K/2}, L_current, L_boosted>."""

    shard_id: int
    quality_k: int
    quality_half_k: int
    latency_current_ms: float
    latency_boosted_ms: float

    def __post_init__(self) -> None:
        if self.quality_k < 0 or self.quality_half_k < 0:
            raise ValueError("quality predictions cannot be negative")
        if self.latency_current_ms < 0 or self.latency_boosted_ms < 0:
            raise ValueError("latencies cannot be negative")
        if self.latency_boosted_ms > self.latency_current_ms + 1e-9:
            raise ValueError("boosted latency cannot exceed current latency")


@dataclass(frozen=True)
class BudgetDecision:
    """Algorithm 1's output."""

    selected: tuple[int, ...]  # ISNs that will execute the query
    time_budget_ms: float | None  # None when nothing is selected
    boosted: tuple[int, ...]  # subset of selected that must raise frequency
    cut_zero_quality: tuple[int, ...]  # stage-1 cuts (Q^K = 0)
    cut_too_slow: tuple[int, ...]  # stage-2 cuts (slow and Q^{K/2} = 0)


def determine_time_budget(
    inputs: list[BudgetInput], boost_margin: float = 1.0
) -> BudgetDecision:
    """Run Algorithm 1 over all ISNs' prediction tuples.

    ``boost_margin`` scales the boost test: an ISN boosts when its
    current-frequency latency exceeds ``boost_margin * budget``.  1.0 is
    the paper's literal rule (boost only when the deadline would otherwise
    be missed); smaller values boost proactively, absorbing latency
    under-prediction at some power cost.
    """
    if not inputs:
        raise ValueError("need at least one ISN prediction")

    # Stage 1: cut ISNs with zero predicted contribution to the top-K.
    cut_zero = tuple(
        sorted(i.shard_id for i in inputs if i.quality_k == 0)
    )
    survivors = [i for i in inputs if i.quality_k > 0]
    if not survivors:
        return BudgetDecision(
            selected=(),
            time_budget_ms=None,
            boosted=(),
            cut_zero_quality=cut_zero,
            cut_too_slow=(),
        )

    # Stage 2: descending boosted latency; ties broken by shard id for
    # determinism.  T starts at the slowest survivor's boosted latency
    # (line 13) and tightens until the first K/2 contributor.
    survivors.sort(key=lambda i: (-i.latency_boosted_ms, i.shard_id))
    budget = survivors[0].latency_boosted_ms
    cut_slow: list[int] = []
    kept: list[BudgetInput] = []
    pivot_found = False
    for isn in survivors:
        if pivot_found:
            kept.append(isn)
            continue
        if isn.quality_half_k != 0:
            budget = isn.latency_boosted_ms
            pivot_found = True
            kept.append(isn)
        else:
            cut_slow.append(isn.shard_id)
    if not pivot_found:
        # No survivor touches the top-K/2: the algorithm's initial budget
        # (the slowest boosted latency) stands and every survivor is kept —
        # exactly what the pseudocode does when the loop never fires.
        kept = survivors
        cut_slow = []
        budget = survivors[0].latency_boosted_ms

    if not 0.0 < boost_margin <= 1.0:
        raise ValueError("boost_margin must be in (0, 1]")
    budget = max(budget, 1e-6)
    boosted = tuple(
        sorted(
            isn.shard_id
            for isn in kept
            if isn.latency_current_ms > boost_margin * budget + 1e-9
        )
    )
    return BudgetDecision(
        selected=tuple(sorted(isn.shard_id for isn in kept)),
        time_budget_ms=budget,
        boosted=boosted,
        cut_zero_quality=cut_zero,
        cut_too_slow=tuple(sorted(cut_slow)),
    )
