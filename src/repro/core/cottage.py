"""The Cottage policy: coordinated per-query time-budget assignment.

Implements the paper's full control loop (Fig. 5): every ISN predicts its
quality contribution (NN over Table-I features) and its service latency
(NN over Table-II features, queue-aware per Eq. 2); the aggregator runs
Algorithm 1 over the reported tuples, cuts zero-quality and
slow-zero-K/2-quality ISNs, sets the minimal time budget, and boosts the
CPU frequency of kept ISNs whose current-frequency latency exceeds it.
"""

from __future__ import annotations

from repro.cluster.cpu import equivalent_latency_ms
from repro.cluster.network import NetworkModel
from repro.cluster.types import ClusterView, Decision
from repro.core.budget import BudgetInput, determine_time_budget
from repro.policies.base import BasePolicy
from repro.predictors.bank import PredictorBank
from repro.retrieval.query import Query
from repro.telemetry import Telemetry


class CottagePolicy(BasePolicy):
    """Coordinated quality/latency-aware selection with frequency boosting."""

    name = "cottage"

    def __init__(
        self,
        bank: PredictorBank,
        budget_slack: float = 1.3,
        cut_confidence: float = 0.9,
        half_cut_confidence: float = 0.75,
        boost_margin: float = 0.8,
        enable_boost: bool = True,
        pivot_on_full_k: bool = False,
        network: NetworkModel | None = None,
    ) -> None:
        """
        Parameters
        ----------
        bank:
            Trained per-shard predictor bank.
        budget_slack:
            Multiplier applied to Algorithm 1's budget before broadcast.
            The latency predictor is a bin classifier, so roughly half of
            all predictions sit below the true service time; a slack of one
            bin width (~15%) absorbs that quantization — without it, kept
            ISNs routinely miss the deadline they were kept *for*.  Set to
            1.0 for the paper's literal budget (ablated in
            ``benchmarks/bench_ablation_budget_rule.py``).
        cut_confidence:
            Minimum softmax probability of the zero class before a
            predicted Q^K = 0 actually cuts the ISN (stage 1 of Algorithm
            1).  Below it the ISN is kept as a potential 1-doc contributor.
            The paper's testbed reaches 95% quality-prediction accuracy and
            cuts on the raw argmax; at reproduction scale labels are
            noisier, and confidence gating recovers the paper's
            keep-what-matters behaviour (ablated in
            ``benchmarks/bench_ablation_confidence.py``).  Set to 0 for the
            literal argmax rule.
        half_cut_confidence:
            Same gate for the stage-2 Q^{K/2} = 0 test that sacrifices
            slow ISNs.
        boost_margin:
            Boost an ISN already at ``boost_margin * budget`` predicted
            latency rather than exactly at the budget, absorbing latency
            under-prediction (1.0 = the paper's literal rule).
        enable_boost:
            Ablation switch: with boosting disabled, Algorithm 1 runs on
            current-frequency latencies and no ISN changes frequency
            (``benchmarks/bench_ablation_boost.py``).
        pivot_on_full_k:
            Ablation switch: pivot stage 2 on Q^K instead of Q^{K/2} —
            never sacrifice any top-K contributor, at the cost of a larger
            budget (``benchmarks/bench_ablation_budget_rule.py``).
        network:
            Network model used to charge the predict-and-report round.
        """
        if not bank.trained:
            raise ValueError("predictor bank must be trained first")
        if budget_slack < 1.0:
            raise ValueError("budget slack cannot shrink the budget")
        if not 0.0 <= cut_confidence <= 1.0 or not 0.0 <= half_cut_confidence <= 1.0:
            raise ValueError("confidence gates must be in [0, 1]")
        self.bank = bank
        self.budget_slack = budget_slack
        self.cut_confidence = cut_confidence
        self.half_cut_confidence = half_cut_confidence
        self.boost_margin = boost_margin
        self.enable_boost = enable_boost
        self.pivot_on_full_k = pivot_on_full_k
        self.network = network or NetworkModel()

    # ------------------------------------------------------------------ logic
    def budget_inputs(self, query: Query, view: ClusterView) -> list[BudgetInput]:
        """Assemble each ISN's <Q^K, Q^{K/2}, L_current, L_boosted> tuple.

        Latencies are *equivalent latencies* (Eq. 2): the ISN's queued work
        plus this query's predicted service time, scaled to the candidate
        frequency (Eq. 1).
        """
        inputs: list[BudgetInput] = []
        for prediction in self.bank.predict(query):
            queue_ms = view.queued_predicted_ms[prediction.shard_id]
            current = equivalent_latency_ms(
                queue_ms,
                prediction.service_default_ms,
                view.default_freq_ghz,
                view.default_freq_ghz,
            )
            boosted = equivalent_latency_ms(
                queue_ms,
                prediction.service_default_ms,
                view.default_freq_ghz,
                view.max_freq_ghz,
            )
            if not self.enable_boost:
                boosted = current
            quality_k = self._gated(
                prediction.quality_k, prediction.p_zero_k, self.cut_confidence
            )
            quality_half = self._gated(
                prediction.quality_half_k,
                prediction.p_zero_half,
                self.half_cut_confidence,
            )
            if self.pivot_on_full_k:
                quality_half = quality_k
            inputs.append(
                BudgetInput(
                    shard_id=prediction.shard_id,
                    quality_k=quality_k,
                    quality_half_k=quality_half,
                    latency_current_ms=current,
                    latency_boosted_ms=boosted,
                )
            )
        return inputs

    @staticmethod
    def _gated(count: int, p_zero: float, confidence: float) -> int:
        """A predicted zero only counts as zero when confidently zero."""
        if count == 0 and p_zero < confidence:
            return 1
        return count

    def coordination_delay_ms(self) -> float:
        """Steps 1-5 of Fig. 5: broadcast, parallel inference, report back.

        Two extra one-way messages beyond the dispatch the aggregator
        already charges, plus the slowest ISN's inference time.
        """
        return 2.0 * self.network.delay_ms() + self.bank.coordination_overhead_ms()

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Bind the run's session, including the bank's inference spans."""
        super().bind_telemetry(telemetry)
        self.bank.bind_telemetry(telemetry)

    def prewarm(self, queries: list[Query]) -> None:
        """Batch-predict the whole trace through the fused kernels.

        Predictions are pure and memoized per distinct term tuple, so
        every subsequent :meth:`decide` hits the bank's cache; decisions
        are unchanged.
        """
        self.bank.prewarm(queries)

    def decide(self, query: Query, view: ClusterView) -> Decision:
        telemetry = self.telemetry
        if not telemetry.enabled:
            decision = determine_time_budget(
                self.budget_inputs(query, view), boost_margin=self.boost_margin
            )
        else:
            # The two halves of the coordination round (paper Fig. 5 steps
            # 1-4): per-ISN prediction, then Algorithm 1.  Both nest under
            # the aggregator's decide span on its track.
            tracer = telemetry.tracer
            with tracer.span("policy.predict", track="aggregator", qid=query.query_id):
                inputs = self.budget_inputs(query, view)
            with tracer.span(
                "policy.budget_assign", track="aggregator", qid=query.query_id
            ):
                decision = determine_time_budget(
                    inputs, boost_margin=self.boost_margin
                )
            metrics = telemetry.metrics
            metrics.counter("cottage.cut_zero_quality").add(
                len(decision.cut_zero_quality)
            )
            metrics.counter("cottage.cut_too_slow").add(len(decision.cut_too_slow))
            metrics.counter("cottage.boosted").add(len(decision.boosted))
            metrics.counter("cottage.kept").add(len(decision.selected))
        # The bank's per-shard service predictions ride along on the
        # decision so the aggregator's hedge planner works from the same
        # estimates Algorithm 1 did (bank.predict is memoized — this
        # re-read costs a dict lookup).
        predicted = {
            p.shard_id: p.service_default_ms for p in self.bank.predict(query)
        }
        if not decision.selected:
            # Predicted zero quality everywhere — run the single most
            # plausible shard instead of answering empty (a pure fallback;
            # with a trained bank this is rare).
            best = max(
                self.bank.predict(query), key=lambda p: (p.quality_k, -p.shard_id)
            )
            return Decision(
                shard_ids=(best.shard_id,),
                coordination_delay_ms=self.coordination_delay_ms(),
                predicted_service_ms={best.shard_id: predicted[best.shard_id]},
            )
        # Algorithm 1 always sets a budget when anything is selected.
        assert decision.time_budget_ms is not None
        budget = decision.time_budget_ms * self.budget_slack
        overrides = (
            {sid: view.max_freq_ghz for sid in decision.boosted}
            if self.enable_boost
            else {}
        )
        return Decision(
            shard_ids=decision.selected,
            time_budget_ms=budget,
            frequency_overrides=overrides,
            coordination_delay_ms=self.coordination_delay_ms(),
            predicted_service_ms={
                sid: predicted[sid] for sid in decision.selected
            },
        )
