"""Synthetic workloads: corpora and query traces.

Substitutes for the paper's Wikipedia dump and the Wikipedia/Lucene query
traces (see DESIGN.md for the substitution argument).
"""

from repro.workloads.corpus import (
    CORPUS_PRESETS,
    CorpusConfig,
    SyntheticCorpus,
    term_token,
)
from repro.workloads.io import load_trace, save_trace
from repro.workloads.traces import (
    TraceConfig,
    build_query_pool,
    generate_trace,
    training_queries,
)

__all__ = [
    "CorpusConfig",
    "CORPUS_PRESETS",
    "SyntheticCorpus",
    "term_token",
    "TraceConfig",
    "build_query_pool",
    "generate_trace",
    "training_queries",
    "save_trace",
    "load_trace",
]
