"""Query trace generation.

Two trace flavours mirror the paper's evaluation workloads:

* **wikipedia** — short navigational queries (1-2 terms), heavy reuse of a
  small hot set (the paper's Wikipedia access trace is famously skewed).
* **lucene** — the Lucene nightly benchmark style: longer analytical
  queries (1-4 terms), flatter popularity, more multi-topic queries, which
  produces the heavier latency tail of the paper's Fig. 10(c).

Arrivals are Poisson at a configurable rate, replayed for a configurable
duration, exactly how the paper's client replayer drives its testbed for
1000 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.retrieval.query import Query, QueryTrace
from repro.workloads.corpus import SyntheticCorpus, term_token


@dataclass(frozen=True)
class TraceConfig:
    """Shape of one replayable trace."""

    flavour: str = "wikipedia"
    n_distinct_queries: int = 200
    duration_s: float = 100.0
    arrival_rate_qps: float = 20.0
    popularity_exponent: float = 0.9
    seed: int = 11

    def __post_init__(self) -> None:
        if self.flavour not in ("wikipedia", "lucene"):
            raise ValueError("flavour must be 'wikipedia' or 'lucene'")
        if self.n_distinct_queries < 1:
            raise ValueError("need at least one distinct query")
        if self.duration_s <= 0 or self.arrival_rate_qps <= 0:
            raise ValueError("duration and rate must be positive")


def _query_length(flavour: str, rng: np.random.Generator) -> int:
    """Sample a query length; Lucene-style queries run longer."""
    if flavour == "wikipedia":
        return int(rng.choice([1, 2, 3], p=[0.55, 0.35, 0.10]))
    return int(rng.choice([1, 2, 3, 4], p=[0.30, 0.35, 0.25, 0.10]))


def build_query_pool(
    corpus: SyntheticCorpus, config: TraceConfig
) -> list[tuple[str, ...]]:
    """Distinct query term-sets for one trace.

    Most queries are topical (terms from one topic core — these are the
    queries where few shards matter); a minority mix in background terms or
    a second topic, which spreads contributions and stresses the budget
    algorithm's slow-but-valuable case.
    """
    rng = np.random.default_rng(config.seed)
    if config.flavour == "wikipedia":
        background_rate, mixed_rate, multi_topic_rate = 0.08, 0.55, 0.10
    else:
        background_rate, mixed_rate, multi_topic_rate = 0.10, 0.50, 0.20
    pool: list[tuple[str, ...]] = []
    seen: set[tuple[str, ...]] = set()
    n_topics = corpus.config.n_topics
    while len(pool) < config.n_distinct_queries:
        length = _query_length(config.flavour, rng)
        topic = int(rng.integers(0, n_topics))
        roll = rng.random()
        if roll < background_rate:
            term_ids = corpus.sample_background_terms(length, rng)
        elif roll < background_rate + mixed_rate:
            # Topical term(s) plus one common term ("canada weather"):
            # every shard does scoring work, few shards contribute — the
            # paper's Fig. 3 regime.
            term_ids = corpus.sample_topic_terms(topic, max(length - 1, 1), rng)
            term_ids += corpus.sample_common_terms(1, rng)
        elif roll < background_rate + mixed_rate + multi_topic_rate and length >= 2:
            second = int(rng.integers(0, n_topics))
            split = length // 2
            term_ids = corpus.sample_topic_terms(topic, length - split, rng)
            term_ids += corpus.sample_topic_terms(second, split, rng)
        else:
            term_ids = corpus.sample_topic_terms(topic, length, rng)
        terms = tuple(dict.fromkeys(term_token(t) for t in term_ids))
        if terms and terms not in seen:
            seen.add(terms)
            pool.append(terms)
    return pool


def generate_trace(corpus: SyntheticCorpus, config: TraceConfig) -> QueryTrace:
    """A timestamped Poisson replay over a Zipf-popular query pool."""
    rng = np.random.default_rng(config.seed + 1)
    pool = build_query_pool(corpus, config)

    ranks = np.arange(1, len(pool) + 1, dtype=np.float64)
    popularity = ranks**-config.popularity_exponent
    popularity /= popularity.sum()

    queries: list[Query] = []
    t = 0.0
    query_id = 0
    while True:
        t += rng.exponential(1.0 / config.arrival_rate_qps)
        if t > config.duration_s:
            break
        terms = pool[int(rng.choice(len(pool), p=popularity))]
        queries.append(
            Query(
                query_id=query_id,
                terms=terms,
                text=" ".join(terms),
                arrival_time=float(t),
            )
        )
        query_id += 1
    return QueryTrace(name=config.flavour, queries=queries)


def training_queries(
    corpus: SyntheticCorpus, n: int, seed: int = 101, flavour: str = "wikipedia"
) -> list[Query]:
    """Distinct queries for predictor training (disjoint seed from traces).

    The paper trains each ISN's models on "a large amount of observed
    samples from the past"; this generates that history from the same query
    model so train and test distributions match without sharing instances.
    """
    config = TraceConfig(flavour=flavour, n_distinct_queries=n, seed=seed)
    pool = build_query_pool(corpus, config)
    return [
        Query(query_id=i, terms=terms, text=" ".join(terms))
        for i, terms in enumerate(pool)
    ]
