"""Synthetic corpus generation.

Stands in for the paper's 34M-document Wikipedia dump.  The generator
produces a topical, Zipf-distributed collection whose two load-bearing
properties match the paper's measurements:

* **Latency variance** (Fig. 2a): query terms span a wide document-frequency
  range because term popularity is Zipfian, so posting lists — and service
  times — are long-tailed.
* **Quality concentration** (Fig. 2b): each document leans on a topic, and
  the topical partitioner co-locates topics, so for most queries only a few
  shards contribute to the global top-K.

Documents are streams of synthetic vocabulary tokens ("t0", "t1", ...);
index them with :class:`repro.text.WhitespaceAnalyzer` so the generated
distributions survive analysis untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.documents import Document


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic collection.

    ``topic_weight`` is the probability mass a document draws from its
    topic's core vocabulary (the rest comes from the global Zipf
    background); higher values concentrate quality on fewer shards.
    """

    n_docs: int = 6000
    vocab_size: int = 12000
    n_topics: int = 32
    topic_core_size: int = 300
    topic_weight: float = 0.9
    zipf_exponent: float = 1.0
    mean_doc_length: int = 120
    doc_length_sigma: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_docs < 1 or self.vocab_size < 10:
            raise ValueError("corpus too small to be meaningful")
        if not 0.0 <= self.topic_weight <= 1.0:
            raise ValueError("topic_weight must be in [0, 1]")
        if self.n_topics * self.topic_core_size > self.vocab_size:
            raise ValueError("topic cores exceed the vocabulary")


# Named sizes used across tests, examples and benchmarks.
CORPUS_PRESETS: dict[str, CorpusConfig] = {
    "tiny": CorpusConfig(n_docs=600, vocab_size=2000, n_topics=8,
                         topic_core_size=120, mean_doc_length=60, seed=7),
    "small": CorpusConfig(n_docs=3000, vocab_size=8000, n_topics=16,
                          topic_core_size=250, mean_doc_length=90, seed=7),
    "medium": CorpusConfig(n_docs=8000, vocab_size=16000, n_topics=32,
                           topic_core_size=300, mean_doc_length=120, seed=7),
}


def term_token(term_index: int) -> str:
    """The surface form of synthetic vocabulary entry ``term_index``."""
    return f"t{term_index}"


class SyntheticCorpus:
    """A generated collection plus the distributions that produced it.

    The per-topic term distributions are retained so the trace generator
    can draw topically coherent queries from the same model.
    """

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        v = config.vocab_size

        # Global Zipf background over the vocabulary.
        ranks = np.arange(1, v + 1, dtype=np.float64)
        background = ranks**-config.zipf_exponent
        background /= background.sum()

        # Disjoint topic cores drawn from mid-popularity vocabulary, so core
        # terms are selective (rare globally) but dense within their topic.
        core_pool = rng.permutation(np.arange(v // 50, v))
        self.topic_cores: list[np.ndarray] = []
        mixtures = np.empty((config.n_topics, v))
        for topic in range(config.n_topics):
            core = core_pool[
                topic * config.topic_core_size : (topic + 1) * config.topic_core_size
            ]
            self.topic_cores.append(np.sort(core))
            topical = np.zeros(v)
            # Zipf within the core too: a few hot terms per topic.
            core_weights = np.arange(1, core.size + 1, dtype=np.float64) ** -1.0
            topical[core] = core_weights / core_weights.sum()
            mixtures[topic] = (
                config.topic_weight * topical + (1.0 - config.topic_weight) * background
            )
        self._cumulative = np.cumsum(mixtures, axis=1)
        self.background = background

        # Documents: lognormal lengths, topic assignment round-robin with a
        # shuffled order so shards built later stay balanced.
        lengths = rng.lognormal(
            mean=np.log(config.mean_doc_length), sigma=config.doc_length_sigma,
            size=config.n_docs,
        ).astype(int)
        lengths = np.maximum(lengths, 10)
        topics = rng.integers(0, config.n_topics, size=config.n_docs)

        self.documents: list[Document] = []
        for doc_id in range(config.n_docs):
            topic = int(topics[doc_id])
            u = rng.random(int(lengths[doc_id]))
            term_ids = np.searchsorted(self._cumulative[topic], u, side="right")
            text = " ".join(term_token(int(t)) for t in term_ids)
            self.documents.append(Document(doc_id=doc_id, text=text, topic=topic))

    def __len__(self) -> int:
        return len(self.documents)

    def sample_topic_terms(
        self, topic: int, n: int, rng: np.random.Generator
    ) -> list[int]:
        """Draw ``n`` distinct term ids from a topic's core, Zipf-weighted."""
        core = self.topic_cores[topic]
        if n > core.size:
            raise ValueError("cannot sample more terms than the core holds")
        weights = np.arange(1, core.size + 1, dtype=np.float64) ** -1.0
        weights /= weights.sum()
        picked = rng.choice(core.size, size=n, replace=False, p=weights)
        return [int(core[i]) for i in picked]

    def sample_background_terms(self, n: int, rng: np.random.Generator) -> list[int]:
        """Draw ``n`` distinct mid-popularity background terms."""
        lo, hi = 5, max(self.config.vocab_size // 4, 50)
        weights = self.background[lo:hi] / self.background[lo:hi].sum()
        picked = rng.choice(hi - lo, size=min(n, hi - lo), replace=False, p=weights)
        return [int(lo + i) for i in picked]

    def sample_common_terms(self, n: int, rng: np.random.Generator) -> list[int]:
        """Draw ``n`` distinct *high-popularity* terms (long postings on
        every shard).

        These are the "weather" in a "canada weather" query: they make all
        ISNs do real scoring work, while the topical term decides which
        shards actually contribute — the regime behind the paper's Fig. 3
        example, where slow ISNs with no quality contribution exist to be
        cut.
        """
        lo, hi = 3, max(self.config.vocab_size // 50, 20)
        weights = self.background[lo:hi] / self.background[lo:hi].sum()
        picked = rng.choice(hi - lo, size=min(n, hi - lo), replace=False, p=weights)
        return [int(lo + i) for i in picked]
