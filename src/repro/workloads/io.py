"""Trace persistence: replayable query traces as JSON.

A saved trace pins a workload exactly — the same arrivals, the same terms
— so experiments are comparable across machines and sessions without
regenerating from seeds.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.retrieval.query import Query, QueryTrace

_FORMAT_VERSION = 1


def save_trace(trace: QueryTrace, path: str | Path) -> None:
    """Write a trace as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": trace.name,
        "queries": [
            {
                "id": query.query_id,
                "terms": list(query.terms),
                "text": query.text,
                "arrival_s": query.arrival_time,
            }
            for query in trace
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_trace(path: str | Path) -> QueryTrace:
    """Load a trace saved by :func:`save_trace`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format in {path}")
    queries = [
        Query(
            query_id=int(entry["id"]),
            terms=tuple(entry["terms"]),
            text=entry.get("text", ""),
            arrival_time=float(entry["arrival_s"]),
        )
        for entry in payload["queries"]
    ]
    return QueryTrace(name=str(payload["name"]), queries=queries)
