"""Query feature extraction — the paper's Tables I and II.

Every feature derives from index-time term statistics
(:class:`repro.index.TermStatsIndex`).  Multi-term queries aggregate
per-term values with the MAX operator, the choice the paper makes for
phrase features ("In our experiments, we choose the MAX operator to
calculate the phrase features"), except the query-length feature which is
the term count itself.
"""

from __future__ import annotations

import numpy as np

from repro.index.term_stats import TermStats, TermStatsIndex

# Table I — features for quality prediction, in order.
QUALITY_FEATURE_NAMES: tuple[str, ...] = (
    "first_quartile_score",
    "arithmetic_average_score",
    "median_score",
    "geometric_average_score",
    "harmonic_average_score",
    "third_quartile_score",
    "kth_score",
    "max_score",
    "score_variance",
    "posting_list_length",
)

# Table II — features for latency prediction, in order.
LATENCY_FEATURE_NAMES: tuple[str, ...] = (
    "posting_list_length",
    "docs_ever_in_top_k",
    "n_local_score_maxima",
    "n_local_score_maxima_above_mean",
    "n_max_score",
    "query_length",
    "docs_within_5pct_of_max_score",
    "docs_within_5pct_of_kth_score",
    "arithmetic_average_score",
    "geometric_average_score",
    "harmonic_average_score",
    "max_score",
    "estimated_max_score",
    "score_variance",
    "idf",
)


def _quality_row(stats: TermStats) -> np.ndarray:
    return np.array(
        [
            stats.first_quartile,
            stats.mean,
            stats.median,
            stats.geometric_mean,
            stats.harmonic_mean,
            stats.third_quartile,
            stats.kth_score,
            stats.max_score,
            stats.variance,
            float(stats.posting_length),
        ]
    )


def _latency_row(stats: TermStats, query_length: int) -> np.ndarray:
    return np.array(
        [
            float(stats.posting_length),
            float(stats.docs_ever_in_topk),
            float(stats.n_local_maxima),
            float(stats.n_local_maxima_above_mean),
            float(stats.n_max_score),
            float(query_length),
            float(stats.docs_within_5pct_of_max),
            float(stats.docs_within_5pct_of_kth),
            stats.mean,
            stats.geometric_mean,
            stats.harmonic_mean,
            stats.max_score,
            stats.estimated_max_score,
            stats.variance,
            stats.idf,
        ]
    )


def quality_features(terms: tuple[str, ...] | list[str], stats: TermStatsIndex) -> np.ndarray:
    """Table-I feature vector for one query on one shard (MAX-aggregated)."""
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([_quality_row(stats.get(term)) for term in terms])
    return rows.max(axis=0)


def latency_features(terms: tuple[str, ...] | list[str], stats: TermStatsIndex) -> np.ndarray:
    """Table-II feature vector for one query on one shard (MAX-aggregated,
    query length passed through untouched)."""
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([_latency_row(stats.get(term), len(terms)) for term in terms])
    return rows.max(axis=0)


def feature_table(
    terms: tuple[str, ...] | list[str], stats: TermStatsIndex, which: str = "quality"
) -> list[tuple[str, float]]:
    """Human-readable (name, value) pairs, used by the Table I/II benches."""
    if which == "quality":
        vector = quality_features(terms, stats)
        names = QUALITY_FEATURE_NAMES
    elif which == "latency":
        vector = latency_features(terms, stats)
        names = LATENCY_FEATURE_NAMES
    else:
        raise ValueError("which must be 'quality' or 'latency'")
    return list(zip(names, (float(v) for v in vector)))
