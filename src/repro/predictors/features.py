"""Query feature extraction — the paper's Tables I and II.

Every feature derives from index-time term statistics
(:class:`repro.index.TermStatsIndex`).  Multi-term queries aggregate
per-term values with the MAX operator, the choice the paper makes for
phrase features ("In our experiments, we choose the MAX operator to
calculate the phrase features"), except the query-length feature which is
the term count itself.
"""

from __future__ import annotations

import numpy as np

from repro.index.term_stats import TermStats, TermStatsIndex
from repro.predictors.arrays import FloatArray

# Table I — features for quality prediction, in order.
QUALITY_FEATURE_NAMES: tuple[str, ...] = (
    "first_quartile_score",
    "arithmetic_average_score",
    "median_score",
    "geometric_average_score",
    "harmonic_average_score",
    "third_quartile_score",
    "kth_score",
    "max_score",
    "score_variance",
    "posting_list_length",
)

# Table II — features for latency prediction, in order.
LATENCY_FEATURE_NAMES: tuple[str, ...] = (
    "posting_list_length",
    "docs_ever_in_top_k",
    "n_local_score_maxima",
    "n_local_score_maxima_above_mean",
    "n_max_score",
    "query_length",
    "docs_within_5pct_of_max_score",
    "docs_within_5pct_of_kth_score",
    "arithmetic_average_score",
    "geometric_average_score",
    "harmonic_average_score",
    "max_score",
    "estimated_max_score",
    "score_variance",
    "idf",
)


def _quality_row(stats: TermStats) -> FloatArray:
    return np.array(
        [
            stats.first_quartile,
            stats.mean,
            stats.median,
            stats.geometric_mean,
            stats.harmonic_mean,
            stats.third_quartile,
            stats.kth_score,
            stats.max_score,
            stats.variance,
            float(stats.posting_length),
        ]
    )


def _latency_row(stats: TermStats, query_length: int) -> FloatArray:
    return np.array(
        [
            float(stats.posting_length),
            float(stats.docs_ever_in_topk),
            float(stats.n_local_maxima),
            float(stats.n_local_maxima_above_mean),
            float(stats.n_max_score),
            float(query_length),
            float(stats.docs_within_5pct_of_max),
            float(stats.docs_within_5pct_of_kth),
            stats.mean,
            stats.geometric_mean,
            stats.harmonic_mean,
            stats.max_score,
            stats.estimated_max_score,
            stats.variance,
            stats.idf,
        ]
    )


# Column of the query-length pass-through feature in the Table-II vector.
_QUERY_LENGTH_COL = LATENCY_FEATURE_NAMES.index("query_length")


class TermFeatureCache:
    """Per-cluster cache of per-term feature rows stacked across shards.

    The per-shard extraction path rebuilds a term's Table-I/II rows from
    the :class:`TermStats` dataclass on every call — 2 x n_shards small
    ``np.array`` constructions per query term.  This cache does that work
    once per term, storing the rows stacked shard-major (``[S, F]``), so a
    query's full ``n_shards x n_features`` matrices assemble with one
    stack + segmented max over precomputed arrays.

    Latency rows are cached with the query-length column zeroed — the
    value is a per-query constant, written into the aggregated matrix
    afterwards.  Shard term statistics are immutable, so entries never
    invalidate.
    """

    def __init__(self, stats_indexes: list[TermStatsIndex]) -> None:
        if not stats_indexes:
            raise ValueError("need at least one shard stats index")
        self.stats_indexes = stats_indexes
        self._rows: dict[str, tuple[FloatArray, FloatArray]] = {}

    @property
    def n_shards(self) -> int:
        return len(self.stats_indexes)

    def rows(self, term: str) -> tuple[FloatArray, FloatArray]:
        """``(quality_rows[S, 10], latency_rows[S, 15])`` for one term."""
        cached = self._rows.get(term)
        if cached is not None:
            return cached
        per_shard = [stats.get(term) for stats in self.stats_indexes]
        quality = np.stack([_quality_row(stats) for stats in per_shard])
        latency = np.stack([_latency_row(stats, 0) for stats in per_shard])
        entry = (quality, latency)
        self._rows[term] = entry
        return entry

    def __len__(self) -> int:
        return len(self._rows)


def quality_feature_matrix(
    terms: tuple[str, ...] | list[str], cache: TermFeatureCache
) -> FloatArray:
    """Table-I features for one query on *every* shard: ``[S, 10]``.

    Row ``s`` is bit-identical to ``quality_features(terms,
    stats_indexes[s])`` — the MAX aggregation runs over the same values,
    just stacked shard-major.
    """
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([cache.rows(term)[0] for term in terms])  # [T, S, 10]
    return np.asarray(rows.max(axis=0))


def latency_feature_matrix(
    terms: tuple[str, ...] | list[str], cache: TermFeatureCache
) -> FloatArray:
    """Table-II features for one query on every shard: ``[S, 15]``."""
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([cache.rows(term)[1] for term in terms])  # [T, S, 15]
    matrix: FloatArray = rows.max(axis=0)
    matrix[:, _QUERY_LENGTH_COL] = float(len(terms))
    return matrix


def trace_feature_tensors(
    term_tuples: list[tuple[str, ...]], cache: TermFeatureCache
) -> tuple[FloatArray, FloatArray]:
    """Feature tensors for a whole trace: ``([NQ, S, 10], [NQ, S, 15])``.

    One pass over the stacked term-stat arrays: every query's term rows
    are concatenated once and MAX-aggregated per query with a single
    segmented reduce (``np.maximum.reduceat``) — exact, so slice ``i`` is
    bit-identical to the per-query matrix functions.  This is the
    prewarming path: the whole trace's predictor inputs assemble without
    a per-query python loop over shards.
    """
    if not term_tuples:
        n = cache.n_shards
        return (
            np.zeros((0, n, len(QUALITY_FEATURE_NAMES))),
            np.zeros((0, n, len(LATENCY_FEATURE_NAMES))),
        )
    offsets = []
    cursor = 0
    for terms in term_tuples:
        if not terms:
            raise ValueError("query has no terms")
        offsets.append(cursor)
        cursor += len(terms)
    flat = [cache.rows(term) for terms in term_tuples for term in terms]
    quality_rows = np.stack([rows[0] for rows in flat])  # [T_total, S, 10]
    latency_rows = np.stack([rows[1] for rows in flat])  # [T_total, S, 15]
    quality = np.maximum.reduceat(quality_rows, offsets, axis=0)
    latency = np.maximum.reduceat(latency_rows, offsets, axis=0)
    lengths = np.array([float(len(terms)) for terms in term_tuples])
    latency[:, :, _QUERY_LENGTH_COL] = lengths[:, None]
    return quality, latency


def quality_features(terms: tuple[str, ...] | list[str], stats: TermStatsIndex) -> FloatArray:
    """Table-I feature vector for one query on one shard (MAX-aggregated)."""
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([_quality_row(stats.get(term)) for term in terms])
    return np.asarray(rows.max(axis=0))


def latency_features(terms: tuple[str, ...] | list[str], stats: TermStatsIndex) -> FloatArray:
    """Table-II feature vector for one query on one shard (MAX-aggregated,
    query length passed through untouched)."""
    if not terms:
        raise ValueError("query has no terms")
    rows = np.stack([_latency_row(stats.get(term), len(terms)) for term in terms])
    return np.asarray(rows.max(axis=0))


def feature_table(
    terms: tuple[str, ...] | list[str], stats: TermStatsIndex, which: str = "quality"
) -> list[tuple[str, float]]:
    """Human-readable (name, value) pairs, used by the Table I/II benches."""
    if which == "quality":
        vector = quality_features(terms, stats)
        names = QUALITY_FEATURE_NAMES
    elif which == "latency":
        vector = latency_features(terms, stats)
        names = LATENCY_FEATURE_NAMES
    else:
        raise ValueError("which must be 'quality' or 'latency'")
    return list(zip(names, (float(v) for v in vector)))
