"""Fused cross-shard predictor inference.

The per-shard quality and latency models share one architecture (the
paper's 5x128 ReLU MLP), so all of a cluster's models of one kind fuse
into a single :class:`repro.nn.StackedSequential`: stacked weight tensors
``[S, in, out]``, stacked scaler statistics ``[S, 1, F]``, and — for the
latency models — a precomputed ``[S, n_bins]`` bin-center table.  One
batched matmul per layer then serves every ISN's prediction for a query,
replacing 3 x n_shards tiny forward passes with three fused ones.

**Equivalence guarantee.**  Each stack slice runs the identical 2-D
matmul the per-shard model would (``np.matmul`` over a 3-D operand), the
scaler transform is elementwise, and class/probability extraction mirrors
the per-shard methods operation for operation — so fused outputs are
bit-identical to the per-shard loop.  ``tests/test_batched_inference.py``
asserts this with Hypothesis.

Stacks snapshot weights at construction; rebuild after retraining (the
:class:`~repro.predictors.bank.PredictorBank` does this automatically).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.losses import softmax
from repro.predictors.arrays import FloatArray, IndexArray
from repro.nn.model import StackedSequential
from repro.predictors.latency import LatencyPredictor
from repro.predictors.quality import QualityPredictor


def _stack_scalers(
    models: Sequence[QualityPredictor | LatencyPredictor],
) -> tuple[FloatArray, FloatArray]:
    """Stack fitted StandardScaler statistics into ``[S, 1, F]`` tensors."""
    means = []
    stds = []
    for model in models:
        if model.scaler.mean_ is None or model.scaler.std_ is None:
            raise RuntimeError("cannot fuse an unfitted predictor")
        means.append(model.scaler.mean_)
        stds.append(model.scaler.std_)
    return np.stack(means)[:, None, :], np.stack(stds)[:, None, :]


def _shard_major(
    features: FloatArray, mean: FloatArray, std: FloatArray
) -> FloatArray:
    """Scale ``features[NQ, S, F]`` into the kernel's ``[S, NQ, 1, F]`` layout.

    The transpose is materialized C-contiguous *before* the scaler
    transform so every downstream ufunc/matmul allocates C-ordered
    intermediates (they inherit input layout); the copy and the
    elementwise transform are exact, so bit-identity is unaffected.
    """
    x = np.ascontiguousarray(features.transpose(1, 0, 2))[:, :, None, :]
    return np.asarray((x - mean[:, None]) / std[:, None])


class FusedQualityModels:
    """Every shard's :class:`QualityPredictor` (one K) as one fused stack."""

    def __init__(self, predictors: list[QualityPredictor]) -> None:
        if not predictors:
            raise ValueError("need at least one predictor to fuse")
        if any(not p.trained for p in predictors):
            raise RuntimeError("cannot fuse untrained predictors")
        self.k = predictors[0].k
        if any(p.k != self.k for p in predictors):
            raise ValueError("fused quality predictors must share one K")
        self.mean, self.std = _stack_scalers(predictors)
        self.stack = StackedSequential.from_models([p.model for p in predictors])

    @property
    def n_shards(self) -> int:
        return self.stack.n_stacked

    def predict_with_zero_prob(
        self, features: FloatArray
    ) -> tuple[IndexArray, FloatArray]:
        """All shards' (count, P[class 0]) for one query.

        ``features`` is the query's ``[S, F]`` Table-I matrix; returns
        ``(counts[S], p_zero[S])``.  Mirrors the per-shard
        ``QualityPredictor.predict_with_zero_prob`` exactly: argmax over
        the softmax probabilities, zero-class probability read off the
        same row.
        """
        counts, p_zero = self.predict_with_zero_prob_many(features[None])
        return counts[0], p_zero[0]

    def predict_with_zero_prob_many(
        self, features: FloatArray
    ) -> tuple[IndexArray, FloatArray]:
        """Whole-trace variant: ``[NQ, S, F] -> (counts[NQ, S], p_zero[NQ, S])``.

        One matmul per layer covers every (query, shard) pair; each pair's
        gemm slice keeps the single-row shape, so results stay
        bit-identical to query-at-a-time inference.  Work runs shard-major
        so consecutive slices reuse each shard's weight block.
        """
        x = _shard_major(features, self.mean, self.std)
        probs = softmax(self.stack.forward_batched(x))[:, :, 0, :]  # [S, NQ, K+1]
        return np.argmax(probs, axis=-1).T, probs[:, :, 0].T


class FusedLatencyModels:
    """Every shard's :class:`LatencyPredictor` as one fused stack."""

    def __init__(self, predictors: list[LatencyPredictor]) -> None:
        if not predictors:
            raise ValueError("need at least one predictor to fuse")
        if any(not p.trained for p in predictors):
            raise RuntimeError("cannot fuse untrained predictors")
        self.mean, self.std = _stack_scalers(predictors)
        self.stack = StackedSequential.from_models([p.model for p in predictors])
        # Bin -> milliseconds lookup, one row per shard, built with the
        # same center_ms calls the per-shard path makes.
        self.centers_ms: FloatArray = np.stack(
            [
                np.array(
                    [p.binning.center_ms(b) for b in range(p.binning.n_bins)]
                )
                for p in predictors
            ]
        )

    @property
    def n_shards(self) -> int:
        return self.stack.n_stacked

    def predict_service_ms(self, features: FloatArray) -> FloatArray:
        """All shards' default-frequency service predictions: ``[S]``.

        ``features`` is the query's ``[S, F]`` Table-II matrix.  Mirrors
        ``LatencyPredictor.predict_one_ms``: argmax over logits, then the
        bin's geometric-midpoint center.
        """
        return np.asarray(self.predict_service_ms_many(features[None])[0])

    def predict_service_ms_many(self, features: FloatArray) -> FloatArray:
        """Whole-trace variant: ``[NQ, S, F] -> service_ms[NQ, S]``."""
        x = _shard_major(features, self.mean, self.std)
        bins = np.argmax(self.stack.forward_batched(x)[:, :, 0, :], axis=-1)  # [S, NQ]
        return np.asarray(self.centers_ms[np.arange(self.n_shards)[:, None], bins]).T
