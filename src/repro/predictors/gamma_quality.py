"""Taily's Gamma-distribution quality estimator (Aly et al., SIGIR'13).

The distributed baseline the paper compares against, and the quality
estimator of the Cottage-withoutML ablation: each shard models per-term
document scores as a Gamma fitted from index-time moments, multi-term
queries combine by moment-matched summation, and the aggregator picks a
global score threshold ``s_c`` such that the expected number of documents
above it (across all shards) equals ``n_c``.  A shard's quality estimate is
its expected document count above ``s_c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.term_stats import TermStatsIndex
from repro.scoring.distributions import GammaFit, combine_gamma_sum, fit_gamma_moments


@dataclass(frozen=True)
class TailyEstimate:
    """Per-shard expected contributions for one query."""

    expected_docs: tuple[float, ...]
    threshold_score: float

    def selected(self, min_docs: float) -> list[int]:
        """Shards whose expected contribution clears Taily's ``v`` cutoff."""
        return [
            sid
            for sid, expected in enumerate(self.expected_docs)
            if expected >= min_docs
        ]


class TailyQualityEstimator:
    """Cluster-wide Gamma-based contribution estimator."""

    def __init__(self, stats_indexes: list[TermStatsIndex], n_c: int | None = None) -> None:
        if not stats_indexes:
            raise ValueError("need at least one shard's statistics")
        self.stats_indexes = stats_indexes
        # Taily's n_c: how deep a global pool the threshold models.  The
        # original paper uses hundreds for web-scale shards; 2K keeps the
        # same "a bit deeper than the answer" intent at reproduction scale.
        self.n_c = n_c if n_c is not None else 2 * stats_indexes[0].k
        # Estimates depend only on immutable index statistics; memoized so
        # trace replay doesn't refit Gammas on every arrival.
        self._estimate_cache: dict[tuple[str, ...], TailyEstimate] = {}
        self._counts_cache: dict[tuple[tuple[str, ...], int], list[int]] = {}

    def shard_fit(self, shard_id: int, terms: tuple[str, ...] | list[str]) -> GammaFit | None:
        """Moment-matched Gamma for a query's score sum on one shard.

        Returns None when no query term occurs on the shard (that shard
        cannot contribute anything).
        """
        fits = []
        for term in terms:
            stats = self.stats_indexes[shard_id].get(term)
            if stats.posting_length == 0:
                continue
            fits.append(
                fit_gamma_moments(stats.mean, stats.variance, stats.posting_length)
            )
        if not fits:
            return None
        return combine_gamma_sum(fits)

    def estimate(self, terms: tuple[str, ...] | list[str]) -> TailyEstimate:
        """Expected per-shard contributions to the global top-``n_c``."""
        key = tuple(terms)
        cached = self._estimate_cache.get(key)
        if cached is not None:
            return cached
        fits: list[GammaFit | None] = [
            self.shard_fit(sid, terms) for sid in range(len(self.stats_indexes))
        ]
        live = [fit for fit in fits if fit is not None]
        if not live:
            result = TailyEstimate(
                expected_docs=tuple(0.0 for _ in fits), threshold_score=0.0
            )
        else:
            threshold = self._solve_threshold(live)
            result = TailyEstimate(
                expected_docs=tuple(
                    fit.expected_above(threshold) if fit is not None else 0.0
                    for fit in fits
                ),
                threshold_score=threshold,
            )
        self._estimate_cache[key] = result
        return result

    def _solve_threshold(self, fits: list[GammaFit]) -> float:
        """Bisection for s_c with  sum_i E[docs_i above s_c] = n_c.

        The tail expectation is monotonically decreasing in the threshold,
        so plain bisection over [0, max plausible score] converges fast.
        """
        total_above = lambda s: sum(fit.expected_above(s) for fit in fits)
        hi = max(fit.quantile(1.0 - 1e-9) for fit in fits if fit.count > 0)
        lo = 0.0
        if total_above(lo) <= self.n_c:
            return lo  # fewer candidate docs than the pool: keep everything
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if total_above(mid) > self.n_c:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def quality_counts(
        self, terms: tuple[str, ...] | list[str], k: int
    ) -> list[int]:
        """Integer contribution estimates scaled to a top-``k`` answer.

        The Cottage-withoutML variant needs Q^K / Q^{K/2}-shaped integers;
        expected top-n_c counts are scaled down to the top-k pool
        proportionally and rounded.
        """
        key = (tuple(terms), k)
        cached = self._counts_cache.get(key)
        if cached is not None:
            return cached
        estimate = self.estimate(terms)
        total = sum(estimate.expected_docs)
        if total <= 0:
            counts = [0 for _ in estimate.expected_docs]
        else:
            scale = min(k / total, 1.0)
            counts = [int(round(expected * scale)) for expected in estimate.expected_docs]
        self._counts_cache[key] = counts
        return counts
