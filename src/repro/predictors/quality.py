"""The NN quality predictor (paper Section III-B).

Predicts, per query and per ISN, how many of the ISN's documents will land
in the final global top-K — an integer in [0, K], treated as a (K+1)-way
classification exactly as the paper does (sparse categorical cross-entropy
over "number of documents at an ISN that will be included in the
corresponding top-K results").
"""

from __future__ import annotations

import time

import numpy as np

from repro.nn.model import Sequential, TrainingHistory, mlp_classifier
from repro.nn.optimizers import Adam
from repro.nn.scaler import StandardScaler
from repro.predictors.arrays import FloatArray, IndexArray, IntArray
from repro.predictors.features import QUALITY_FEATURE_NAMES


class QualityPredictor:
    """Per-shard quality model: features (Table I) -> docs-in-top-K class.

    One instance per (shard, K) pair; Cottage runs two per shard (K and
    K/2) to feed Algorithm 1's Q^K and Q^{K/2}.
    """

    def __init__(
        self,
        k: int,
        hidden_layers: int = 5,
        hidden_units: int = 128,
        seed: int = 0,
        n_features: int | None = None,
    ) -> None:
        """``n_features`` defaults to the Table-I vector; extensions (e.g.
        the personalized feature set) pass their own width."""
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.scaler = StandardScaler()
        self.model: Sequential = mlp_classifier(
            n_features=n_features or len(QUALITY_FEATURE_NAMES),
            n_classes=k + 1,
            hidden_layers=hidden_layers,
            hidden_units=hidden_units,
            seed=seed,
        )
        self.trained = False

    def fit(
        self,
        features: FloatArray,
        labels: IntArray,
        iterations: int = 600,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
        eval_set: tuple[FloatArray, IntArray] | None = None,
        eval_every: int = 0,
    ) -> TrainingHistory:
        """Train on (query, shard) samples; labels are clipped to [0, K]."""
        labels = np.clip(np.asarray(labels, dtype=np.int64), 0, self.k)
        x = self.scaler.fit_transform(features)
        if eval_set is not None:
            eval_set = (self.scaler.transform(eval_set[0]),
                        np.clip(np.asarray(eval_set[1], dtype=np.int64), 0, self.k))
        history = self.model.fit(
            x,
            labels,
            iterations=iterations,
            batch_size=batch_size,
            optimizer=Adam(learning_rate=learning_rate),
            seed=seed,
            eval_set=eval_set,
            eval_every=eval_every,
        )
        self.trained = True
        return history

    def predict_counts(self, features: FloatArray) -> IndexArray:
        """Predicted docs-in-top-K for a batch of feature rows."""
        self._require_trained()
        return self.model.predict_classes(self.scaler.transform(np.atleast_2d(features)))

    def predict_one(self, features: FloatArray) -> int:
        return int(self.predict_counts(features)[0])

    def predict_with_zero_prob(self, features: FloatArray) -> tuple[int, float]:
        """Predicted count plus the model's probability of class 0.

        The zero probability lets callers gate *cut* decisions on model
        confidence: a predicted zero with low confidence is a shard that
        might still contribute, and cutting it is how quality is lost.
        """
        self._require_trained()
        probs = self.model.predict_proba(
            self.scaler.transform(np.atleast_2d(features))
        )[0]
        return int(np.argmax(probs)), float(probs[0])

    def accuracy(self, features: FloatArray, labels: IntArray) -> float:
        """Exact-class accuracy (the paper's quality-prediction accuracy)."""
        self._require_trained()
        labels = np.clip(np.asarray(labels, dtype=np.int64), 0, self.k)
        return float(np.mean(self.predict_counts(features) == labels))

    def inference_time_us(self, features: FloatArray, repeats: int = 50) -> float:
        """Median single-query inference latency in microseconds.

        The paper reports <=41 us per query for quality inference; this
        measures the same quantity on the numpy implementation.
        """
        self._require_trained()
        row = np.atleast_2d(features)[:1]
        timings = []
        for _ in range(repeats):
            # Real host latency *is* the quantity reported (paper's <=41 us).
            start = time.perf_counter()  # simlint: disable=DET-CLOCK -- wall-clock microbenchmark, never feeds the sim
            self.predict_counts(row)
            timings.append((time.perf_counter() - start) * 1e6)  # simlint: disable=DET-CLOCK -- wall-clock microbenchmark, never feeds the sim
        return float(np.median(timings))

    def state(self) -> dict[str, FloatArray]:
        """Serializable weights + scaler (see :meth:`load_state`)."""
        self._require_trained()
        assert self.scaler.mean_ is not None and self.scaler.std_ is not None
        state = {f"model.{k}": v for k, v in self.model.state().items()}
        state["scaler.mean"] = self.scaler.mean_
        state["scaler.std"] = self.scaler.std_
        return state

    def load_state(self, state: dict[str, FloatArray]) -> None:
        """Restore a trained predictor from :meth:`state` output."""
        self.model.load_state(
            {k[len("model."):]: v for k, v in state.items() if k.startswith("model.")}
        )
        self.scaler.mean_ = np.asarray(state["scaler.mean"], dtype=np.float64)
        self.scaler.std_ = np.asarray(state["scaler.std"], dtype=np.float64)
        self.trained = True

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("predictor has not been trained")
