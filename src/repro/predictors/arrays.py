"""Array type aliases shared across the predictor stack.

The predictor modules pass numpy arrays through every signature; under
``disallow_any_generics`` a bare ``np.ndarray`` is an error, and spelling
``NDArray[np.float64]`` at ~80 sites buries the signal.  Three aliases
cover the stack's actual dtypes:

* :data:`FloatArray` — feature matrices, service times, probabilities.
* :data:`IntArray` — training labels built with ``dtype=np.int64``.
* :data:`IndexArray` — ``argmax``/``searchsorted``-derived class indices
  (platform ``intp``).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import NDArray

FloatArray = NDArray[np.float64]
IntArray = NDArray[np.int64]
IndexArray = NDArray[np.intp]
