"""Regression-mode latency predictor (design-choice ablation).

The paper frames latency prediction as classification over latency bins
("more neurons on the output layer due to the higher variability").  The
obvious alternative is a single-output regressor.  This class implements
it — same Table-II features, same MLP trunk, one linear output trained
with MSE on *log* service time (service times are log-normal-ish, so the
log keeps the loss from being dominated by the tail).

``benchmarks/bench_ablation_latency_model.py`` compares the two; the
classifier's advantage is a calibrated discrete output the budget
algorithm can reason about, the regressor's is resolution between bin
centers.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import MeanSquaredError
from repro.nn.model import Sequential, TrainingHistory, mlp_classifier
from repro.nn.optimizers import Adam
from repro.nn.scaler import StandardScaler
from repro.predictors.arrays import FloatArray
from repro.predictors.features import LATENCY_FEATURE_NAMES


class LatencyRegressor:
    """Single-output service-time model: features -> log(service ms)."""

    def __init__(
        self,
        hidden_layers: int = 5,
        hidden_units: int = 128,
        seed: int = 0,
    ) -> None:
        self.scaler = StandardScaler()
        # mlp_classifier with one "class" is exactly an MLP with a single
        # linear output.
        self.model: Sequential = mlp_classifier(
            n_features=len(LATENCY_FEATURE_NAMES),
            n_classes=1,
            hidden_layers=hidden_layers,
            hidden_units=hidden_units,
            seed=seed,
        )
        self.trained = False

    def fit(
        self,
        features: FloatArray,
        service_ms: FloatArray,
        iterations: int = 300,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> TrainingHistory:
        service_ms = np.asarray(service_ms, dtype=np.float64)
        if np.any(service_ms <= 0):
            raise ValueError("service times must be positive")
        x = self.scaler.fit_transform(features)
        targets = np.log(service_ms)
        history = self.model.fit(
            x,
            targets,
            iterations=iterations,
            batch_size=batch_size,
            loss=MeanSquaredError(),
            optimizer=Adam(learning_rate=learning_rate),
            seed=seed,
        )
        self.trained = True
        return history

    def predict_service_ms(self, features: FloatArray) -> FloatArray:
        self._require_trained()
        log_pred = self.model.predict(
            self.scaler.transform(np.atleast_2d(features))
        )[:, 0]
        return np.asarray(np.exp(log_pred))

    def predict_one_ms(self, features: FloatArray) -> float:
        return float(self.predict_service_ms(features)[0])

    def accuracy(
        self,
        features: FloatArray,
        service_ms: FloatArray,
        rel_tolerance: float = 0.3,
    ) -> float:
        """Fraction predicted within ``rel_tolerance`` relative error —
        comparable to the classifier's ±1-bin criterion (~±30%)."""
        self._require_trained()
        service_ms = np.asarray(service_ms, dtype=np.float64)
        predicted = self.predict_service_ms(features)
        rel = np.abs(predicted - service_ms) / np.maximum(service_ms, 1e-9)
        return float(np.mean(rel <= rel_tolerance))

    def median_relative_error(
        self, features: FloatArray, service_ms: FloatArray
    ) -> float:
        self._require_trained()
        service_ms = np.asarray(service_ms, dtype=np.float64)
        predicted = self.predict_service_ms(features)
        return float(
            np.median(np.abs(predicted - service_ms) / np.maximum(service_ms, 1e-9))
        )

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("regressor has not been trained")
