"""Probability calibration analysis for the quality predictors.

Cottage's confidence-gated cutting (see CottagePolicy.cut_confidence)
trusts the quality model's softmax probability of the zero class.  That
trust is only justified if the probability is *calibrated*: among ISNs
reported zero with confidence ~p, a fraction ~p should truly contribute
nothing.  This module computes reliability diagrams and the expected
calibration error (ECE) for the zero-class probabilities, and
``benchmarks/bench_ext_calibration.py`` reports them for a trained bank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.metrics.quality import GroundTruth
from repro.predictors.arrays import FloatArray
from repro.predictors.bank import PredictorBank
from repro.predictors.features import quality_features
from repro.retrieval.query import Query


@dataclass(frozen=True)
class ReliabilityBin:
    """One confidence bucket of the reliability diagram."""

    lo: float
    hi: float
    mean_predicted: float
    empirical_rate: float
    count: int

    @property
    def gap(self) -> float:
        """|confidence - accuracy| for this bucket."""
        return abs(self.mean_predicted - self.empirical_rate)


@dataclass(frozen=True)
class CalibrationReport:
    """Reliability diagram + summary error for one predictor population."""

    bins: tuple[ReliabilityBin, ...]
    expected_calibration_error: float
    n_samples: int

    def render(self) -> str:
        lines = ["  confidence      empirical  count"]
        for b in self.bins:
            lines.append(
                f"  [{b.lo:.2f},{b.hi:.2f})  p={b.mean_predicted:.3f}  "
                f"true={b.empirical_rate:.3f}  {b.count:5d}"
            )
        lines.append(f"  ECE = {self.expected_calibration_error:.4f}")
        return "\n".join(lines)


def reliability(
    predicted: FloatArray, outcomes: NDArray[np.bool_], n_bins: int = 10
) -> CalibrationReport:
    """Reliability diagram of predicted probabilities vs binary outcomes.

    ``predicted[i]`` is the model's probability that event i happens;
    ``outcomes[i]`` is whether it did.  Empty buckets are dropped.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    outcomes = np.asarray(outcomes, dtype=bool)
    if predicted.shape != outcomes.shape:
        raise ValueError("predicted and outcomes must align")
    if predicted.size == 0:
        raise ValueError("no samples")
    if np.any((predicted < 0) | (predicted > 1)):
        raise ValueError("probabilities must be in [0, 1]")
    if n_bins < 1:
        raise ValueError("need at least one bin")

    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = []
    ece = 0.0
    for i in range(n_bins):
        lo, hi = float(edges[i]), float(edges[i + 1])
        if i == n_bins - 1:
            mask = (predicted >= lo) & (predicted <= hi)
        else:
            mask = (predicted >= lo) & (predicted < hi)
        count = int(mask.sum())
        if count == 0:
            continue
        mean_p = float(predicted[mask].mean())
        rate = float(outcomes[mask].mean())
        bins.append(
            ReliabilityBin(
                lo=lo, hi=hi, mean_predicted=mean_p,
                empirical_rate=rate, count=count,
            )
        )
        ece += (count / predicted.size) * abs(mean_p - rate)
    return CalibrationReport(
        bins=tuple(bins),
        expected_calibration_error=float(ece),
        n_samples=int(predicted.size),
    )


def zero_class_calibration(
    bank: PredictorBank,
    queries: list[Query],
    truth: GroundTruth | None = None,
    n_bins: int = 10,
) -> CalibrationReport:
    """Calibration of the bank's P(zero contribution) across all shards.

    Pools (query, shard) samples: the prediction is each quality-K model's
    zero-class probability, the outcome is whether the shard truly
    contributed nothing to the exhaustive top-K.
    """
    if truth is None:
        truth = GroundTruth.build(bank.cluster.searcher, queries, k=bank.k)
    predicted = []
    outcomes = []
    for query in queries:
        contributions = truth.get(query).contributions_k
        for sid in range(bank.n_shards):
            features = quality_features(query.terms, bank.stats_indexes[sid])
            _, p_zero = bank.quality_k_models[sid].predict_with_zero_prob(features)
            predicted.append(p_zero)
            outcomes.append(contributions.get(sid, 0) == 0)
    return reliability(np.asarray(predicted), np.asarray(outcomes), n_bins=n_bins)
