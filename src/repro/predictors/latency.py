"""The NN latency predictor (paper Section III-C).

Predicts a query's *service time at the default CPU frequency* on one ISN,
as a classification over log-spaced latency bins — the paper's latency
model likewise has "more neurons on the output layer due to the higher
variability of a query's service time".  Frequency scaling (Eq. 1) and
queueing (Eq. 2, "equivalent latency") are applied on top of the predicted
default-frequency service time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.nn.model import Sequential, TrainingHistory, mlp_classifier
from repro.nn.optimizers import Adam
from repro.nn.scaler import StandardScaler
from repro.predictors.arrays import FloatArray, IndexArray
from repro.predictors.features import LATENCY_FEATURE_NAMES


@dataclass(frozen=True)
class LatencyBinning:
    """Log-spaced service-time bins.

    ``edges_ms`` are the interior bin boundaries; a service time maps to
    the index of the first edge above it.  Bin centers (geometric midpoints)
    convert a predicted class back to milliseconds.
    """

    edges_ms: tuple[float, ...]

    @classmethod
    def logarithmic(
        cls, lo_ms: float = 0.5, hi_ms: float = 200.0, n_bins: int = 24
    ) -> "LatencyBinning":
        if not 0 < lo_ms < hi_ms:
            raise ValueError("need 0 < lo < hi")
        if n_bins < 2:
            raise ValueError("need at least two bins")
        edges = np.geomspace(lo_ms, hi_ms, n_bins - 1)
        return cls(edges_ms=tuple(float(e) for e in edges))

    @property
    def n_bins(self) -> int:
        return len(self.edges_ms) + 1

    def bin_of(self, service_ms: float) -> int:
        return int(np.searchsorted(self.edges_ms, service_ms, side="right"))

    def center_ms(self, bin_index: int) -> float:
        """Representative service time for a bin (geometric midpoint)."""
        edges = self.edges_ms
        if bin_index <= 0:
            return float(edges[0] / np.sqrt(edges[1] / edges[0]))
        if bin_index >= len(edges):
            return float(edges[-1] * np.sqrt(edges[-1] / edges[-2]))
        return float(np.sqrt(edges[bin_index - 1] * edges[bin_index]))


class LatencyPredictor:
    """Per-shard service-time model: features (Table II) -> latency bin."""

    def __init__(
        self,
        binning: LatencyBinning | None = None,
        hidden_layers: int = 5,
        hidden_units: int = 128,
        seed: int = 0,
    ) -> None:
        self.binning = binning or LatencyBinning.logarithmic()
        self.scaler = StandardScaler()
        self.model: Sequential = mlp_classifier(
            n_features=len(LATENCY_FEATURE_NAMES),
            n_classes=self.binning.n_bins,
            hidden_layers=hidden_layers,
            hidden_units=hidden_units,
            seed=seed,
        )
        self.trained = False

    def fit(
        self,
        features: FloatArray,
        service_ms: FloatArray,
        iterations: int = 300,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
        eval_set: tuple[FloatArray, FloatArray] | None = None,
        eval_every: int = 0,
    ) -> TrainingHistory:
        """Train from measured default-frequency service times (ms)."""
        labels = np.array([self.binning.bin_of(float(s)) for s in service_ms])
        x = self.scaler.fit_transform(features)
        if eval_set is not None:
            eval_labels = np.array(
                [self.binning.bin_of(float(s)) for s in eval_set[1]]
            )
            eval_set = (self.scaler.transform(eval_set[0]), eval_labels)
        history = self.model.fit(
            x,
            labels,
            iterations=iterations,
            batch_size=batch_size,
            optimizer=Adam(learning_rate=learning_rate),
            seed=seed,
            eval_set=eval_set,
            eval_every=eval_every,
        )
        self.trained = True
        return history

    def predict_bins(self, features: FloatArray) -> IndexArray:
        self._require_trained()
        return self.model.predict_classes(self.scaler.transform(np.atleast_2d(features)))

    def predict_service_ms(self, features: FloatArray) -> FloatArray:
        """Predicted default-frequency service times in milliseconds."""
        return np.array(
            [self.binning.center_ms(int(b)) for b in self.predict_bins(features)]
        )

    def predict_one_ms(self, features: FloatArray) -> float:
        return float(self.predict_service_ms(features)[0])

    def accuracy(
        self,
        features: FloatArray,
        service_ms: FloatArray,
        tolerance_bins: int = 1,
    ) -> float:
        """Fraction of queries predicted within ``tolerance_bins`` bins.

        With the default 24 log bins, one bin is ~±30% relative error —
        the "accurate latency prediction" bar behind the paper's 87%.
        """
        self._require_trained()
        true_bins = np.array([self.binning.bin_of(float(s)) for s in service_ms])
        predicted = self.predict_bins(features)
        return float(np.mean(np.abs(predicted - true_bins) <= tolerance_bins))

    def inference_time_us(self, features: FloatArray, repeats: int = 50) -> float:
        """Median single-query inference latency in microseconds."""
        self._require_trained()
        row = np.atleast_2d(features)[:1]
        timings = []
        for _ in range(repeats):
            # Real host latency *is* the quantity reported (paper's us/query).
            start = time.perf_counter()  # simlint: disable=DET-CLOCK -- wall-clock microbenchmark, never feeds the sim
            self.predict_bins(row)
            timings.append((time.perf_counter() - start) * 1e6)  # simlint: disable=DET-CLOCK -- wall-clock microbenchmark, never feeds the sim
        return float(np.median(timings))

    def state(self) -> dict[str, FloatArray]:
        """Serializable weights + scaler + binning edges."""
        self._require_trained()
        assert self.scaler.mean_ is not None and self.scaler.std_ is not None
        state = {f"model.{k}": v for k, v in self.model.state().items()}
        state["scaler.mean"] = self.scaler.mean_
        state["scaler.std"] = self.scaler.std_
        state["binning.edges"] = np.asarray(self.binning.edges_ms)
        return state

    def load_state(self, state: dict[str, FloatArray]) -> None:
        """Restore a trained predictor from :meth:`state` output."""
        edges = tuple(float(e) for e in state["binning.edges"])
        if edges != self.binning.edges_ms:
            raise ValueError("stored binning does not match this predictor's")
        self.model.load_state(
            {k[len("model."):]: v for k, v in state.items() if k.startswith("model.")}
        )
        self.scaler.mean_ = np.asarray(state["scaler.mean"], dtype=np.float64)
        self.scaler.std_ = np.asarray(state["scaler.std"], dtype=np.float64)
        self.trained = True

    def _require_trained(self) -> None:
        if not self.trained:
            raise RuntimeError("predictor has not been trained")
