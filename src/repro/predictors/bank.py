"""The per-ISN predictor bank.

Each ISN in the paper runs its own quality and latency models, trained on
its own index data ("each ISN has a separate neural network model trained
with its own index data").  The bank owns all per-shard models — a
Quality-K model, a Quality-K/2 model and a latency model per shard — trains
them, and serves the <Q^K, Q^{K/2}, L> prediction tuples Algorithm 1
consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.engine import SearchCluster
from repro.index.term_stats import TermStatsIndex
from repro.metrics.quality import GroundTruth
from repro.predictors.arrays import FloatArray
from repro.predictors.datasets import build_latency_dataset, build_quality_dataset
from repro.predictors.features import (
    TermFeatureCache,
    latency_features,
    quality_features,
    trace_feature_tensors,
)
from repro.predictors.fused import FusedLatencyModels, FusedQualityModels
from repro.predictors.latency import LatencyBinning, LatencyPredictor
from repro.predictors.quality import QualityPredictor
from repro.retrieval.query import Query
from repro.telemetry import NO_TELEMETRY, Telemetry


@dataclass(frozen=True)
class ISNPrediction:
    """One ISN's report for one query (paper Fig. 5 step 3).

    ``p_zero_k``/``p_zero_half`` are the quality models' softmax
    probabilities of the zero class — the confidence behind a "this shard
    contributes nothing" call.  Policies use them to cut only on confident
    zeros (see CottagePolicy.cut_confidence).
    """

    shard_id: int
    quality_k: int
    quality_half_k: int
    service_default_ms: float
    p_zero_k: float = 1.0
    p_zero_half: float = 1.0


@dataclass
class TrainingReport:
    """Per-shard held-out accuracy and inference cost after training."""

    quality_accuracy: list[float] = field(default_factory=list)
    quality_half_accuracy: list[float] = field(default_factory=list)
    latency_accuracy: list[float] = field(default_factory=list)
    quality_inference_us: list[float] = field(default_factory=list)
    latency_inference_us: list[float] = field(default_factory=list)

    @property
    def mean_quality_accuracy(self) -> float:
        return float(np.mean(self.quality_accuracy))

    @property
    def mean_latency_accuracy(self) -> float:
        return float(np.mean(self.latency_accuracy))


class PredictorBank:
    """All per-shard predictors for one cluster, plus their stats indexes."""

    def __init__(
        self,
        cluster: SearchCluster,
        k: int | None = None,
        binning: LatencyBinning | None = None,
        hidden_layers: int = 5,
        hidden_units: int = 128,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.k = k or cluster.k
        self.hidden_layers = hidden_layers
        self.hidden_units = hidden_units
        self.stats_indexes = [
            TermStatsIndex(shard, k=self.k) for shard in cluster.shards
        ]
        self.quality_k_models = [
            QualityPredictor(self.k, hidden_layers, hidden_units, seed=seed + sid)
            for sid in range(cluster.n_shards)
        ]
        half = max(self.k // 2, 1)
        self.quality_half_models = [
            QualityPredictor(half, hidden_layers, hidden_units, seed=seed + 100 + sid)
            for sid in range(cluster.n_shards)
        ]
        self.latency_models = [
            LatencyPredictor(binning, hidden_layers, hidden_units, seed=seed + 200 + sid)
            for sid in range(cluster.n_shards)
        ]
        self.trained = False
        # Memoized per-query reports.  Values are tuples on purpose: the
        # same object is handed to every caller, and an immutable tuple
        # means one caller's mutation can't corrupt later replays.
        self._prediction_cache: dict[tuple[str, ...], tuple[ISNPrediction, ...]] = {}
        # Per-term feature rows stacked across shards; term statistics are
        # immutable, so this cache survives retraining.
        self._feature_cache = TermFeatureCache(self.stats_indexes)
        self._fused: (
            tuple[FusedQualityModels, FusedQualityModels, FusedLatencyModels] | None
        ) = None
        # Telemetry (rebound per run; see bind_telemetry).  The tracer is
        # None when disabled so the memo-cache hot path pays one test.
        self._tracer = None
        self._m_cache_hits = NO_TELEMETRY.metrics.counter("bank.prediction_cache.hits")
        self._m_cache_misses = NO_TELEMETRY.metrics.counter(
            "bank.prediction_cache.misses"
        )

    def bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a run's telemetry session to the inference paths."""
        self._tracer = telemetry.tracer if telemetry.enabled else None
        self._m_cache_hits = telemetry.metrics.counter("bank.prediction_cache.hits")
        self._m_cache_misses = telemetry.metrics.counter(
            "bank.prediction_cache.misses"
        )

    @property
    def n_shards(self) -> int:
        return self.cluster.n_shards

    # ------------------------------------------------------------- training
    def train(
        self,
        queries: list[Query],
        truth: GroundTruth | None = None,
        quality_iterations: int = 600,
        latency_iterations: int = 300,
        holdout: float = 0.2,
        seed: int = 0,
    ) -> TrainingReport:
        """Train every per-shard model; report held-out accuracy.

        ``truth`` is built from the cluster's own exhaustive searcher when
        not supplied.
        """
        if len(queries) < 10:
            raise ValueError("need at least 10 training queries")
        if truth is None:
            truth = GroundTruth.build(self.cluster.searcher, queries, k=self.k)
        report = TrainingReport()
        for sid in range(self.n_shards):
            stats = self.stats_indexes[sid]
            q_data = build_quality_dataset(sid, stats, queries, truth)
            l_data = build_latency_dataset(sid, stats, self.cluster, queries)
            q_train, q_test = q_data.split(holdout, seed=seed)
            l_train, l_test = l_data.split(holdout, seed=seed)

            self.quality_k_models[sid].fit(
                q_train.features, q_train.labels_k,
                iterations=quality_iterations, seed=seed,
            )
            self.quality_half_models[sid].fit(
                q_train.features, q_train.labels_half_k,
                iterations=quality_iterations, seed=seed,
            )
            self.latency_models[sid].fit(
                l_train.features, l_train.service_ms,
                iterations=latency_iterations, seed=seed,
            )

            report.quality_accuracy.append(
                self.quality_k_models[sid].accuracy(q_test.features, q_test.labels_k)
            )
            report.quality_half_accuracy.append(
                self.quality_half_models[sid].accuracy(
                    q_test.features, q_test.labels_half_k
                )
            )
            report.latency_accuracy.append(
                self.latency_models[sid].accuracy(l_test.features, l_test.service_ms)
            )
            report.quality_inference_us.append(
                self.quality_k_models[sid].inference_time_us(q_test.features[0])
            )
            report.latency_inference_us.append(
                self.latency_models[sid].inference_time_us(l_test.features[0])
            )
        self.trained = True
        self._prediction_cache.clear()
        self._fused = None  # weights changed; stacks rebuild lazily
        return report

    # ------------------------------------------------------------- inference
    def fused_stacks(
        self,
    ) -> tuple[FusedQualityModels, FusedQualityModels, FusedLatencyModels]:
        """The three cross-shard model stacks (built lazily, cached).

        Quality-K, Quality-K/2 and latency models each fuse into one
        :class:`~repro.nn.StackedSequential`, so a query's 3 x n_shards
        forward passes collapse into three batched ones.
        """
        if not self.trained:
            raise RuntimeError("predictor bank has not been trained")
        if self._fused is None:
            self._fused = (
                FusedQualityModels(self.quality_k_models),
                FusedQualityModels(self.quality_half_models),
                FusedLatencyModels(self.latency_models),
            )
        return self._fused

    def predict(self, query: Query) -> tuple[ISNPrediction, ...]:
        """All ISNs' <Q^K, Q^{K/2}, L_default> reports for one query.

        Runs on the fused batched kernel (see :meth:`batch_predict`).
        Predictions are memoized per distinct query: the underlying index
        is immutable, so the reports never change across a trace replay.
        """
        if not self.trained:
            raise RuntimeError("predictor bank has not been trained")
        cached = self._prediction_cache.get(query.terms)
        if cached is not None:
            if self._tracer is not None:
                self._m_cache_hits.add()
            return cached
        if self._tracer is not None:
            self._m_cache_misses.add()
        return self.batch_predict([query])[0]

    def batch_predict(self, queries: list[Query]) -> list[tuple[ISNPrediction, ...]]:
        """Per-ISN reports for many queries through the batched plane.

        Feature matrices for every uncached distinct query are assembled
        in one pass over the stacked term-stat arrays
        (:func:`~repro.predictors.features.trace_feature_tensors`), then
        each query runs three fused cross-shard forward passes — one per
        model kind — instead of 3 x n_shards per-model calls.

        Outputs are bit-identical to the per-shard/per-query reference
        loop (:meth:`predict_loop`): the fused kernel evaluates one query
        row per pass, so every matmul has the exact shape the per-shard
        path used.  Results land in the same memo cache ``predict`` reads.
        """
        if not self.trained:
            raise RuntimeError("predictor bank has not been trained")
        missing = list(
            dict.fromkeys(
                q.terms for q in queries if q.terms not in self._prediction_cache
            )
        )
        if missing and self._tracer is not None:
            with self._tracer.span(
                "bank.batch_predict", track="bank",
                n_queries=len(queries), n_uncached=len(missing),
            ):
                self._predict_missing(missing)
        elif missing:
            self._predict_missing(missing)
        return [self._prediction_cache[q.terms] for q in queries]

    def _predict_missing(self, missing: list[tuple[str, ...]]) -> None:
        """Run the fused cross-shard passes for uncached term tuples."""
        quality_t, latency_t = trace_feature_tensors(missing, self._feature_cache)
        fused_k, fused_half, fused_latency = self.fused_stacks()
        counts_k, p_zero_k = fused_k.predict_with_zero_prob_many(quality_t)
        counts_half, p_zero_half = fused_half.predict_with_zero_prob_many(quality_t)
        service_ms = fused_latency.predict_service_ms_many(latency_t)
        shard_ids = range(self.n_shards)
        # tolist() converts to native int/float in one C pass, and the
        # positional map() builds each row of ISNPredictions without a
        # Python-level loop — both much cheaper than per-element numpy
        # scalar indexing here.
        for terms, row_k, row_half, row_ms, row_pk, row_ph in zip(
            missing,
            counts_k.tolist(),
            counts_half.tolist(),
            service_ms.tolist(),
            p_zero_k.tolist(),
            p_zero_half.tolist(),
        ):
            self._prediction_cache[terms] = tuple(
                map(ISNPrediction, shard_ids, row_k, row_half, row_ms, row_pk, row_ph)
            )

    def prewarm(self, queries: list[Query]) -> int:
        """Fill the prediction cache for a trace through the batched plane.

        Returns the number of distinct queries newly predicted.  Purely a
        wall-clock optimization: predictions are memoized pure functions,
        so prewarming never changes what any later ``predict`` returns.
        """
        before = len(self._prediction_cache)
        if queries:
            self.batch_predict(list(queries))
        return len(self._prediction_cache) - before

    def predict_loop(self, query: Query) -> tuple[ISNPrediction, ...]:
        """Reference per-shard/per-query inference path (pre-fusion).

        The original 3 x n_shards single-row loop, kept as the ground
        truth the equivalence tests and the inference microbenchmark
        compare the fused plane against.  Bypasses the prediction cache.
        """
        if not self.trained:
            raise RuntimeError("predictor bank has not been trained")
        predictions = []
        for sid in range(self.n_shards):
            stats = self.stats_indexes[sid]
            q_feat = quality_features(query.terms, stats)
            l_feat = latency_features(query.terms, stats)
            count_k, p_zero_k = self.quality_k_models[sid].predict_with_zero_prob(q_feat)
            count_half, p_zero_half = self.quality_half_models[
                sid
            ].predict_with_zero_prob(q_feat)
            predictions.append(
                ISNPrediction(
                    shard_id=sid,
                    quality_k=count_k,
                    quality_half_k=count_half,
                    service_default_ms=self.latency_models[sid].predict_one_ms(l_feat),
                    p_zero_k=p_zero_k,
                    p_zero_half=p_zero_half,
                )
            )
        return tuple(predictions)

    # ------------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Write every trained per-shard model to one ``.npz`` file."""
        if not self.trained:
            raise RuntimeError("cannot save an untrained bank")
        arrays: dict[str, FloatArray] = {}
        for sid in range(self.n_shards):
            for prefix, model in (
                (f"shard{sid}.quality_k", self.quality_k_models[sid]),
                (f"shard{sid}.quality_half", self.quality_half_models[sid]),
                (f"shard{sid}.latency", self.latency_models[sid]),
            ):
                for key, value in model.state().items():
                    arrays[f"{prefix}.{key}"] = value
        meta = {
            "k": self.k,
            "n_shards": self.n_shards,
            "hidden_layers": self.hidden_layers,
            "hidden_units": self.hidden_units,
            "format_version": 1,
        }
        arrays["meta"] = np.asarray(json.dumps(meta))
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path, cluster: SearchCluster) -> "PredictorBank":
        """Reconstruct a trained bank saved by :meth:`save`.

        ``cluster`` must be built from the same shards the bank was
        trained on (the term-statistics feature source lives there).
        """
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("format_version") != 1:
                raise ValueError(f"unsupported bank format in {path}")
            if meta["n_shards"] != cluster.n_shards:
                raise ValueError(
                    f"bank was trained on {meta['n_shards']} shards, cluster has "
                    f"{cluster.n_shards}"
                )
            bank = cls(
                cluster,
                k=int(meta["k"]),
                hidden_layers=int(meta["hidden_layers"]),
                hidden_units=int(meta["hidden_units"]),
            )
            states: dict[str, dict[str, FloatArray]] = {}
            for key in data.files:
                if key == "meta":
                    continue
                prefix, rest = key.split(".", 2)[0:2], key.split(".", 2)[2]
                states.setdefault(".".join(prefix), {})[rest] = data[key]
            for sid in range(bank.n_shards):
                bank.quality_k_models[sid].load_state(states[f"shard{sid}.quality_k"])
                bank.quality_half_models[sid].load_state(
                    states[f"shard{sid}.quality_half"]
                )
                bank.latency_models[sid].load_state(states[f"shard{sid}.latency"])
        bank.trained = True
        return bank

    def coordination_overhead_ms(self) -> float:
        """Aggregator-visible cost of the predict-and-report round.

        ISNs predict in parallel, so the round costs the slowest ISN's
        quality+latency inference.  The paper measures ~41 us + ~70 us;
        a conservative fixed 0.15 ms stands in (the numpy inference times
        measured by the training report are of the same order).
        """
        return 0.15
