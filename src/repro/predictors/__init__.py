"""Per-ISN quality and latency predictors (the paper's Section III B-C).

``features`` implements Tables I and II; ``quality``/``latency`` the two NN
models; ``gamma_quality`` the Taily baseline estimator; ``datasets`` the
training-set builders; ``bank`` the per-shard model collection Cottage
coordinates.
"""

from repro.predictors.bank import ISNPrediction, PredictorBank, TrainingReport
from repro.predictors.calibration import (
    CalibrationReport,
    ReliabilityBin,
    reliability,
    zero_class_calibration,
)
from repro.predictors.datasets import (
    ShardLatencyDataset,
    ShardQualityDataset,
    build_latency_dataset,
    build_quality_dataset,
)
from repro.predictors.features import (
    LATENCY_FEATURE_NAMES,
    QUALITY_FEATURE_NAMES,
    TermFeatureCache,
    feature_table,
    latency_feature_matrix,
    latency_features,
    quality_feature_matrix,
    quality_features,
    trace_feature_tensors,
)
from repro.predictors.fused import FusedLatencyModels, FusedQualityModels
from repro.predictors.gamma_quality import TailyEstimate, TailyQualityEstimator
from repro.predictors.latency import LatencyBinning, LatencyPredictor
from repro.predictors.quality import QualityPredictor
from repro.predictors.selector import (
    N_SELECTOR_FEATURES,
    SAFE_STRATEGIES,
    LearnedSelector,
    selector_feature_tensor,
)

__all__ = [
    "QUALITY_FEATURE_NAMES",
    "LATENCY_FEATURE_NAMES",
    "quality_features",
    "latency_features",
    "quality_feature_matrix",
    "latency_feature_matrix",
    "trace_feature_tensors",
    "TermFeatureCache",
    "FusedQualityModels",
    "FusedLatencyModels",
    "feature_table",
    "QualityPredictor",
    "LatencyPredictor",
    "LatencyBinning",
    "TailyQualityEstimator",
    "TailyEstimate",
    "ShardQualityDataset",
    "ShardLatencyDataset",
    "build_quality_dataset",
    "build_latency_dataset",
    "PredictorBank",
    "ISNPrediction",
    "TrainingReport",
    "LearnedSelector",
    "SAFE_STRATEGIES",
    "N_SELECTOR_FEATURES",
    "selector_feature_tensor",
    "CalibrationReport",
    "ReliabilityBin",
    "reliability",
    "zero_class_calibration",
]
