"""Training-set construction for the Cottage predictors.

Samples are (query, shard) pairs.  Quality labels come from exhaustive
ground truth (how many of the shard's documents reached the global top-K);
latency labels come from the cluster's service-time oracle at the default
frequency.  Both match how the paper's models are trained: "with a large
amount of observed samples from the past".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.engine import SearchCluster
from repro.index.term_stats import TermStatsIndex
from repro.metrics.quality import GroundTruth
from repro.predictors.arrays import FloatArray, IntArray
from repro.predictors.features import latency_features, quality_features
from repro.retrieval.query import Query


@dataclass(frozen=True)
class ShardQualityDataset:
    """Quality training data for one shard."""

    shard_id: int
    features: FloatArray  # (n, |Table I|)
    labels_k: IntArray  # docs in global top-K
    labels_half_k: IntArray  # docs in global top-K/2

    def split(self, holdout: float, seed: int = 0) -> tuple["ShardQualityDataset", "ShardQualityDataset"]:
        train_idx, test_idx = _split_indices(len(self.labels_k), holdout, seed)
        return (
            ShardQualityDataset(self.shard_id, self.features[train_idx],
                                self.labels_k[train_idx], self.labels_half_k[train_idx]),
            ShardQualityDataset(self.shard_id, self.features[test_idx],
                                self.labels_k[test_idx], self.labels_half_k[test_idx]),
        )


@dataclass(frozen=True)
class ShardLatencyDataset:
    """Latency training data for one shard."""

    shard_id: int
    features: FloatArray  # (n, |Table II|)
    service_ms: FloatArray  # measured at the default frequency

    def split(self, holdout: float, seed: int = 0) -> tuple["ShardLatencyDataset", "ShardLatencyDataset"]:
        train_idx, test_idx = _split_indices(len(self.service_ms), holdout, seed)
        return (
            ShardLatencyDataset(self.shard_id, self.features[train_idx], self.service_ms[train_idx]),
            ShardLatencyDataset(self.shard_id, self.features[test_idx], self.service_ms[test_idx]),
        )


def _split_indices(n: int, holdout: float, seed: int) -> tuple[IntArray, IntArray]:
    if not 0.0 < holdout < 1.0:
        raise ValueError("holdout fraction must be in (0, 1)")
    if n < 2:
        raise ValueError("dataset too small to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(int(round(n * holdout)), 1)
    return order[n_test:], order[:n_test]


def build_quality_dataset(
    shard_id: int,
    stats: TermStatsIndex,
    queries: list[Query],
    truth: GroundTruth,
) -> ShardQualityDataset:
    """Table-I features + exhaustive contribution labels for one shard."""
    rows = []
    labels_k = []
    labels_half = []
    for query in queries:
        rows.append(quality_features(query.terms, stats))
        entry = truth.get(query)
        labels_k.append(entry.contributions_k.get(shard_id, 0))
        labels_half.append(entry.contributions_half_k.get(shard_id, 0))
    return ShardQualityDataset(
        shard_id=shard_id,
        features=np.stack(rows),
        labels_k=np.asarray(labels_k, dtype=np.int64),
        labels_half_k=np.asarray(labels_half, dtype=np.int64),
    )


def build_latency_dataset(
    shard_id: int,
    stats: TermStatsIndex,
    cluster: SearchCluster,
    queries: list[Query],
) -> ShardLatencyDataset:
    """Table-II features + default-frequency service times for one shard."""
    rows = []
    service = []
    for query in queries:
        rows.append(latency_features(query.terms, stats))
        service.append(cluster.service_time_ms(query, shard_id))
    return ShardLatencyDataset(
        shard_id=shard_id,
        features=np.stack(rows),
        service_ms=np.asarray(service, dtype=np.float64),
    )
