"""The learned per-(query, shard) traversal-strategy selector.

Rank-safe traversal strategies (MaxScore, WAND, Block-Max WAND) return
the same top-k ranking (scores equal up to float-summation order, the
repo's strategy-equivalence contract) but their pruning effectiveness — and therefore
their :class:`~repro.retrieval.result.CostStats` and simulated service
time — diverges per query: queries dominated by one heavy term favour
MaxScore's essential-list split, while queries whose term upper bounds
are well separated favour the WAND family's pivot skipping.  The oracle
sweep (:mod:`repro.experiments.oracle_sweep`) measures that divergence
exhaustively; this module learns to predict the per-(query, shard) winner
from the concatenated Table-I and Table-II feature matrices the quality
and latency predictors consume.

One small per-shard MLP classifies each query into one of
:data:`SAFE_STRATEGIES`.  All shard models fuse into a single
:class:`~repro.nn.model.StackedSequential` mirroring
:class:`~repro.predictors.fused.FusedQualityModels`, so a whole trace's
choices come out of one batched matmul chain instead of a per-query
python loop.  Because every candidate is rank-safe, a wrong prediction
costs only time, never result quality — the selector is free to be cheap
and slightly wrong.

The selector implements the
:class:`~repro.retrieval.searcher.StrategySelector` protocol.  When the
dispatching policy hands it a time budget below ``downshift_budget_ms``
it abandons rank-safety and returns the conjunctive (AND) strategy — the
paper's quality-for-latency trade taken per query rather than per
cluster, with the unsafe arm confined to queries that could not meet
their budget anyway.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.losses import softmax
from repro.nn.model import Sequential, StackedSequential, mlp_classifier
from repro.nn.optimizers import Adam
from repro.nn.scaler import StandardScaler
from repro.predictors.arrays import FloatArray, IndexArray, IntArray
from repro.predictors.features import (
    LATENCY_FEATURE_NAMES,
    QUALITY_FEATURE_NAMES,
    TermFeatureCache,
    trace_feature_tensors,
)
from repro.predictors.fused import _shard_major
from repro.retrieval.query import Query
from repro.retrieval.searcher import StrategyChoice

# The rank-safe selection space: every member returns the exhaustive
# top-k ranking (scores equal up to float-summation order), so switching
# between them is invisible to result quality.  Conjunctive is
# deliberately NOT in this tuple — it changes results and is reachable
# only through the explicit budget downshift.
SAFE_STRATEGIES: tuple[str, ...] = ("maxscore", "wand", "block_max_wand")

#: Selector input width: the Table-I quality matrix and the Table-II
#: latency matrix, concatenated per shard.  The latency columns carry
#: most of the winner signal — strategy cost divergence tracks posting
#: list shape, exactly what Table II encodes.
N_SELECTOR_FEATURES = len(QUALITY_FEATURE_NAMES) + len(LATENCY_FEATURE_NAMES)

_FORMAT_VERSION = 1


def selector_feature_tensor(
    term_tuples: list[tuple[str, ...]], cache: TermFeatureCache
) -> FloatArray:
    """``[NQ, S, 25]`` — Table-I ++ Table-II features for many queries."""
    quality_t, latency_t = trace_feature_tensors(term_tuples, cache)
    return np.asarray(np.concatenate([quality_t, latency_t], axis=2))


class _ShardStrategyModel:
    """StandardScaler + small MLP over one shard's Table-I+II features."""

    def __init__(
        self,
        n_features: int,
        hidden_layers: int,
        hidden_units: int,
        seed: int,
    ) -> None:
        self.scaler = StandardScaler()
        self.model: Sequential = mlp_classifier(
            n_features=n_features,
            n_classes=len(SAFE_STRATEGIES),
            hidden_layers=hidden_layers,
            hidden_units=hidden_units,
            seed=seed,
        )

    def state(self) -> dict[str, FloatArray]:
        if self.scaler.mean_ is None or self.scaler.std_ is None:
            raise RuntimeError("shard model has not been fitted")
        state = {f"model.{k}": v for k, v in self.model.state().items()}
        state["scaler.mean"] = self.scaler.mean_
        state["scaler.std"] = self.scaler.std_
        return state

    def load_state(self, state: dict[str, FloatArray]) -> None:
        self.model.load_state(
            {k[len("model."):]: v for k, v in state.items() if k.startswith("model.")}
        )
        self.scaler.mean_ = np.asarray(state["scaler.mean"], dtype=np.float64)
        self.scaler.std_ = np.asarray(state["scaler.std"], dtype=np.float64)


class LearnedSelector:
    """Per-shard learned traversal picker with a fused batch path.

    Implements :class:`~repro.retrieval.searcher.StrategySelector`.
    Choices are memoized per distinct term tuple (term statistics are
    immutable), so trace replays and replica races see identical picks.

    ``confidence`` is a softmax-probability floor: predictions below it
    fall back to ``fallback_strategy`` (the sweep's best single static
    strategy), bounding how badly an under-trained model can regress the
    cluster against the static baseline.
    """

    name = "learned"

    def __init__(
        self,
        feature_cache: TermFeatureCache,
        hidden_layers: int = 2,
        hidden_units: int = 32,
        seed: int = 0,
        confidence: float = 0.0,
        fallback_strategy: str = "maxscore",
        downshift_budget_ms: float | None = None,
        downshift_strategy: str = "conjunctive",
    ) -> None:
        if fallback_strategy not in SAFE_STRATEGIES:
            raise ValueError(
                f"fallback must be rank-safe, one of {SAFE_STRATEGIES}"
            )
        self.feature_cache = feature_cache
        self.hidden_layers = hidden_layers
        self.hidden_units = hidden_units
        self.confidence = confidence
        self.fallback_strategy = fallback_strategy
        self.downshift_budget_ms = downshift_budget_ms
        self.downshift_strategy = downshift_strategy
        self.models = [
            _ShardStrategyModel(
                N_SELECTOR_FEATURES, hidden_layers, hidden_units, seed + sid
            )
            for sid in range(feature_cache.n_shards)
        ]
        self.trained = False
        self._stack: StackedSequential | None = None
        self._mean: FloatArray | None = None
        self._std: FloatArray | None = None
        # terms -> one rank-safe StrategyChoice per shard.  Tuples on
        # purpose: every caller shares the same immutable row.
        self._choice_cache: dict[tuple[str, ...], tuple[StrategyChoice, ...]] = {}
        self._downshift_choice = StrategyChoice(strategy=downshift_strategy)
        self.downshifts = 0

    @property
    def n_shards(self) -> int:
        return self.feature_cache.n_shards

    # ------------------------------------------------------------- training
    def fit(
        self,
        term_tuples: list[tuple[str, ...]],
        labels: IntArray,
        iterations: int = 300,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> list[float]:
        """Train every shard model from oracle-sweep winner labels.

        ``labels[NQ, S]`` holds indices into :data:`SAFE_STRATEGIES` —
        the per-(query, shard) cheapest rank-safe strategy the sweep
        measured.  Returns per-shard training-set accuracy.
        """
        labels = np.asarray(labels)
        if labels.shape != (len(term_tuples), self.n_shards):
            raise ValueError(
                f"labels must be [n_queries={len(term_tuples)}, "
                f"n_shards={self.n_shards}], got {labels.shape}"
            )
        features = selector_feature_tensor(term_tuples, self.feature_cache)
        accuracies = []
        for sid, shard_model in enumerate(self.models):
            x = shard_model.scaler.fit_transform(features[:, sid, :])
            y = labels[:, sid]
            shard_model.model.fit(
                x, y,
                iterations=iterations,
                batch_size=batch_size,
                optimizer=Adam(learning_rate=learning_rate),
                seed=seed + sid,
            )
            predicted = shard_model.model.predict_classes(x)
            accuracies.append(float(np.mean(predicted == y)))
        self.trained = True
        self._stack = None
        self._mean = None
        self._std = None
        self._choice_cache.clear()
        return accuracies

    # ------------------------------------------------------------- inference
    def _fused(self) -> tuple[StackedSequential, FloatArray, FloatArray]:
        if not self.trained:
            raise RuntimeError("selector has not been trained")
        if self._stack is None:
            self._stack = StackedSequential.from_models(
                [m.model for m in self.models]
            )
            means: list[FloatArray] = []
            stds: list[FloatArray] = []
            for m in self.models:
                assert m.scaler.mean_ is not None and m.scaler.std_ is not None
                means.append(m.scaler.mean_)
                stds.append(m.scaler.std_)
            self._mean = np.stack(means)[:, None, :]
            self._std = np.stack(stds)[:, None, :]
        assert self._mean is not None and self._std is not None
        return self._stack, self._mean, self._std

    def predict_strategies(self, term_tuples: list[tuple[str, ...]]) -> IndexArray:
        """Predicted strategy indices for many queries: ``[NQ, S]``.

        One fused forward pass over the stacked shard models (the
        :class:`~repro.predictors.fused.FusedQualityModels` layout); low
        confidence rows are replaced by the fallback strategy's index.
        """
        stack, mean, std = self._fused()
        features = selector_feature_tensor(term_tuples, self.feature_cache)
        x = _shard_major(features, mean, std)
        probs = softmax(stack.forward_batched(x))[:, :, 0, :]  # [S, NQ, 3]
        picked = np.argmax(probs, axis=-1)  # [S, NQ]
        if self.confidence > 0.0:
            top = np.max(probs, axis=-1)
            picked = np.where(
                top >= self.confidence,
                picked,
                SAFE_STRATEGIES.index(self.fallback_strategy),
            )
        return np.asarray(picked).T

    def _choices_for(self, terms: tuple[str, ...]) -> tuple[StrategyChoice, ...]:
        cached = self._choice_cache.get(terms)
        if cached is not None:
            return cached
        self._predict_missing([terms])
        return self._choice_cache[terms]

    def _predict_missing(self, missing: list[tuple[str, ...]]) -> None:
        picked = self.predict_strategies(missing)
        for terms, row in zip(missing, picked.tolist()):
            self._choice_cache[terms] = tuple(
                StrategyChoice(strategy=SAFE_STRATEGIES[idx]) for idx in row
            )

    def choose(
        self, query: Query, shard_id: int, budget_ms: float | None
    ) -> StrategyChoice | None:
        """The dispatch hook: one shard's traversal pick for one query.

        A budget below ``downshift_budget_ms`` overrides the learned
        rank-safe pick with the conjunctive downshift.  Prewarm passes
        ``budget_ms=None`` (the policy has not run yet) and therefore
        always sees — and caches — the rank-safe choice; a later
        downshifted dispatch evaluates lazily against the memoized
        retrieval layer, so outcomes never depend on prewarm order.
        """
        if (
            budget_ms is not None
            and self.downshift_budget_ms is not None
            and budget_ms < self.downshift_budget_ms
        ):
            self.downshifts += 1
            return self._downshift_choice
        return self._choices_for(query.terms)[shard_id]

    def prewarm(self, queries: list[Query]) -> int:
        """Batch-fill the choice cache for a trace; returns new entries.

        Called by the serving orchestrator before retrieval prewarm so
        the retrieval plan reflects the selector's picks.  Purely a
        wall-clock optimization — choices are memoized pure functions.
        """
        missing = list(
            dict.fromkeys(
                q.terms for q in queries if q.terms not in self._choice_cache
            )
        )
        if missing:
            self._predict_missing(missing)
        return len(missing)

    # ------------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Write every trained shard model to one ``.npz`` file."""
        if not self.trained:
            raise RuntimeError("cannot save an untrained selector")
        arrays: dict[str, FloatArray] = {}
        for sid, shard_model in enumerate(self.models):
            for key, value in shard_model.state().items():
                arrays[f"shard{sid}.{key}"] = value
        meta = {
            "n_shards": self.n_shards,
            "n_features": N_SELECTOR_FEATURES,
            "hidden_layers": self.hidden_layers,
            "hidden_units": self.hidden_units,
            "strategies": list(SAFE_STRATEGIES),
            "confidence": self.confidence,
            "fallback_strategy": self.fallback_strategy,
            "format_version": _FORMAT_VERSION,
        }
        arrays["meta"] = np.asarray(json.dumps(meta))
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(
        cls,
        path: str | Path,
        feature_cache: TermFeatureCache,
        downshift_budget_ms: float | None = None,
    ) -> "LearnedSelector":
        """Reconstruct a trained selector saved by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("format_version") != _FORMAT_VERSION:
                raise ValueError(f"unsupported selector format in {path}")
            if meta.get("n_features", N_SELECTOR_FEATURES) != N_SELECTOR_FEATURES:
                raise ValueError(
                    f"selector was trained on {meta['n_features']} features, "
                    f"this build extracts {N_SELECTOR_FEATURES}"
                )
            if tuple(meta["strategies"]) != SAFE_STRATEGIES:
                raise ValueError(
                    f"selector was trained over {meta['strategies']}, this "
                    f"build knows {list(SAFE_STRATEGIES)}"
                )
            if meta["n_shards"] != feature_cache.n_shards:
                raise ValueError(
                    f"selector was trained on {meta['n_shards']} shards, "
                    f"cluster has {feature_cache.n_shards}"
                )
            selector = cls(
                feature_cache,
                hidden_layers=int(meta["hidden_layers"]),
                hidden_units=int(meta["hidden_units"]),
                confidence=float(meta["confidence"]),
                fallback_strategy=str(meta["fallback_strategy"]),
                downshift_budget_ms=downshift_budget_ms,
            )
            states: dict[int, dict[str, FloatArray]] = {}
            for key in data.files:
                if key == "meta":
                    continue
                prefix, rest = key.split(".", 1)
                states.setdefault(int(prefix[len("shard"):]), {})[rest] = data[key]
            for sid, shard_model in enumerate(selector.models):
                shard_model.load_state(states[sid])
        selector.trained = True
        return selector
