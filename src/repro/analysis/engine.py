"""The simlint engine: file discovery, parsing, pragmas, cache, baseline.

The pipeline per file::

    read -> sha256 -> cache hit?  ------------------------------> findings
                 \\-> miss: ast.parse -> run applicable rules
                          -> drop pragma-suppressed lines -> cache.put

and per run: findings from all files, sorted, minus the baseline.

Pragma syntax (suppression is part of the file content, so it is
hash-stable and cacheable)::

    expr_using_wall_clock()  # simlint: disable=DET-CLOCK -- why it is ok
    another()                # simlint: disable=DET-RNG,MUT-DEFAULT
    anything()               # simlint: disable=all -- escape hatch

The pragma must sit on the physical line the finding points at (the
first line of a multi-line construct).  Everything after ``--`` is the
human justification; simlint requires only the rule list.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import ResultCache, content_hash
from repro.analysis.findings import Finding, LintError, LintReport
from repro.analysis.registry import (
    FileContext,
    Rule,
    all_rules,
    rules_signature,
)

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_\-,\s]+?)(?:--.*)?$")

#: directories never worth descending into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})

DEFAULT_CACHE_NAME = ".simlint-cache.json"
DEFAULT_BASELINE_NAME = "simlint-baseline.json"


def parse_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids disabled on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "simlint" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            pragmas[lineno] = rules
    return pragmas


def _suppressed(finding: Finding, pragmas: dict[int, frozenset[str]]) -> bool:
    rules = pragmas.get(finding.line)
    return rules is not None and ("ALL" in rules or finding.rule.upper() in rules)


def module_path_of(rel_path: str) -> str:
    """Path inside the ``repro`` package, used for rule scoping.

    ``src/repro/core/budget.py`` -> ``core/budget.py``; paths without a
    ``repro`` component (fixture trees in tests) are used as-is.
    """
    parts = rel_path.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return rel_path


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or any(
                    part.endswith(".egg-info") for part in candidate.parts
                ):
                    continue
                found.add(candidate)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


@dataclass
class LintEngine:
    """One configured analysis run.

    ``root`` anchors the repo-relative paths findings report (and the
    default cache/baseline locations); ``rules`` defaults to the full
    registry.
    """

    root: Path
    rules: tuple[Rule, ...] = ()
    cache_path: Path | None = None
    baseline: Baseline | None = None

    def __post_init__(self) -> None:
        self.root = self.root.resolve()
        if not self.rules:
            self.rules = all_rules()
        self._cache = ResultCache(self.cache_path, rules_signature(self.rules))

    def rel_path(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    def check_file(self, path: Path) -> tuple[list[Finding], int, LintError | None]:
        """Lint one file: (findings, n_pragma_suppressed, error)."""
        rel = self.rel_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [], 0, LintError(rel, f"unreadable: {exc}")

        digest = content_hash(source)
        cached = self._cache.get(rel, digest)
        if cached is not None:
            return cached, 0, None

        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            lineno = exc.lineno or 1
            return [], 0, LintError(rel, f"syntax error at line {lineno}: {exc.msg}")

        lines = source.splitlines()
        ctx = FileContext(
            path=rel,
            module_path=module_path_of(rel),
            source=source,
            tree=tree,
            lines=lines,
        )
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(ctx.module_path):
                raw.extend(rule.check(ctx))

        pragmas = parse_pragmas(lines)
        findings = [f for f in raw if not _suppressed(f, pragmas)]
        findings.sort()
        self._cache.put(rel, digest, findings)
        return findings, len(raw) - len(findings), None

    def run(self, paths: Iterable[Path]) -> LintReport:
        """Lint ``paths`` (files or directory trees) and filter baselines."""
        report = LintReport()
        collected: list[Finding] = []
        for path in discover_files(paths):
            findings, n_pragma, error = self.check_file(path)
            report.files_scanned += 1
            report.pragma_suppressed += n_pragma
            if error is not None:
                report.errors.append(error)
            collected.extend(findings)
        collected.sort()
        if self.baseline is not None and len(self.baseline):
            collected, suppressed = self.baseline.filter(collected)
            report.baseline_suppressed = suppressed
        report.findings = collected
        report.cache_hits = self._cache.hits
        self._cache.save()
        return report


def run_lint(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    rules: tuple[Rule, ...] | None = None,
    use_cache: bool = True,
    cache_path: Path | str | None = None,
    baseline_path: Path | str | None = None,
) -> LintReport:
    """One-call API: lint ``paths`` with repo-default cache and baseline.

    ``root`` defaults to the current directory; the cache lives at
    ``<root>/.simlint-cache.json`` and the baseline (when present) at
    ``<root>/simlint-baseline.json``.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    resolved_cache: Path | None = None
    if use_cache:
        resolved_cache = (
            Path(cache_path) if cache_path is not None else root_path / DEFAULT_CACHE_NAME
        )
    baseline_file = (
        Path(baseline_path) if baseline_path is not None else root_path / DEFAULT_BASELINE_NAME
    )
    baseline = Baseline.load(baseline_file) if baseline_file.exists() else None
    engine = LintEngine(
        root=root_path,
        rules=rules or (),
        cache_path=resolved_cache,
        baseline=baseline,
    )
    return engine.run([Path(p) for p in paths])
