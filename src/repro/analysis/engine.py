"""The simlint engine: discovery, facts, per-file rules, project rules.

The run is three phases:

**Phase A (per file, parallelizable).**  Read, hash, cache lookup.  On a
miss, parse once and extract both the per-file findings and the
:class:`~repro.analysis.graph.ModuleFacts` record (imports, function
table, call sites, taint sources, expanded pragmas) the whole-program
passes need.  Facts are JSON round-trippable, so a warm run rebuilds
them from the cache without touching ``ast`` at all —
``report.files_parsed`` counts actual parses and is 0 on a fully warm
run.

**Phase B (graph).**  Assemble every module's facts into a
:class:`~repro.analysis.graph.ProjectContext` (import edges, name
bindings, call resolution) and compute each file's dependency-closure
hash.

**Phase C (project rules).**  If *every* file's dependency hash matches
its cached value, the cached project findings are served and the
fixpoints never run.  Otherwise the whole-program rules
(``DET-*-FLOW``, ``PAR-PICKLE-FLOW``, ``ARCH-LAYER``) run over the
graph and every entry is refreshed.  Project findings anchor to one
line in one file, so pragma suppression and the baseline treat them
exactly like per-file findings.

Pragma semantics live in :mod:`repro.analysis.pragmas`: a pragma governs
the smallest enclosing *statement* (header-only for compound
statements), and pragmas naming unknown rule ids produce warnings.
"""

from __future__ import annotations

import ast
import concurrent.futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import ResultCache, content_hash
from repro.analysis.findings import Finding, LintError, LintReport, LintWarning
from repro.analysis.graph import (
    ModuleFacts,
    ProjectContext,
    dotted_module_name,
    extract_facts,
)
from repro.analysis.pragmas import (
    expand_pragmas,
    parse_pragmas,
    unknown_rule_warnings,
)
from repro.analysis.registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    rules_signature,
)

#: directories never worth descending into
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis"})

DEFAULT_CACHE_NAME = ".simlint-cache.json"
DEFAULT_BASELINE_NAME = "simlint-baseline.json"


def _suppressed(finding: Finding, pragmas: dict[int, frozenset[str]]) -> bool:
    rules = pragmas.get(finding.line)
    return rules is not None and ("ALL" in rules or finding.rule.upper() in rules)


def module_path_of(rel_path: str) -> str:
    """Path inside the ``repro`` package, used for rule scoping.

    ``src/repro/core/budget.py`` -> ``core/budget.py``; paths without a
    ``repro`` component (fixture trees in tests) are used as-is.
    """
    parts = rel_path.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    return rel_path


def discover_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = set(candidate.parts)
                if parts & _SKIP_DIRS or any(
                    part.endswith(".egg-info") for part in candidate.parts
                ):
                    continue
                found.add(candidate)
        elif path.is_file():
            found.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


@dataclass
class _FileState:
    """Everything phase A produced for one file."""

    rel: str
    module_path: str
    source_hash: str
    facts: ModuleFacts | None = None
    findings: list[Finding] = field(default_factory=list)
    warnings: list[LintWarning] = field(default_factory=list)
    suppressed: int = 0
    error: LintError | None = None
    parsed: bool = False
    from_cache: bool = False
    # project-phase slots (phase C fills these in)
    dep_hash: str | None = None
    cached_dep_hash: str | None = None
    project_findings: list[Finding] | None = None
    project_suppressed: int = 0


def _analyze_source(
    rel: str, module_path: str, source: str, rules: Sequence[Rule]
) -> _FileState:
    """Parse one file and run the per-file rules (pure; process-safe)."""
    state = _FileState(
        rel=rel, module_path=module_path, source_hash=content_hash(source)
    )
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        state.error = LintError(rel, f"syntax error at line {lineno}: {exc.msg}")
        return state
    state.parsed = True
    lines = source.splitlines()
    raw_pragmas = parse_pragmas(lines)
    pragmas = expand_pragmas(tree, raw_pragmas)
    state.warnings = unknown_rule_warnings(
        rel, raw_pragmas, [rule.id for rule in all_rules()]
    )
    ctx = FileContext(
        path=rel, module_path=module_path, source=source, tree=tree, lines=lines
    )
    raw: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if rule.applies_to(module_path):
            raw.extend(rule.check(ctx))
    state.findings = sorted(f for f in raw if not _suppressed(f, pragmas))
    state.suppressed = len(raw) - len(state.findings)
    state.facts = extract_facts(tree, rel, module_path, pragmas)
    return state


def _worker_analyze(payload: tuple[str, str, str, tuple[str, ...]]) -> _FileState:
    """Module-level worker so states pickle across the pool boundary."""
    rel, module_path, source, rule_ids = payload
    from repro.analysis.registry import get_rules

    return _analyze_source(rel, module_path, source, get_rules(rule_ids))


@dataclass
class LintEngine:
    """One configured analysis run.

    ``root`` anchors the repo-relative paths findings report (and the
    default cache/baseline locations); ``rules`` defaults to the full
    registry; ``jobs`` > 1 parses cache misses in a process pool.
    """

    root: Path
    rules: tuple[Rule, ...] = ()
    cache_path: Path | None = None
    baseline: Baseline | None = None
    jobs: int = 1

    def __post_init__(self) -> None:
        self.root = self.root.resolve()
        if not self.rules:
            self.rules = all_rules()
        self.project_rules = tuple(
            rule for rule in self.rules if isinstance(rule, ProjectRule)
        )
        self._cache = ResultCache(self.cache_path, rules_signature(self.rules))

    def rel_path(self, path: Path) -> str:
        resolved = path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()

    # -- phase A: per-file -------------------------------------------------

    def _load_states(self, paths: Iterable[Path]) -> list[_FileState]:
        states: list[_FileState] = []
        misses: list[tuple[int, str]] = []  # (state index, source)
        for path in discover_files(paths):
            rel = self.rel_path(path)
            try:
                source = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                state = _FileState(rel=rel, module_path=module_path_of(rel),
                                   source_hash="")
                state.error = LintError(rel, f"unreadable: {exc}")
                states.append(state)
                continue
            digest = content_hash(source)
            entry = self._cache.get_entry(rel, digest)
            state = self._state_from_entry(rel, digest, entry)
            if state is None:
                state = _FileState(
                    rel=rel, module_path=module_path_of(rel), source_hash=digest
                )
                misses.append((len(states), source))
            states.append(state)
        self._analyze_misses(states, misses)
        return states

    def _state_from_entry(
        self, rel: str, digest: str, entry: dict[str, object] | None
    ) -> _FileState | None:
        if entry is None:
            return None
        try:
            facts_json = entry.get("facts")
            facts = (
                ModuleFacts.from_json(facts_json)  # type: ignore[arg-type]
                if facts_json is not None
                else None
            )
            findings = [
                Finding.from_json(item)
                for item in entry["findings"]  # type: ignore[union-attr]
            ]
            warnings = [
                LintWarning.from_json(item)
                for item in entry["warnings"]  # type: ignore[union-attr]
            ]
            project_json = entry.get("project")
            project = (
                [Finding.from_json(item) for item in project_json]  # type: ignore[union-attr]
                if project_json is not None
                else None
            )
            state = _FileState(
                rel=rel,
                module_path=module_path_of(rel),
                source_hash=digest,
                facts=facts,
                findings=findings,
                warnings=warnings,
                suppressed=int(entry.get("suppressed", 0)),  # type: ignore[arg-type]
                from_cache=True,
            )
            dep_hash = entry.get("dep_hash")
            state.cached_dep_hash = str(dep_hash) if dep_hash is not None else None
            state.project_findings = project
            state.project_suppressed = int(entry.get("project_suppressed", 0))  # type: ignore[arg-type]
            return state
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def _analyze_misses(
        self, states: list[_FileState], misses: list[tuple[int, str]]
    ) -> None:
        if not misses:
            return
        if self.jobs > 1 and len(misses) > 1:
            rule_ids = tuple(rule.id for rule in self.rules)
            payloads = [
                (states[index].rel, states[index].module_path, source, rule_ids)
                for index, source in misses
            ]
            workers = min(self.jobs, len(misses))
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                results = list(pool.map(_worker_analyze, payloads))
            for (index, _source), result in zip(misses, results):
                states[index] = result
        else:
            for index, source in misses:
                state = states[index]
                states[index] = _analyze_source(
                    state.rel, state.module_path, source, self.rules
                )

    # -- phase B: the project graph ---------------------------------------

    def build_project(self, states: Sequence[_FileState]) -> ProjectContext:
        facts: dict[str, ModuleFacts] = {}
        hashes: dict[str, str] = {}
        for state in states:
            if state.facts is None:
                continue
            module = dotted_module_name(state.module_path)
            facts[module] = state.facts
            hashes[module] = state.source_hash
        return ProjectContext.build(facts, hashes)

    def graph(self, paths: Iterable[Path]) -> ProjectContext:
        """Phase A + B only: the project graph for ``--graph`` exports."""
        project = self.build_project(self._load_states(paths))
        self._cache.save()
        return project

    # -- phase C: project rules --------------------------------------------

    def _run_project_rules(
        self, states: list[_FileState], report: LintReport
    ) -> None:
        if not self.project_rules:
            for state in states:
                state.project_findings = []
            return
        project = self.build_project(states)
        for state in states:
            if state.facts is not None:
                state.dep_hash = project.dependency_hash(state.facts.module)
        analyzable = [s for s in states if s.facts is not None]
        warm = all(
            s.project_findings is not None and s.cached_dep_hash == s.dep_hash
            for s in analyzable
        )
        if warm and analyzable:
            report.project_cache_hits = len(analyzable)
            return
        by_rel: dict[str, list[Finding]] = {s.rel: [] for s in analyzable}
        raw_count = 0
        for rule in self.project_rules:
            for finding in rule.check_project(project):
                raw_count += 1
                by_rel.setdefault(finding.path, []).append(finding)
        for state in analyzable:
            raw = by_rel.get(state.rel, [])
            assert state.facts is not None
            kept = sorted(
                f for f in raw if not _suppressed(f, state.facts.pragmas)
            )
            state.project_findings = kept
            state.project_suppressed = len(raw) - len(kept)

    # -- the run ------------------------------------------------------------

    def run(self, paths: Iterable[Path]) -> LintReport:
        """Lint ``paths`` (files or directory trees) and filter baselines."""
        report = LintReport()
        states = self._load_states(paths)
        self._run_project_rules(states, report)
        collected: list[Finding] = []
        for state in states:
            report.files_scanned += 1
            if state.parsed:
                report.files_parsed += 1
            if state.from_cache:
                report.cache_hits += 1
            report.pragma_suppressed += state.suppressed + state.project_suppressed
            report.warnings.extend(state.warnings)
            if state.error is not None:
                report.errors.append(state.error)
            collected.extend(state.findings)
            collected.extend(state.project_findings or [])
            if state.error is None and state.facts is not None:
                self._cache.put_entry(state.rel, _entry_for(state))
        collected.sort()
        if self.baseline is not None and len(self.baseline):
            collected, suppressed = self.baseline.filter(collected)
            report.baseline_suppressed = suppressed
        report.findings = collected
        report.warnings.sort(key=lambda w: (w.path, w.line, w.message))
        self._cache.save()
        return report

    def check_file(self, path: Path) -> tuple[list[Finding], int, LintError | None]:
        """Single-file per-file analysis (no project phase); kept for tests."""
        rel = self.rel_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [], 0, LintError(rel, f"unreadable: {exc}")
        state = _analyze_source(rel, module_path_of(rel), source, self.rules)
        return state.findings, state.suppressed, state.error


def _entry_for(state: _FileState) -> dict[str, object]:
    """The cache schema: facts + both finding sets + the dependency key."""
    assert state.facts is not None
    return {
        "hash": state.source_hash,
        "facts": state.facts.to_json(),
        "findings": [f.to_json() for f in state.findings],
        "warnings": [w.to_json() for w in state.warnings],
        "suppressed": state.suppressed,
        "dep_hash": state.dep_hash,
        "project": (
            [f.to_json() for f in state.project_findings]
            if state.project_findings is not None
            else None
        ),
        "project_suppressed": state.project_suppressed,
    }


def run_lint(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    rules: tuple[Rule, ...] | None = None,
    use_cache: bool = True,
    cache_path: Path | str | None = None,
    baseline_path: Path | str | None = None,
    jobs: int = 1,
) -> LintReport:
    """One-call API: lint ``paths`` with repo-default cache and baseline.

    ``root`` defaults to the current directory; the cache lives at
    ``<root>/.simlint-cache.json`` and the baseline (when present) at
    ``<root>/simlint-baseline.json``.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    resolved_cache: Path | None = None
    if use_cache:
        resolved_cache = (
            Path(cache_path) if cache_path is not None else root_path / DEFAULT_CACHE_NAME
        )
    baseline_file = (
        Path(baseline_path) if baseline_path is not None else root_path / DEFAULT_BASELINE_NAME
    )
    baseline = Baseline.load(baseline_file) if baseline_file.exists() else None
    engine = LintEngine(
        root=root_path,
        rules=rules or (),
        cache_path=resolved_cache,
        baseline=baseline,
        jobs=jobs,
    )
    return engine.run([Path(p) for p in paths])


def build_graph(
    paths: Sequence[Path | str],
    *,
    root: Path | str | None = None,
    cache_path: Path | str | None = None,
) -> ProjectContext:
    """One-call API for ``repro lint --graph``: the resolved project graph."""
    root_path = Path(root) if root is not None else Path.cwd()
    engine = LintEngine(
        root=root_path,
        cache_path=Path(cache_path) if cache_path is not None else None,
    )
    return engine.graph([Path(p) for p in paths])
