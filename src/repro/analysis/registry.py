"""Rule base class and registry.

A rule is a small object with an identifier, a rationale, and a
``check`` method that walks one parsed file and yields findings.  Rules
self-register via the :func:`register` decorator, which makes the
registry the extension point for future passes (an event-loop ordering
checker for ``cluster/events.py``, say): drop a new class in
``rules.py`` — or any imported module — and the engine, the CLI's
``--rules`` filter, the docs table, and the cache signature all pick it
up without further wiring.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.analysis.findings import Finding


@dataclass
class FileContext:
    """Everything a rule may inspect about one file, parsed once."""

    path: str  # repo-relative POSIX path ("src/repro/core/budget.py")
    module_path: str  # path inside the repro package ("core/budget.py")
    source: str
    tree: ast.Module
    lines: list[str]

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """One invariant, checked syntactically.

    Subclasses set ``id`` / ``summary`` / ``rationale`` and implement
    :meth:`check`.  ``scope`` is a tuple of glob-ish prefixes matched
    against :attr:`FileContext.module_path`; empty means every file.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: module-path prefixes (``"retrieval/"``) or exact files this rule
    #: runs on; a ``bench_*``-style basename pattern is also accepted.
    scope: tuple[str, ...] = ()
    #: module paths (or prefixes) exempt even when inside ``scope``.
    exempt: tuple[str, ...] = ()

    def applies_to(self, module_path: str) -> bool:
        if _matches_any(module_path, self.exempt):
            return False
        if not self.scope:
            return True
        return _matches_any(module_path, self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id}>"


def _matches_any(module_path: str, patterns: Sequence[str]) -> bool:
    for pattern in patterns:
        if "*" in pattern:
            regex = "^" + re.escape(pattern).replace(r"\*", "[^/]*") + "$"
            if re.match(regex, module_path):
                return True
        elif module_path == pattern or module_path.startswith(pattern):
            return True
    return False


R = TypeVar("R", bound=type[Rule])

_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: R) -> R:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in stable (sorted-by-id) order."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rules(ids: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Resolve an id selection (``None`` = all), rejecting unknown ids."""
    if ids is None:
        return all_rules()
    selected = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        selected.append(_REGISTRY[rule_id])
    return tuple(sorted(selected, key=lambda r: r.id))


def rules_signature(rules: Sequence[Rule]) -> str:
    """Cache-key component: which rules (and rule code version) ran.

    Bumping ``ANALYZER_VERSION`` invalidates every cache entry; so does
    enabling a different rule subset.
    """
    return f"{ANALYZER_VERSION}:" + ",".join(rule.id for rule in rules)


#: Bump when any rule's behaviour changes, to invalidate on-disk caches.
ANALYZER_VERSION = 1


def walk_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


CallPredicate = Callable[[ast.Call], bool]
