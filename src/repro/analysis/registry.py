"""Rule base class and registry.

A rule is a small object with an identifier, a rationale, and a
``check`` method that walks one parsed file and yields findings.  Rules
self-register via the :func:`register` decorator, which makes the
registry the extension point for future passes (an event-loop ordering
checker for ``cluster/events.py``, say): drop a new class in
``rules.py`` — or any imported module — and the engine, the CLI's
``--rules`` filter, the docs table, and the cache signature all pick it
up without further wiring.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence, TypeVar

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # graph imports registry; annotation-only here
    from repro.analysis.graph import ProjectContext


@dataclass
class FileContext:
    """Everything a rule may inspect about one file, parsed once."""

    path: str  # repo-relative POSIX path ("src/repro/core/budget.py")
    module_path: str  # path inside the repro package ("core/budget.py")
    source: str
    tree: ast.Module
    lines: list[str]

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class Rule:
    """One invariant, checked syntactically.

    Subclasses set ``id`` / ``summary`` / ``rationale`` and implement
    :meth:`check`.  ``scope`` is a tuple of glob-ish prefixes matched
    against :attr:`FileContext.module_path`; empty means every file.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: module-path prefixes (``"retrieval/"``) or exact files this rule
    #: runs on; a ``bench_*``-style basename pattern is also accepted.
    scope: tuple[str, ...] = ()
    #: module paths (or prefixes) exempt even when inside ``scope``.
    exempt: tuple[str, ...] = ()

    def applies_to(self, module_path: str) -> bool:
        if _matches_any(module_path, self.exempt):
            return False
        if not self.scope:
            return True
        return _matches_any(module_path, self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.id}>"


class ProjectRule(Rule):
    """A whole-program rule: checked once per run over the project graph.

    Per-file rules see one parsed file; project rules see every scanned
    module's extracted facts plus the import/call graph
    (:class:`repro.analysis.graph.ProjectContext`) and can therefore
    follow a value across module boundaries.  Their findings still
    anchor to one source line in one file, so pragma suppression and the
    baseline work unchanged — but their *cache* entries are keyed on the
    file's dependency-closure hash, not its content hash alone.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules never run in the per-file phase."""
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


def _matches_any(module_path: str, patterns: Sequence[str]) -> bool:
    for pattern in patterns:
        if "*" in pattern:
            regex = "^" + re.escape(pattern).replace(r"\*", "[^/]*") + "$"
            if re.match(regex, module_path):
                return True
        elif module_path == pattern or module_path.startswith(pattern):
            return True
    return False


R = TypeVar("R", bound=type[Rule])

_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: R) -> R:
    """Class decorator: instantiate the rule and add it to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in stable (sorted-by-id) order."""
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def get_rules(ids: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Resolve an id selection (``None`` = all), rejecting unknown ids."""
    if ids is None:
        return all_rules()
    selected = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
        selected.append(_REGISTRY[rule_id])
    return tuple(sorted(selected, key=lambda r: r.id))


def analysis_source_digest(package_dir: Path | None = None) -> str:
    """Content hash of the analyzer's own source files.

    This replaces the old manually-bumped ``ANALYZER_VERSION``: editing
    *any* rule or engine logic changes the digest, which changes the
    cache signature, which invalidates every on-disk entry — no human
    has to remember the bump, so stale findings can never be served
    after a rule edit.  ``package_dir`` is overridable for tests.
    """
    directory = package_dir if package_dir is not None else Path(__file__).parent
    if package_dir is None and _SOURCE_DIGEST_CACHE:
        return _SOURCE_DIGEST_CACHE[0]
    hasher = hashlib.sha256()
    for source in sorted(directory.glob("*.py")):
        hasher.update(source.name.encode("utf-8"))
        hasher.update(b"\0")
        hasher.update(source.read_bytes())
        hasher.update(b"\0")
    digest = hasher.hexdigest()[:16]
    if package_dir is None:
        _SOURCE_DIGEST_CACHE.append(digest)
    return digest


#: process-lifetime memo; analyzer sources cannot change under a run.
_SOURCE_DIGEST_CACHE: list[str] = []


def rules_signature(rules: Sequence[Rule]) -> str:
    """Cache-key component: which rules ran, under which analyzer code.

    The signature embeds :func:`analysis_source_digest`, so *any* edit
    to the ``repro.analysis`` package invalidates every cache entry at
    once; enabling a different rule subset does the same.
    """
    return analysis_source_digest() + ":" + ",".join(rule.id for rule in rules)


def walk_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dotted_name(node: ast.expr) -> str | None:
    """``np.random.default_rng`` -> that string; None for non-name chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


CallPredicate = Callable[[ast.Call], bool]
