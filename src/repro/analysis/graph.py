"""The project graph: per-file facts, imports, and the call graph.

This is the substrate every whole-program rule stands on.  Each file is
parsed **once** into a :class:`ModuleFacts` record — its internal
imports, its function table, every call site with the argument shapes
the flow rules care about, its wall-clock/RNG taint sources, and its
expanded pragma map.  Facts are plain data (JSON round-trippable), which
is what lets the engine cache them per content hash and rebuild the
whole project graph on a warm run *without parsing a single file*.

:class:`ProjectContext` assembles the facts into the project view:

* the **import graph** (module -> modules it imports, with the
  top-level/lazy/TYPE_CHECKING distinction the layer contract needs),
* per-module **name bindings** (``from repro.x import f`` binds ``f``),
* lexical **call resolution** (``helper(...)``, ``mod.helper(...)``,
  ``self.method(...)`` -> a ``(module, qualname)`` function key),
* the **dependency-closure hash** that keys incremental cache entries:
  a file's entry is valid only while every module reachable from it
  through the import graph is byte-identical.

Resolution is deliberately lexical — no type inference — matching the
rest of simlint: precise enough to follow the repo's real helper
chains, simple enough to stay fast and predictable.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.rules import (
    _GLOBAL_RANDOM_FNS,
    _NP_GLOBAL_RANDOM_FNS,
    _WALL_CLOCK_DATETIME,
    _WALL_CLOCK_TIME_FNS,
    _bare_imports_from,
)
from repro.analysis.registry import dotted_name

#: argument-shape tags the flow rules consume.
ARG_LAMBDA = "lambda"
ARG_NESTED = "nested"
ARG_PARAM = "param"
ARG_NAME = "name"


@dataclass(frozen=True)
class RawImport:
    """One import statement, unresolved (resolution needs the module set)."""

    module: str  # "repro.cluster.types" for from-imports, alias name for Import
    names: tuple[tuple[str, str], ...]  # (name, local alias) pairs; () for Import
    level: int  # relative-import level (0 = absolute)
    lineno: int
    col: int
    top_level: bool  # module scope, outside TYPE_CHECKING
    is_from: bool

    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "names": [list(pair) for pair in self.names],
            "level": self.level,
            "lineno": self.lineno,
            "col": self.col,
            "top_level": self.top_level,
            "is_from": self.is_from,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "RawImport":
        return cls(
            module=str(data["module"]),
            names=tuple(
                (str(pair[0]), str(pair[1]))
                for pair in data["names"]  # type: ignore[union-attr]
            ),
            level=int(data["level"]),  # type: ignore[arg-type]
            lineno=int(data["lineno"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            top_level=bool(data["top_level"]),
            is_from=bool(data["is_from"]),
        )


@dataclass(frozen=True)
class CallArg:
    """One argument at a call site, kept only when a flow rule needs it."""

    slot: str  # positional index as str, or "k:<keyword>"
    kind: str  # ARG_LAMBDA | ARG_NESTED | ARG_PARAM | ARG_NAME
    name: str  # identifier ("" for lambdas)
    line: int
    col: int

    def to_json(self) -> list[object]:
        return [self.slot, self.kind, self.name, self.line, self.col]

    @classmethod
    def from_json(cls, data: list[object]) -> "CallArg":
        return cls(
            slot=str(data[0]),
            kind=str(data[1]),
            name=str(data[2]),
            line=int(data[3]),  # type: ignore[arg-type]
            col=int(data[4]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class CallSite:
    """A call whose callee is a plain dotted-name chain."""

    caller: str  # enclosing function qualname or "<module>"
    callee: str  # lexical callee: "helper", "mod.helper", "self.method"
    line: int
    col: int
    args: tuple[CallArg, ...]
    is_sink: bool  # a process-pool .submit/.map site

    def to_json(self) -> dict[str, object]:
        return {
            "caller": self.caller,
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "args": [arg.to_json() for arg in self.args],
            "is_sink": self.is_sink,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "CallSite":
        return cls(
            caller=str(data["caller"]),
            callee=str(data["callee"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            args=tuple(
                CallArg.from_json(arg)  # type: ignore[arg-type]
                for arg in data["args"]  # type: ignore[union-attr]
            ),
            is_sink=bool(data["is_sink"]),
        )


@dataclass(frozen=True)
class FunctionInfo:
    """A module-level function or a class method (nested defs fold in)."""

    qualname: str  # "helper" or "Class.method"
    line: int
    params: tuple[str, ...]  # positional-capable params, declaration order
    is_method: bool  # bound-call offset applies (self/cls implicit)

    def to_json(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "is_method": self.is_method,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "FunctionInfo":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            params=tuple(str(p) for p in data["params"]),  # type: ignore[union-attr]
            is_method=bool(data["is_method"]),
        )


@dataclass(frozen=True)
class TaintSource:
    """A direct wall-clock or global-RNG call inside one function scope."""

    caller: str  # enclosing function qualname or "<module>"
    name: str  # e.g. "time.perf_counter", "np.random.rand"
    line: int
    kind: str  # "clock" | "rng"

    def to_json(self) -> list[object]:
        return [self.caller, self.name, self.line, self.kind]

    @classmethod
    def from_json(cls, data: list[object]) -> "TaintSource":
        return cls(
            caller=str(data[0]),
            name=str(data[1]),
            line=int(data[2]),  # type: ignore[arg-type]
            kind=str(data[3]),
        )


@dataclass
class ModuleFacts:
    """Everything the whole-program passes need from one file."""

    module: str  # dotted name, e.g. "repro.cluster.engine"
    module_path: str  # path inside the repro package, e.g. "cluster/engine.py"
    rel_path: str  # repo-relative path findings report
    imports: tuple[RawImport, ...]
    functions: dict[str, FunctionInfo]
    calls: tuple[CallSite, ...]
    sources: tuple[TaintSource, ...]
    pragmas: dict[int, frozenset[str]]  # statement-expanded

    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "module_path": self.module_path,
            "rel_path": self.rel_path,
            "imports": [imp.to_json() for imp in self.imports],
            "functions": [fn.to_json() for fn in self.functions.values()],
            "calls": [call.to_json() for call in self.calls],
            "sources": [src.to_json() for src in self.sources],
            "pragmas": {
                str(line): sorted(rules) for line, rules in self.pragmas.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ModuleFacts":
        functions = [
            FunctionInfo.from_json(fn)  # type: ignore[arg-type]
            for fn in data["functions"]  # type: ignore[union-attr]
        ]
        return cls(
            module=str(data["module"]),
            module_path=str(data["module_path"]),
            rel_path=str(data["rel_path"]),
            imports=tuple(
                RawImport.from_json(imp)  # type: ignore[arg-type]
                for imp in data["imports"]  # type: ignore[union-attr]
            ),
            functions={fn.qualname: fn for fn in functions},
            calls=tuple(
                CallSite.from_json(call)  # type: ignore[arg-type]
                for call in data["calls"]  # type: ignore[union-attr]
            ),
            sources=tuple(
                TaintSource.from_json(src)  # type: ignore[arg-type]
                for src in data["sources"]  # type: ignore[union-attr]
            ),
            pragmas={
                int(line): frozenset(str(r) for r in rules)  # type: ignore[union-attr]
                for line, rules in data["pragmas"].items()  # type: ignore[union-attr]
            },
        )


def dotted_module_name(module_path: str) -> str:
    """``cluster/engine.py`` -> ``repro.cluster.engine``.

    Package ``__init__.py`` files name the package itself; the package
    root's own ``__init__.py`` is just ``repro``.
    """
    trimmed = module_path[:-3] if module_path.endswith(".py") else module_path
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    if trimmed == "__init__":
        return "repro"
    return "repro." + trimmed.replace("/", ".")


def module_path_from_dotted(dotted: str) -> str:
    """Best-effort inverse of :func:`dotted_module_name` (layer lookup)."""
    if dotted == "repro":
        return "__init__.py"
    trimmed = dotted[len("repro."):] if dotted.startswith("repro.") else dotted
    return trimmed.replace(".", "/") + ".py"


# --------------------------------------------------------------------------
# facts extraction
# --------------------------------------------------------------------------

_PROCESS_POOL_METHODS = ("submit", "map")


def _is_type_checking_test(test: ast.expr) -> bool:
    name = dotted_name(test)
    return name is not None and name.split(".")[-1] == "TYPE_CHECKING"


class _FactsExtractor:
    """Single AST walk producing a :class:`ModuleFacts` record."""

    def __init__(self, module: str, module_path: str, rel_path: str) -> None:
        self.module = module
        self.module_path = module_path
        self.rel_path = rel_path
        self.imports: list[RawImport] = []
        self.functions: dict[str, FunctionInfo] = {}
        self.calls: list[CallSite] = []
        self.sources: list[TaintSource] = []
        self._bare_clock: frozenset[str] = frozenset()

    def extract(self, tree: ast.Module) -> None:
        self._bare_clock = _bare_imports_from(tree, "time", _WALL_CLOCK_TIME_FNS)
        self._walk_body(tree.body, scope="<module>", scope_node=None,
                        class_name=None, top_level=True)

    # -- scope walking ----------------------------------------------------

    def _walk_body(
        self,
        body: list[ast.stmt],
        scope: str,
        scope_node: ast.AST | None,
        class_name: str | None,
        top_level: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                self._record_import(stmt, top_level)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if scope == "<module>":
                    qualname = (
                        f"{class_name}.{stmt.name}" if class_name else stmt.name
                    )
                    self._record_function(stmt, qualname, class_name is not None)
                    self._scan_function(stmt, qualname)
                # nested defs were already folded into the enclosing scan
            elif isinstance(stmt, ast.ClassDef) and scope == "<module>" and class_name is None:
                self._walk_body(stmt.body, scope, scope_node, stmt.name, False)
            elif isinstance(stmt, ast.If) and _is_type_checking_test(stmt.test):
                self._walk_body(stmt.body, scope, scope_node, class_name, False)
                self._walk_body(stmt.orelse, scope, scope_node, class_name, top_level)
            else:
                # module-level (or class-level) executable statements:
                # record calls/sources under the current scope, and any
                # imports nested in compound statements as non-top-level.
                self._scan_statement(stmt, scope)

    def _scan_statement(self, stmt: ast.stmt, scope: str) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node, top_level=False)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            elif isinstance(node, ast.Call):
                self._record_call(node, scope, params=frozenset(), nested=frozenset())

    def _record_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str,
        in_class: bool,
    ) -> None:
        decorators = {dotted_name(d) for d in node.decorator_list}
        is_method = in_class and "staticmethod" not in {
            (d or "").split(".")[-1] for d in decorators
        }
        args = node.args
        # positional params first (slot-index mapping relies on order);
        # kwonly appended after, reachable only through keyword slots.
        params = tuple(
            arg.arg for arg in args.posonlyargs + args.args + args.kwonlyargs
        )
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, line=node.lineno, params=params, is_method=is_method
        )

    def _scan_function(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str
    ) -> None:
        """Scan a function body, nested defs folded in, imports tagged lazy."""
        args = func.args
        params = frozenset(
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        )
        nested = frozenset(
            node.name
            for node in ast.walk(func)
            if node is not func
            and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for node in ast.walk(func):
            if node is func:
                continue
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(node, top_level=False)
            elif isinstance(node, ast.Call):
                self._record_call(node, qualname, params, nested)

    # -- imports ----------------------------------------------------------

    def _record_import(
        self, node: ast.Import | ast.ImportFrom, top_level: bool
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.imports.append(
                    RawImport(
                        module=alias.name,
                        names=((alias.name, alias.asname or alias.name),),
                        level=0,
                        lineno=node.lineno,
                        col=node.col_offset,
                        top_level=top_level,
                        is_from=False,
                    )
                )
        else:
            self.imports.append(
                RawImport(
                    module=node.module or "",
                    names=tuple(
                        (alias.name, alias.asname or alias.name)
                        for alias in node.names
                    ),
                    level=node.level,
                    lineno=node.lineno,
                    col=node.col_offset,
                    top_level=top_level,
                    is_from=True,
                )
            )

    # -- calls and taint sources ------------------------------------------

    def _record_call(
        self,
        node: ast.Call,
        scope: str,
        params: frozenset[str],
        nested: frozenset[str],
    ) -> None:
        name = dotted_name(node.func)
        if name is not None:
            source_kind = self._classify_source(node, name)
            if source_kind is not None:
                self.sources.append(
                    TaintSource(
                        caller=scope, name=name, line=node.lineno, kind=source_kind
                    )
                )
        is_sink = (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PROCESS_POOL_METHODS
            and self._process_receiver(node.func.value)
        )
        if name is None and not is_sink:
            return  # dynamic callee (call/subscript in the chain): unresolvable
        self.calls.append(
            CallSite(
                caller=scope,
                callee=name if name is not None else "<dynamic>",
                line=node.lineno,
                col=node.col_offset,
                args=self._call_args(node, params, nested),
                is_sink=is_sink,
            )
        )

    def _classify_source(self, node: ast.Call, name: str) -> str | None:
        head, _, tail = name.rpartition(".")
        if (
            (head == "time" and tail in _WALL_CLOCK_TIME_FNS)
            or name in _WALL_CLOCK_DATETIME
            or name in self._bare_clock
        ):
            return "clock"
        if head == "random" and tail in _GLOBAL_RANDOM_FNS:
            return "rng"
        if head in ("np.random", "numpy.random") and tail in _NP_GLOBAL_RANDOM_FNS:
            return "rng"
        if tail == "default_rng" or name == "default_rng":
            if not node.args and not node.keywords:
                return "rng"
        return None

    def _process_receiver(self, expr: ast.expr) -> bool:
        target = expr.func if isinstance(expr, ast.Call) else expr
        text = dotted_name(target)
        if text is None:
            current = target
            while isinstance(current, (ast.Attribute, ast.Subscript)):
                current = current.value
            text = current.id if isinstance(current, ast.Name) else ""
        return "process" in text.lower()

    def _call_args(
        self, node: ast.Call, params: frozenset[str], nested: frozenset[str]
    ) -> tuple[CallArg, ...]:
        out: list[CallArg] = []
        slots: list[tuple[str, ast.expr]] = [
            (str(index), arg) for index, arg in enumerate(node.args)
        ] + [(f"k:{kw.arg}", kw.value) for kw in node.keywords if kw.arg]
        for slot, arg in slots:
            if isinstance(arg, ast.Lambda):
                out.append(CallArg(slot, ARG_LAMBDA, "", arg.lineno, arg.col_offset))
            elif isinstance(arg, ast.Name):
                if arg.id in nested:
                    kind = ARG_NESTED
                elif arg.id in params:
                    kind = ARG_PARAM
                else:
                    kind = ARG_NAME
                out.append(CallArg(slot, kind, arg.id, arg.lineno, arg.col_offset))
        return tuple(out)


def extract_facts(
    tree: ast.Module,
    rel_path: str,
    module_path: str,
    pragmas: dict[int, frozenset[str]],
) -> ModuleFacts:
    """Parse-once fact extraction for one file."""
    extractor = _FactsExtractor(
        module=dotted_module_name(module_path),
        module_path=module_path,
        rel_path=rel_path,
    )
    extractor.extract(tree)
    return ModuleFacts(
        module=extractor.module,
        module_path=extractor.module_path,
        rel_path=extractor.rel_path,
        imports=tuple(extractor.imports),
        functions=extractor.functions,
        calls=tuple(extractor.calls),
        sources=tuple(extractor.sources),
        pragmas=pragmas,
    )


# --------------------------------------------------------------------------
# the project view
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ResolvedImport:
    """One internal import edge, resolved against the scanned module set."""

    target: str  # dotted internal module
    lineno: int
    col: int
    top_level: bool


@dataclass
class ProjectContext:
    """The whole-program view handed to every :class:`ProjectRule`."""

    modules: dict[str, ModuleFacts] = field(default_factory=dict)
    edges: dict[str, tuple[ResolvedImport, ...]] = field(default_factory=dict)
    bindings: dict[str, dict[str, str]] = field(default_factory=dict)
    hashes: dict[str, str] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def build(
        cls, facts: dict[str, ModuleFacts], hashes: dict[str, str]
    ) -> "ProjectContext":
        """Resolve raw imports into edges + name bindings.

        ``facts``/``hashes`` are keyed by dotted module name.  Import
        targets outside the scanned set (stdlib, numpy, un-scanned repro
        modules) resolve to nothing and simply drop out of the graph.
        """
        project = cls(modules=facts, hashes=hashes)
        for module, info in facts.items():
            edges: dict[tuple[str, int], ResolvedImport] = {}
            bindings: dict[str, str] = {}
            for imp in info.imports:
                for target, binding in _resolve_import(module, imp, facts):
                    if target is not None:
                        key = (target, imp.lineno)
                        existing = edges.get(key)
                        if existing is None or (imp.top_level and not existing.top_level):
                            edges[key] = ResolvedImport(
                                target=target,
                                lineno=imp.lineno,
                                col=imp.col,
                                top_level=imp.top_level,
                            )
                    if binding is not None:
                        bindings[binding[0]] = binding[1]
            project.edges[module] = tuple(
                sorted(edges.values(), key=lambda e: (e.lineno, e.target))
            )
            project.bindings[module] = bindings
        return project

    # -- dependency closure ------------------------------------------------

    def reachable(self, module: str) -> frozenset[str]:
        """Modules reachable from ``module`` via imports (self included)."""
        seen: set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.edges.get(current, ()):
                if edge.target not in seen:
                    stack.append(edge.target)
        return frozenset(seen)

    def dependency_hash(self, module: str) -> str:
        """Cache key for ``module``: its hash + every dependency's hash.

        Any byte change in any module reachable through the import graph
        changes this digest — that is the dependency-aware invalidation
        the whole-program rules require.
        """
        hasher = hashlib.sha256()
        for name in sorted(self.reachable(module)):
            hasher.update(name.encode("utf-8"))
            hasher.update(b"=")
            hasher.update(self.hashes.get(name, "").encode("utf-8"))
            hasher.update(b"\0")
        return hasher.hexdigest()

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, module: str, site: CallSite
    ) -> tuple[str, str] | None:
        """Resolve a call site to a ``(module, qualname)`` function key."""
        facts = self.modules.get(module)
        if facts is None:
            return None
        callee = site.callee
        bindings = self.bindings.get(module, {})
        if callee.startswith("self.") or callee.startswith("cls."):
            method = callee.split(".", 1)[1]
            if "." in method:
                return None
            if "." in site.caller:
                qualname = f"{site.caller.split('.')[0]}.{method}"
                if qualname in facts.functions:
                    return (module, qualname)
            return None
        parts = callee.split(".")
        if len(parts) == 1:
            if callee in facts.functions:
                return (module, callee)
            bound = bindings.get(callee)
            if bound is not None and ":" in bound:
                target_module, member = bound.split(":", 1)
                target = self.modules.get(target_module)
                if target is not None and member in target.functions:
                    return (target_module, member)
            return None
        if len(parts) == 2:
            head, tail = parts
            bound = bindings.get(head)
            if bound is not None and ":" not in bound:
                target = self.modules.get(bound)
                if target is not None and tail in target.functions:
                    return (bound, tail)
            if bound is not None and ":" in bound:
                # "Cls.method" via an imported class name
                target_module, member = bound.split(":", 1)
                target = self.modules.get(target_module)
                qualname = f"{member}.{tail}"
                if target is not None and qualname in target.functions:
                    return (target_module, qualname)
            if callee in facts.functions:
                return (module, callee)
            qualname = f"{head}.{tail}"
            if qualname in facts.functions:
                return (module, qualname)
        return None

    def function(self, key: tuple[str, str]) -> FunctionInfo | None:
        facts = self.modules.get(key[0])
        if facts is None:
            return None
        return facts.functions.get(key[1])

    def iter_functions(self) -> Iterator[tuple[str, FunctionInfo]]:
        for module in sorted(self.modules):
            for qualname in sorted(self.modules[module].functions):
                yield module, self.modules[module].functions[qualname]

    # -- exports -----------------------------------------------------------

    def to_json(self) -> dict[str, object]:
        """JSON graph export (``repro lint --graph json``)."""
        from repro.analysis.layers import layer_of  # avoid import cycle at load

        modules = {}
        for name in sorted(self.modules):
            facts = self.modules[name]
            layer = layer_of(facts.module_path)
            modules[name] = {
                "path": facts.rel_path,
                "layer": layer[1] if layer is not None else None,
                "functions": len(facts.functions),
            }
        edges = [
            {
                "source": source,
                "target": edge.target,
                "line": edge.lineno,
                "top_level": edge.top_level,
            }
            for source in sorted(self.edges)
            for edge in self.edges[source]
        ]
        return {"modules": modules, "edges": edges}

    def to_dot(self) -> str:
        """GraphViz export, modules clustered by top-level package."""
        from repro.analysis.layers import layer_of

        clusters: dict[str, list[str]] = {}
        for name in sorted(self.modules):
            package = name.split(".")[1] if name.count(".") >= 1 else name
            clusters.setdefault(package, []).append(name)
        lines = ["digraph simlint {", "  rankdir=LR;", "  node [shape=box];"]
        for package in sorted(clusters):
            lines.append(f'  subgraph "cluster_{package}" {{')
            lines.append(f'    label="{package}";')
            for name in clusters[package]:
                layer = layer_of(self.modules[name].module_path)
                label = name[len("repro."):] if name.startswith("repro.") else name
                tooltip = layer[1] if layer is not None else "unassigned"
                lines.append(
                    f'    "{name}" [label="{label}", tooltip="layer: {tooltip}"];'
                )
            lines.append("  }")
        for source in sorted(self.edges):
            for edge in self.edges[source]:
                style = "" if edge.top_level else " [style=dashed]"
                lines.append(f'  "{source}" -> "{edge.target}"{style};')
        lines.append("}")
        return "\n".join(lines) + "\n"


def _resolve_import(
    module: str, imp: RawImport, facts: dict[str, ModuleFacts]
) -> list[tuple[str | None, tuple[str, str] | None]]:
    """Expand one raw import into (edge target, (local name, binding)) pairs.

    Bindings are ``"repro.x.y"`` for module objects and
    ``"repro.x.y:member"`` for imported members.
    """
    out: list[tuple[str | None, tuple[str, str] | None]] = []
    if not imp.is_from:
        target = imp.module
        if not target.startswith("repro"):
            return out
        resolved = target if target in facts else None
        alias = imp.names[0][1] if imp.names else target
        if alias != target and resolved is not None:
            out.append((resolved, (alias, target)))
        elif resolved is not None:
            # "import repro.x.y" binds "repro"; dotted uses are rare
            out.append((resolved, None))
        return out

    base = imp.module
    if imp.level > 0:
        package = module if _is_package(module, facts) else module.rsplit(".", 1)[0]
        for _ in range(imp.level - 1):
            if "." not in package:
                break
            package = package.rsplit(".", 1)[0]
        base = f"{package}.{imp.module}" if imp.module else package
    if not base.startswith("repro"):
        return out
    for name, alias in imp.names:
        submodule = f"{base}.{name}"
        if submodule in facts:
            out.append((submodule, (alias, submodule)))
        elif base in facts:
            out.append((base, (alias, f"{base}:{name}")))
        else:
            out.append((None, None))
    return out


def _is_package(module: str, facts: dict[str, ModuleFacts]) -> bool:
    info = facts.get(module)
    return info is not None and info.module_path.endswith("__init__.py")
