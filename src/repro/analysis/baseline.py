"""The committed baseline: grandfathered findings that do not fail CI.

A baseline lets the linter land with rules stricter than the tree —
existing violations are recorded once, new ones still fail.  This repo's
policy (ISSUE 5) is stronger: every true positive gets *fixed* (or
pragma'd with a justification), so the committed baseline ships empty
and the file mostly documents the workflow:

* ``repro lint --write-baseline`` snapshots the current findings;
* a later run reports only findings *not* in the snapshot;
* fixing a grandfathered finding does not fail anything (matching is a
  multiset: unused baseline entries are simply ignored, and
  ``stale_entries`` reports them so the baseline can be re-shrunk).

Entries are keyed on the line-free :meth:`Finding.fingerprint` with an
occurrence count, so unrelated edits that move code around neither break
the match nor let a *second* identical violation hide behind the first.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

_BASELINE_FORMAT = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: Counter[str] | None = None) -> None:
        self.counts: Counter[str] = counts or Counter()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("format") != _BASELINE_FORMAT:
            raise ValueError(f"{path}: not a simlint baseline file")
        raw = data.get("findings", {})
        if not isinstance(raw, dict):
            raise ValueError(f"{path}: malformed 'findings' table")
        counts: Counter[str] = Counter()
        for fingerprint, count in raw.items():
            counts[str(fingerprint)] = int(count)
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(finding.fingerprint() for finding in findings))

    def save(self, path: Path) -> None:
        payload = {
            "format": _BASELINE_FORMAT,
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, n_suppressed) against this baseline.

        Findings are consumed in report order: with N baselined copies of
        a fingerprint, the first N occurrences are suppressed and any
        further ones are new.
        """
        budget = Counter(self.counts)
        fresh: list[Finding] = []
        suppressed = 0
        for finding in findings:
            fingerprint = finding.fingerprint()
            if budget[fingerprint] > 0:
                budget[fingerprint] -= 1
                suppressed += 1
            else:
                fresh.append(finding)
        return fresh, suppressed

    def stale_entries(self, findings: list[Finding]) -> list[str]:
        """Baseline fingerprints no longer matched by any finding."""
        present = Counter(finding.fingerprint() for finding in findings)
        return sorted(
            fingerprint
            for fingerprint, count in self.counts.items()
            if present[fingerprint] < count
        )

    def __len__(self) -> int:
        return sum(self.counts.values())
