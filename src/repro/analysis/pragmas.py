"""Pragma parsing and statement-aware expansion.

Suppression is part of the file content (hash-stable, cacheable)::

    expr_using_wall_clock()  # simlint: disable=DET-CLOCK -- why it is ok
    another()                # simlint: disable=DET-RNG,MUT-DEFAULT
    anything()               # simlint: disable=all -- escape hatch

A pragma suppresses findings anchored anywhere on the *statement* it
sits on, not just its own physical line.  That matters for multi-line
statements (implicit continuation puts the pragma on the closing line
while the finding anchors on the opening one) and for decorated defs
(the finding anchors on a default-argument line inside the signature).
Expansion is deliberately bounded: for compound statements (defs,
loops, ``with``/``try`` blocks) only the *header* — decorators through
the line before the first body statement — is covered, so a pragma on a
``def`` line never blankets the whole function body.

Pragmas naming rule ids the registry does not know are reported as
warnings instead of silently suppressing nothing (a typo'd id would
otherwise look like a working exemption).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Sequence

from repro.analysis.findings import LintWarning

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_\-,\s]+?)(?:--.*)?$")


def parse_pragmas(lines: Sequence[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids disabled on that line."""
    pragmas: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "simlint" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            pragmas[lineno] = rules
    return pragmas


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """(start, end) line spans a pragma may govern, smallest-first lookup.

    Simple statements span their full extent; compound statements span
    only their header (decorators included, body excluded).
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        start = node.lineno
        body = getattr(node, "body", None)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in node.decorator_list:
                start = min(start, decorator.lineno)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            # compound statement: cover decorators + signature/header only
            end = max(start, body[0].lineno - 1)
        spans.append((start, end))
    return spans


def expand_pragmas(
    tree: ast.Module, pragmas: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Spread each pragma over the smallest statement span containing it."""
    if not pragmas:
        return {}
    spans = _statement_spans(tree)
    expanded: dict[int, set[str]] = {}
    for lineno, rules in pragmas.items():
        best: tuple[int, int] | None = None
        for start, end in spans:
            if start <= lineno <= end:
                if best is None or (end - start) < (best[1] - best[0]):
                    best = (start, end)
        covered = range(best[0], best[1] + 1) if best is not None else (lineno,)
        for line in covered:
            expanded.setdefault(line, set()).update(rules)
    return {line: frozenset(rules) for line, rules in expanded.items()}


def unknown_rule_warnings(
    path: str, pragmas: dict[int, frozenset[str]], known_ids: Iterable[str]
) -> list[LintWarning]:
    """Warn on pragma tokens that name no registered rule (typo guard)."""
    known = {rule_id.upper() for rule_id in known_ids} | {"ALL"}
    warnings: list[LintWarning] = []
    for lineno in sorted(pragmas):
        for token in sorted(pragmas[lineno]):
            if token not in known:
                warnings.append(
                    LintWarning(
                        path=path,
                        line=lineno,
                        message=(
                            f"pragma disables unknown rule {token!r}; it "
                            "suppresses nothing (known rules: "
                            + ", ".join(sorted(known - {"ALL"}))
                            + ")"
                        ),
                    )
                )
    return warnings
