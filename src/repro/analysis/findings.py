"""Finding: one rule violation at one source location.

Findings are value objects — frozen, hashable, order-comparable — so the
engine can cache them per file, diff them against a baseline, and render
them in any output format without ever re-running a rule.

The **fingerprint** deliberately excludes the line/column: a baseline
entry keyed on ``(rule, path, message)`` survives unrelated edits that
shift code up or down, which is the property that makes a committed
baseline file workable at all.  Identical findings in one file (same
rule, same message, different lines) are disambiguated by multiset
counting at baseline-filter time, not by the fingerprint itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # registry imports findings; annotations only here
    from repro.analysis.registry import Rule


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and why it matters."""

    path: str  # repo-relative POSIX path
    line: int  # 1-based, as ``ast`` reports it
    col: int  # 0-based, as ``ast`` reports it
    rule: str  # rule identifier, e.g. ``DET-RNG``
    message: str  # human-readable explanation with the offending construct

    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        """The classic compiler one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def render_github(self) -> str:
        """GitHub Actions workflow-command annotation for this finding."""
        # '::' and newlines would terminate the workflow command early.
        safe = self.message.replace("\n", " ").replace("::", ":")
        return (
            f"::error file={self.path},line={self.line},"
            f"col={self.col + 1},title=simlint {self.rule}::{safe}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


@dataclass(frozen=True)
class LintWarning:
    """A non-fatal diagnostic (e.g. a pragma naming an unknown rule id).

    Warnings never affect the exit code: they flag linter *usage*
    problems, not determinism-contract violations.
    """

    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: warning: {self.message}"

    def to_json(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "message": self.message}

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "LintWarning":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            message=str(data["message"]),
        )


@dataclass(frozen=True)
class LintError:
    """A file the engine could not analyze (syntax error, IO failure).

    Errors are *not* findings: they mean the determinism contract could
    not be checked at all, so the CLI maps them to exit code 2, never 1.
    """

    path: str
    message: str

    def render(self) -> str:
        return f"{self.path}: error: {self.message}"


@dataclass
class LintReport:
    """Everything one engine run produced, already baseline-filtered."""

    findings: list[Finding] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    warnings: list[LintWarning] = field(default_factory=list)
    files_scanned: int = 0
    files_parsed: int = 0
    cache_hits: int = 0
    project_cache_hits: int = 0
    pragma_suppressed: int = 0
    baseline_suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        """The CLI contract: 0 clean, 1 findings, 2 internal error."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


#: Published with every SARIF log so code-scanning UIs can link back.
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(report: LintReport, rules: Sequence["Rule"]) -> dict[str, object]:
    """Render a report as a SARIF 2.1.0 log (one run, driver ``simlint``).

    ``rules`` is the sequence of Rule objects that ran; their
    summary/rationale become the SARIF rule metadata that code-scanning
    UIs show next to each alert.  Engine errors map to tool-execution
    notifications so a syntax error is visible but not a "result".
    """
    rule_meta: list[dict[str, object]] = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    rule_index = {meta["id"]: index for index, meta in enumerate(rule_meta)}
    results: list[dict[str, object]] = []
    for finding in report.findings:
        result: dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"simlint/v1": finding.fingerprint()},
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    notifications = [
        {
            "level": "error",
            "message": {"text": error.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": error.path,
                            "uriBaseId": "%SRCROOT%",
                        }
                    }
                }
            ],
        }
        for error in report.errors
    ]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "https://example.invalid/simlint",
                        "rules": rule_meta,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
