"""The simlint rule catalogue.

Each rule encodes one of the repo's determinism / simulation-safety
invariants as a syntactic check.  The common theme: the simulator's
outputs (latency, quality, power — Figs. 10-15) are only comparable
across runs and across policy/kernel variants because every run is a
pure function of (workload seed, configuration).  Anything that lets
wall-clock time, process-global RNG state, hash ordering, or racy shared
mutation leak into a result breaks that contract silently — exactly the
class of bug a Hypothesis suite only catches when it happens to sample
one.

Rules are syntactic and local by design: no type inference, no
cross-file dataflow.  Where that under-approximates (a set bound to a
variable, a closure smuggled through a helper), the fixture suite pins
what *is* caught, and the pragma mechanism documents what is
intentionally exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    FileContext,
    Rule,
    dotted_name,
    register,
)

__all__ = [
    "DetRngRule",
    "DetClockRule",
    "DetOrderRule",
    "FloatOrderRule",
    "TelBindRule",
    "MutDefaultRule",
    "ParSharedRule",
    "ParPickleRule",
]


# --------------------------------------------------------------------------
# DET-RNG
# --------------------------------------------------------------------------

#: ``random.<fn>`` module-level functions drawing from the process-global
#: Mersenne Twister.  ``random.Random(seed)`` instances are fine.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "lognormvariate",
        "expovariate", "betavariate", "gammavariate", "paretovariate",
        "weibullvariate", "vonmisesvariate", "triangular", "seed",
        "getrandbits", "randbytes", "binomialvariate",
    }
)

#: Legacy numpy global-state API (``np.random.<fn>`` on the shared
#: ``RandomState``).  ``np.random.default_rng(seed)`` / ``Generator``
#: methods are the sanctioned replacement.
_NP_GLOBAL_RANDOM_FNS = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "uniform", "normal", "standard_normal",
        "poisson", "exponential", "binomial", "beta", "gamma", "sample",
    }
)


@register
class DetRngRule(Rule):
    """No process-global or unseeded randomness.

    RNGs must flow in as explicitly seeded ``random.Random`` /
    ``np.random.Generator`` parameters, the way ``workloads/`` and
    ``nn/`` already do — otherwise two runs of the same configuration
    can differ, and the repo's bit-identity CI gates are meaningless.
    """

    id = "DET-RNG"
    summary = "process-global or unseeded RNG"
    rationale = (
        "Runs must be a pure function of (seed, config); module-level "
        "random.* and unseeded default_rng() draw from process state."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() uses the process-global RNG; thread a seeded "
                    "random.Random / np.random.Generator parameter through instead",
                )
                continue
            head, _, tail = name.rpartition(".")
            if head in ("np.random", "numpy.random") and tail in _NP_GLOBAL_RANDOM_FNS:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() mutates numpy's global RandomState; use a "
                    "seeded np.random.default_rng(seed) Generator instead",
                )
                continue
            if tail == "default_rng" or name == "default_rng":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self.id, node,
                        "default_rng() without a seed draws OS entropy; pass "
                        "an explicit seed (or accept a Generator parameter)",
                    )


# --------------------------------------------------------------------------
# DET-CLOCK
# --------------------------------------------------------------------------

_WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "thread_time",
        "thread_time_ns",
    }
)
_WALL_CLOCK_DATETIME = frozenset(
    {
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today", "date.today",
    }
)


@register
class DetClockRule(Rule):
    """No wall-clock reads outside the measurement allowlist.

    Everything inside the simulated cluster must tell time via the
    sim-clock (``sim.now`` / event timestamps).  Wall clocks are only
    legitimate where real elapsed time *is* the measurement: the
    telemetry tracer's dual-clock spans, the executor's ``FanoutStats``,
    and the ``experiments/bench_*`` microbenchmarks.
    """

    id = "DET-CLOCK"
    summary = "wall-clock read in sim-clock territory"
    rationale = (
        "Wall time contaminating the sim-clock makes latency/power "
        "numbers irreproducible across hosts and runs."
    )
    exempt = (
        "telemetry/trace.py",  # dual-clock spans: wall time is the point
        "retrieval/executor.py",  # FanoutStats measures real fan-out time
        "experiments/bench_*.py",  # microbenchmarks measure the host
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        bare_clock_imports = _bare_imports_from(ctx.tree, "time", _WALL_CLOCK_TIME_FNS)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            flagged = (
                (name.startswith("time.") and name.split(".", 1)[1] in _WALL_CLOCK_TIME_FNS)
                or name in _WALL_CLOCK_DATETIME
                or name in bare_clock_imports
            )
            if flagged:
                yield ctx.finding(
                    self.id, node,
                    f"{name}() reads the wall clock; simulation code must "
                    "use the sim-clock, and measurement code belongs in the "
                    "telemetry/executor/bench_* allowlist",
                )


def _bare_imports_from(
    tree: ast.Module, module: str, wanted: frozenset[str]
) -> frozenset[str]:
    """Names imported via ``from <module> import x`` that we care about."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                if alias.name in wanted:
                    names.add(alias.asname or alias.name)
    return frozenset(names)


# --------------------------------------------------------------------------
# DET-ORDER
# --------------------------------------------------------------------------


@register
class DetOrderRule(Rule):
    """Iteration over unordered collections must pass through sorted().

    In ``retrieval/``, ``cluster/`` and ``core/``, anything iterated can
    feed result construction (merge order, event scheduling, budget
    walks), where tie-order is part of the bit-identity contract.  Set
    iteration order depends on hash seeding; ``dict.keys`` order is
    insertion order, i.e. whatever construction path ran first — both
    leak incidental order into results.
    """

    id = "DET-ORDER"
    summary = "unsorted set/dict-view iteration"
    rationale = (
        "Hash/insertion order leaking into result construction breaks "
        "tie-order bit-identity between strategies and runs."
    )
    scope = ("retrieval/", "cluster/", "core/")

    #: one wrapper level that preserves (arbitrary) element order and is
    #: therefore just as unordered as the collection itself.
    _TRANSPARENT_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                offender = self._unordered(it)
                if offender is not None:
                    yield ctx.finding(
                        self.id, it,
                        f"iterating {offender} in arbitrary order; wrap the "
                        "iterable in sorted(...) so tie-order is deterministic",
                    )

    def _unordered(self, expr: ast.expr) -> str | None:
        """Describe ``expr`` if it is (a transparent wrap of) an unordered
        collection, else None.  ``sorted(...)`` sanctifies anything."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal" if isinstance(expr, ast.Set) else "a set comprehension"
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in ("keys", "values"):
                return f".{expr.func.attr}() view"
            if name in self._TRANSPARENT_WRAPPERS and expr.args:
                inner = self._unordered(expr.args[0])
                if inner is not None:
                    return f"{name}({inner})"
        return None


# --------------------------------------------------------------------------
# FLOAT-ORDER
# --------------------------------------------------------------------------


@register
class FloatOrderRule(Rule):
    """No order-hiding reductions in bit-identity float kernels.

    ``retrieval/kernels.py`` and ``index/arena.py`` promise results
    bit-identical to their ``*_reference`` scalar implementations, and
    float addition is not associative — the *accumulation order* is part
    of the contract.  ``sum(...)`` (and ``np.sum``/``.sum()`` with their
    pairwise reduction) hide that order behind an implementation detail;
    write the explicit ordered loop, or pragma an integer reduction with
    a justification.
    """

    id = "FLOAT-ORDER"
    summary = "order-hiding reduction in a bit-identity kernel"
    rationale = (
        "Float accumulation order is part of the kernel-vs-reference "
        "bit-identity contract; sum() makes it implicit and fragile."
    )
    scope = ("retrieval/kernels.py", "index/arena.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "sum":
                yield ctx.finding(
                    self.id, node,
                    "builtin sum() hides accumulation order in a "
                    "bit-identity kernel; use an explicit ordered loop "
                    "(or pragma an order-insensitive integer reduction)",
                )
            elif name in ("np.sum", "numpy.sum"):
                yield ctx.finding(
                    self.id, node,
                    f"{name}() uses pairwise reduction whose split points "
                    "depend on array layout; make the accumulation order "
                    "explicit in this bit-identity kernel",
                )


# --------------------------------------------------------------------------
# TEL-BIND
# --------------------------------------------------------------------------


@register
class TelBindRule(Rule):
    """Every ``bind_telemetry`` swap must be restored in a ``finally``.

    The discipline PR 3 established: a run binds live telemetry into
    long-lived objects (executor, searchers, policies, predictor bank)
    and *must* rebind the disabled session on the way out, or a crashed
    run leaves stale tracers recording into a dead session — and the
    next run's spans interleave with them.  Delegating binders (a
    ``bind_telemetry`` method forwarding to children) are exempt: their
    caller owns the restore.
    """

    id = "TEL-BIND"
    summary = "bind_telemetry without a finally restore"
    rationale = (
        "A bind without a guaranteed rebind leaks a live telemetry "
        "session into the next run on any exception path."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for scope, name in _iter_bind_scopes(ctx.tree):
            if name == "bind_telemetry":
                continue  # delegation inside a binder; caller restores
            binds = _bind_calls(scope)
            if not binds:
                continue
            in_finally = _calls_in_finally_blocks(scope)
            unguarded = [call for call in binds if id(call) not in in_finally]
            if not unguarded:
                continue
            # A scope that *does* restore in some finally covers its
            # earlier binds (the engine.run_trace shape).
            if any(id(call) in in_finally for call in binds):
                continue
            for call in unguarded:
                yield ctx.finding(
                    self.id, call,
                    "bind_telemetry(...) swap has no finally that rebinds "
                    "the prior session; wrap the run in try/finally and "
                    "restore NO_TELEMETRY (or the previous binding)",
                )


def _iter_bind_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, str]]:
    """Yield (scope, scope_name) for the module and each function, where
    the scope's *direct* body excludes nested function bodies."""
    yield tree, "<module>"
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name


def _direct_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function definitions."""
    body = scope.body if isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)) else []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested scope of its own
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_bind_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "bind_telemetry"
    )


def _bind_calls(scope: ast.AST) -> list[ast.Call]:
    return [node for node in _direct_walk(scope) if _is_bind_call(node)]


def _calls_in_finally_blocks(scope: ast.AST) -> set[int]:
    """ids of bind calls lexically inside any finally block of the scope."""
    inside: set[int] = set()
    for node in _direct_walk(scope):
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if _is_bind_call(sub):
                        inside.add(id(sub))
    return inside


# --------------------------------------------------------------------------
# MUT-DEFAULT
# --------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {
        "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
        "Counter", "deque", "collections.defaultdict", "collections.OrderedDict",
        "collections.Counter", "collections.deque",
    }
)


@register
class MutDefaultRule(Rule):
    """No mutable default arguments.

    A mutable default is evaluated once at ``def`` time and shared by
    every call — cross-query, cross-run state smuggled through a
    signature.  In a simulator whose contract is "pure function of
    (seed, config)", that is a determinism bug waiting for its second
    caller.  Use ``None`` plus an in-body default.
    """

    id = "MUT-DEFAULT"
    summary = "mutable default argument"
    rationale = (
        "def-time-evaluated defaults are shared state across calls and "
        "runs; they silently couple queries to each other."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
            for default in defaults:
                desc = self._mutable(default)
                if desc is not None:
                    func = node.name if not isinstance(node, ast.Lambda) else "<lambda>"
                    yield ctx.finding(
                        self.id, default,
                        f"{func}() has {desc} as a default argument — "
                        "evaluated once and shared across every call; use "
                        "None and construct inside the body",
                    )

    def _mutable(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.List):
            return "a list literal"
        if isinstance(node, ast.Dict):
            return "a dict literal"
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "a comprehension"
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in _MUTABLE_FACTORIES:
                return f"{name}(...)"
        return None


# --------------------------------------------------------------------------
# PAR-SHARED
# --------------------------------------------------------------------------


@register
class ParSharedRule(Rule):
    """Closures handed to an executor must not mutate shared state.

    ``ParallelExecutor`` runs submitted closures on pool threads; the
    exactly-once memoization layer (``ShardSearcher``) and explicit
    locks are the only sanctioned ways for them to touch shared state.
    A closure that writes an enclosing variable, a captured container,
    or ``self`` races with its siblings — and with numpy releasing the
    GIL mid-kernel, "it's only a benign race" is not an argument.
    """

    id = "PAR-SHARED"
    summary = "executor closure mutating shared state"
    rationale = (
        "Unsynchronized writes from pool threads race; results then "
        "depend on scheduling, breaking executor bit-identity."
    )

    _MUTATOR_METHODS = frozenset(
        {
            "append", "extend", "insert", "add", "update", "remove",
            "discard", "pop", "popitem", "clear", "setdefault", "sort",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._submits_work(node):
                continue
            for closure in self._local_closures(node):
                yield from self._closure_mutations(ctx, closure)

    def _submits_work(self, func: ast.AST) -> bool:
        """Does this function hand closures to an executor/pool?"""
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("submit", "map")
            ):
                return True
        return False

    def _local_closures(self, func: ast.AST) -> Iterator[ast.AST]:
        for node in ast.walk(func):
            if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                yield node

    def _closure_mutations(self, ctx: FileContext, closure: ast.AST) -> Iterator[Finding]:
        local_names = _bound_names(closure)
        for node in ast.walk(closure):
            if _under_lock(node, closure):
                continue
            target: ast.expr | None = None
            verb = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for tgt in targets:
                    base = _store_base(tgt)
                    if base is not None and _is_shared(base, local_names):
                        target, verb = tgt, "writes"
                        break
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in self._MUTATOR_METHODS:
                    base = _name_base(node.func.value)
                    if base is not None and _is_shared_name(base, local_names):
                        target, verb = node, f"calls .{node.func.attr}() on"
            elif isinstance(node, ast.Nonlocal):
                target, verb = node, "rebinds (nonlocal)"
            if target is not None:
                yield ctx.finding(
                    self.id, target,
                    f"closure submitted to an executor {verb} shared state; "
                    "route the write through the memoization layer, hold a "
                    "lock, or return the value instead of mutating",
                )


def _bound_names(closure: ast.AST) -> frozenset[str]:
    """Names the closure binds locally (params, assignments, loop vars)."""
    names: set[str] = set()
    args = closure.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for node in ast.walk(closure):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return frozenset(names)


def _store_base(target: ast.expr) -> ast.expr | None:
    """The object being mutated by a Store target, if it is a container
    write (``x[i] = ...``, ``obj.attr = ...``); bare names are local."""
    if isinstance(target, ast.Subscript):
        return target.value
    if isinstance(target, ast.Attribute):
        return target.value
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            base = _store_base(element)
            if base is not None:
                return base
    return None


def _name_base(expr: ast.expr) -> str | None:
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _is_shared(base: ast.expr, local_names: frozenset[str]) -> bool:
    name = _name_base(base)
    return name is not None and name not in local_names


def _is_shared_name(name: str, local_names: frozenset[str]) -> bool:
    return name not in local_names


def _under_lock(node: ast.AST, closure: ast.AST) -> bool:
    """Is ``node`` inside a ``with <something lock-ish>`` in the closure?

    Purely lexical: any enclosing ``with`` whose context expression
    mentions a name containing "lock" counts.
    """
    for with_node in ast.walk(closure):
        if not isinstance(with_node, (ast.With, ast.AsyncWith)):
            continue
        lockish = False
        for item in with_node.items:
            name = _name_base(item.context_expr) or ""
            full = dotted_name(item.context_expr) or (
                dotted_name(item.context_expr.func)
                if isinstance(item.context_expr, ast.Call)
                else None
            ) or name
            if "lock" in (full or "").lower():
                lockish = True
        if not lockish:
            continue
        for sub in ast.walk(with_node):
            if sub is node:
                return True
    return False


# --------------------------------------------------------------------------
# PAR-PICKLE
# --------------------------------------------------------------------------


@register
class ParPickleRule(Rule):
    """Process pools must receive picklable module-level callables.

    A ``ProcessExecutor`` (or raw ``ProcessPoolExecutor``) pickles every
    submitted task into the worker; lambdas and nested functions fail at
    pickle time with an error far from the submission site — or worse,
    a closure over a live shard would ship a full copy of the index to
    every worker if it *did* pickle.  The sanctioned pattern is a
    descriptor dataclass (``ShardSearchTask``) resolved against the
    worker's attach registry.

    Detection is lexical, like every simlint rule: ``.map``/``.submit``
    calls whose receiver expression mentions "process" are checked for
    lambda arguments (including lambdas inside list/generator argument
    expressions) and for references to functions defined in the
    enclosing function body.
    """

    id = "PAR-PICKLE"
    summary = "lambda/closure handed to a process pool"
    rationale = (
        "Closures do not pickle across the process boundary; workers "
        "need importable descriptors, not captured live objects."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = {
                node.name
                for node in ast.walk(func)
                if node is not func
                and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and self._process_receiver(node.func.value)
                ):
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    yield from self._unpicklable_args(ctx, arg, nested)

    def _process_receiver(self, expr: ast.expr) -> bool:
        """Does the receiver expression lexically mention a process pool?"""
        target = expr.func if isinstance(expr, ast.Call) else expr
        text = dotted_name(target) or _name_base(target) or ""
        return "process" in text.lower()

    def _unpicklable_args(
        self, ctx: FileContext, arg: ast.expr, nested: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Lambda):
                yield ctx.finding(
                    self.id, node,
                    "lambda submitted to a process pool cannot pickle; "
                    "pass a module-level descriptor (e.g. ShardSearchTask)",
                )
            elif (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in nested
            ):
                yield ctx.finding(
                    self.id, node,
                    f"nested function {node.id!r} submitted to a process "
                    "pool cannot pickle; hoist it to module level or pass "
                    "a descriptor (e.g. ShardSearchTask)",
                )
