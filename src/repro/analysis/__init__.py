"""simlint — static analysis for the repo's determinism invariants.

The evaluation only means something because every run is a pure function
of (seed, configuration): kernel variants are bit-identical to their
references, the sim-clock never sees wall time, and tie-order is total.
``repro.analysis`` turns those conventions into machine-checked rules —
a per-file ``ast``-visitor pass (:mod:`repro.analysis.rules`), a
whole-program pass over the import/call graph
(:mod:`repro.analysis.graph`, :mod:`repro.analysis.dataflow`,
:mod:`repro.analysis.layers`), a rule registry, a dependency-aware
incremental cache, statement-scoped pragma suppression, and a committed
baseline for grandfathered findings.

Run it as ``repro lint src/repro`` (exit 0 clean / 1 findings /
2 internal error), export the project graph with
``repro lint --graph dot``, or call :func:`run_lint` directly.
"""

from __future__ import annotations

from repro.analysis import dataflow as _dataflow  # noqa: F401  (registers flow rules)
from repro.analysis import layers as _layers  # noqa: F401  (registers ARCH-LAYER)
from repro.analysis import rules as _rules  # noqa: F401  (registers the catalogue)
from repro.analysis.baseline import Baseline
from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    DEFAULT_CACHE_NAME,
    LintEngine,
    build_graph,
    discover_files,
    module_path_of,
    run_lint,
)
from repro.analysis.findings import (
    Finding,
    LintError,
    LintReport,
    LintWarning,
    to_sarif,
)
from repro.analysis.graph import ModuleFacts, ProjectContext, extract_facts
from repro.analysis.pragmas import expand_pragmas, parse_pragmas
from repro.analysis.registry import (
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    analysis_source_digest,
    get_rules,
    register,
    rules_signature,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_NAME",
    "FileContext",
    "Finding",
    "LintEngine",
    "LintError",
    "LintReport",
    "LintWarning",
    "ModuleFacts",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analysis_source_digest",
    "build_graph",
    "discover_files",
    "expand_pragmas",
    "extract_facts",
    "get_rules",
    "module_path_of",
    "parse_pragmas",
    "register",
    "rules_signature",
    "run_lint",
    "to_sarif",
]
